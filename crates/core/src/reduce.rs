//! Structural reduction: capacity-factor pruning, forced-link conditioning,
//! and parallel-link merging, iterated to a fixed point.
//!
//! Every engine in the crate pays `2^|fallible links|`; this module shrinks
//! the exponent itself before any enumeration starts. Three exact passes run
//! in a loop until none of them changes the instance:
//!
//! 1. **Capacity-factor pruning.** For a bundle of parallel links between
//!    `u` and `v`, the flow any s–t routing can push through the bundle is
//!    bounded by the *capacity factor*
//!    `B = min(mincut(s → u), mincut(v → t))` computed in the graph with the
//!    bundle removed (for undirected networks, the max of that bound over
//!    both orientations): flow-decomposition paths crossing the bundle must
//!    first reach `u` from `s` without the bundle and then reach `t` from
//!    `v` without it. Capacities above `B` are clamped down to `B` (the
//!    max-flow value of every configuration is unchanged); a zero bound
//!    deletes the bundle outright. Note the bound is *not* the min-cut
//!    between the endpoints themselves — `mincut(u, v)` over-credits
//!    capacity for links incident to a terminal.
//! 2. **Forced-link conditioning.** A perfect (`p = 0`) undirected link
//!    whose capacity covers its bundle's capacity factor can carry every
//!    unit that could ever cross between its endpoints, so the endpoints
//!    merge into one node (never merging `s` into `t`). Self-loops and
//!    directed links into `s` / out of `t` are deleted; relevance reduction
//!    ([`crate::preprocess`]) re-runs each round so deletions cascade.
//! 3. **Parallel-link merging.** When every link of a bundle has capacity at
//!    least the bundle bound `B ≥ 1`, the bundle's realized capacity
//!    spectrum is two-valued — `B` if any member survives, `0` otherwise —
//!    so the bundle collapses exactly into one link of capacity `B` failing
//!    with probability `Π pᵢ`. Bundles with a member below the bound are
//!    left alone (their spectrum has distinguishable intermediate levels).
//!
//! Multi-state links join the pipeline through a **state-merge pass**: when
//! a bundle's capacity factor clamps a spectrum link, every state capacity
//! is clamped to the bound and states that land on the same effective value
//! merge exactly (their probabilities add — no configuration could tell
//! them apart through the bundle). A spectrum collapsing to two states
//! becomes a plain binary link, and one collapsing to a single state
//! becomes a perfect link, shrinking the mixed-radix exponent. Forced-link
//! conditioning and parallel merging stay binary-only: a multi-state member
//! makes a bundle's realized spectrum more than two-valued, so those
//! bundles are left alone.
//!
//! The `clamp_to_demand` flag additionally caps every bound at the demand
//! `d`. That preserves the *predicate* `max_flow ≥ d` but not per-
//! configuration flow values, so it is only sound for a top-level
//! reliability query — planner sides, whose spectra feed arithmetic above
//! them, must reduce with the flag off.
//!
//! Every pass is exact: the reduced instance has the identical reliability,
//! and [`Reduction::edge_origin`] maps each surviving link back to the
//! original link(s) it stands for, so reports and `--explain` trees can
//! render in original ids.

use maxflow::{CutProber, SolverKind};
use netgraph::{EdgeId, GraphKind, Network, NetworkBuilder, NodeId};

use crate::demand::FlowDemand;
use crate::preprocess::relevance_reduce;

/// What the reduction pipeline did, pass by pass (cumulative over rounds).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Links deleted by relevance reduction (includes self-loops created by
    /// contractions and links orphaned by other deletions).
    pub relevance_removed: usize,
    /// Links deleted because their capacity factor is zero, plus directed
    /// links into the source / out of the sink.
    pub bound_removed: usize,
    /// Links whose capacity was clamped down to their capacity factor.
    pub clamped: usize,
    /// Links removed by merging parallel bundles (bundle size minus one per
    /// merged bundle).
    pub merged: usize,
    /// Perfect links contracted away.
    pub contracted: usize,
    /// Fixed-point rounds run.
    pub rounds: usize,
}

impl ReduceStats {
    /// Total links removed from the instance.
    pub fn removed_links(&self) -> usize {
        self.relevance_removed + self.bound_removed + self.merged + self.contracted
    }

    /// True when any pass changed the instance.
    pub fn changed(&self) -> bool {
        self.removed_links() > 0 || self.clamped > 0
    }
}

/// The reduced instance plus the exact reconstruction map.
#[derive(Clone, Debug)]
pub struct Reduction {
    /// The reduced network (identical reliability to the original).
    pub net: Network,
    /// The demand, endpoints renumbered for the reduced network.
    pub demand: FlowDemand,
    /// For each reduced link, the original link ids it stands for — a
    /// singleton unless parallel links were merged into it.
    pub edge_origin: Vec<Vec<EdgeId>>,
    /// Per-pass counters.
    pub stats: ReduceStats,
    /// Link count of the original instance.
    pub original_edges: usize,
    /// Fallible (`p > 0`) link count of the original instance.
    pub original_fallible: usize,
}

impl Reduction {
    /// True when the pipeline changed nothing — callers should then use the
    /// original instance (and legacy checkpoint/report shapes) untouched.
    pub fn is_identity(&self) -> bool {
        !self.stats.changed()
    }

    /// Fallible (`p > 0`) links of the reduced instance — the enumeration
    /// exponent under `factor_perfect_links`.
    pub fn fallible_links(&self) -> usize {
        count_fallible(&self.net)
    }

    /// Renders a reduced link id in terms of the original ids it stands for:
    /// `"3"`, or `"3+7"` for a merged bundle.
    pub fn describe_edge(&self, e: EdgeId) -> String {
        match self.edge_origin.get(e.index()) {
            Some(origin) if !origin.is_empty() => origin
                .iter()
                .map(|o| o.index().to_string())
                .collect::<Vec<_>>()
                .join("+"),
            _ => e.index().to_string(),
        }
    }

    /// The inverse of [`Self::edge_origin`]: for each original link id, the
    /// reduced link standing for it (`None` when the link was removed).
    pub fn original_to_reduced(&self) -> Vec<Option<EdgeId>> {
        let mut map = vec![None; self.original_edges];
        for (r, origin) in self.edge_origin.iter().enumerate() {
            for o in origin {
                if let Some(slot) = map.get_mut(o.index()) {
                    *slot = Some(EdgeId::from(r));
                }
            }
        }
        map
    }

    /// All original link ids behind the reduced links in `set`, ascending.
    pub fn originals_of(&self, set: &[EdgeId]) -> Vec<EdgeId> {
        let mut out: Vec<EdgeId> = set
            .iter()
            .flat_map(|e| {
                self.edge_origin
                    .get(e.index())
                    .cloned()
                    .unwrap_or_else(|| vec![*e])
            })
            .collect();
        out.sort_unstable_by_key(|e| e.index());
        out.dedup();
        out
    }

    /// One-line human summary for reports and `--explain`.
    pub fn summary(&self) -> String {
        format!(
            "reduce: {} -> {} links ({} fallible -> {}); relevance {}, bound {}, merged {}, contracted {}, clamped {}, {} rounds",
            self.original_edges,
            self.net.edge_count(),
            self.original_fallible,
            self.fallible_links(),
            self.stats.relevance_removed,
            self.stats.bound_removed,
            self.stats.merged,
            self.stats.contracted,
            self.stats.clamped,
            self.stats.rounds,
        )
    }
}

fn count_fallible(net: &Network) -> usize {
    net.edges()
        .iter()
        .enumerate()
        .filter(|&(i, e)| e.fail_prob > 0.0 || net.spectrum(EdgeId::from(i)).is_some())
        .count()
}

/// Safety cap on fixed-point rounds. Each productive round removes or clamps
/// at least one link or contracts one node, so termination is structural;
/// the cap only guards against a (logic-bug) livelock.
const MAX_ROUNDS: usize = 64;

/// The planned fate of one link within a round.
#[derive(Clone, Copy, PartialEq)]
enum Fate {
    Keep {
        capacity: u64,
    },
    Delete,
    /// Member of a bundle that merges into one link this round.
    Merge,
}

/// Runs the reduction pipeline to a fixed point.
///
/// `clamp_to_demand` additionally caps capacity factors at `demand.demand`
/// (sound only for top-level `≥ d` queries; pass `false` for planner sides
/// whose flow spectra feed arithmetic above them).
pub fn reduce(
    net: &Network,
    demand: FlowDemand,
    clamp_to_demand: bool,
    solver: SolverKind,
) -> Reduction {
    let original_edges = net.edge_count();
    let original_fallible = count_fallible(net);
    let mut cur = net.clone();
    let mut cur_demand = demand;
    let mut edge_origin: Vec<Vec<EdgeId>> =
        (0..original_edges).map(|i| vec![EdgeId::from(i)]).collect();
    let mut stats = ReduceStats::default();

    if demand.source == demand.sink {
        // degenerate query; nothing to reduce against
        return Reduction {
            net: cur,
            demand: cur_demand,
            edge_origin,
            stats,
            original_edges,
            original_fallible,
        };
    }

    for _ in 0..MAX_ROUNDS {
        let mut changed = false;
        stats.rounds += 1;

        // -- relevance (also sweeps self-loops and zero-capacity links) --
        let rel = relevance_reduce(&cur, cur_demand);
        if rel.removed > 0 {
            edge_origin = rel
                .edge_origin
                .iter()
                .map(|&old| edge_origin[old].clone())
                .collect();
            cur = rel.net;
            cur_demand = rel.demand;
            stats.relevance_removed += rel.removed;
            changed = true;
        }
        if cur.edge_count() == 0 {
            break;
        }

        // -- capacity-factor pass over parallel bundles --
        let s = cur_demand.source;
        let t = cur_demand.sink;
        let mut prober = CutProber::new(&cur, solver);
        let bound_of = |prober: &mut CutProber, a: NodeId, b: NodeId, skip: &[EdgeId]| -> u64 {
            // flow through the bundle a -> b is limited by reaching a from s
            // and t from b without the bundle
            let from_s = if a == s {
                u64::MAX
            } else {
                prober.min_cut_value(s, a, skip)
            };
            let to_t = if b == t {
                u64::MAX
            } else {
                prober.min_cut_value(b, t, skip)
            };
            from_s.min(to_t)
        };

        let m = cur.edge_count();
        let mut fate: Vec<Fate> = cur
            .edges()
            .iter()
            .map(|e| Fate::Keep {
                capacity: e.capacity,
            })
            .collect();
        // bundle key: endpoint pair (unordered for undirected links)
        let key_of = |i: usize| -> (usize, usize) {
            let e = &cur.edges()[i];
            let (a, b) = (e.src.index(), e.dst.index());
            match cur.kind() {
                GraphKind::Directed => (a, b),
                GraphKind::Undirected => (a.min(b), a.max(b)),
            }
        };
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_unstable_by_key(|&i| key_of(i));
        // one contraction per round: it renumbers nodes, invalidating the
        // other bundles' bounds
        let mut contraction: Option<(NodeId, NodeId, usize)> = None;
        let mut merges: Vec<(Vec<usize>, u64, f64)> = Vec::new();

        let mut at = 0;
        while at < order.len() {
            let mut end = at + 1;
            while end < order.len() && key_of(order[end]) == key_of(order[at]) {
                end += 1;
            }
            let members: Vec<usize> = order[at..end].to_vec();
            at = end;
            let skip: Vec<EdgeId> = members.iter().map(|&i| EdgeId::from(i)).collect();
            let first = &cur.edges()[members[0]];
            let (u, v) = (first.src, first.dst);
            let bound = match cur.kind() {
                GraphKind::Directed => bound_of(&mut prober, u, v, &skip),
                GraphKind::Undirected => {
                    bound_of(&mut prober, u, v, &skip).max(bound_of(&mut prober, v, u, &skip))
                }
            };
            let eff = if clamp_to_demand {
                bound.min(cur_demand.demand)
            } else {
                bound
            };

            if eff == 0 {
                for &i in &members {
                    fate[i] = Fate::Delete;
                    stats.bound_removed += 1;
                }
                changed = true;
                continue;
            }
            // clamp members above the bound (exact: no configuration can
            // push more than `eff` through the bundle, let alone one link)
            for &i in &members {
                let cap = cur.edges()[i].capacity;
                if eff != u64::MAX && cap > eff {
                    fate[i] = Fate::Keep { capacity: eff };
                    stats.clamped += 1;
                    changed = true;
                }
            }
            // forced-link conditioning: a perfect link covering the whole
            // (unclamped) bundle bound makes its endpoints one node. A
            // multi-state link never qualifies — its nominal capacity is
            // only the best state, not a guaranteed width.
            if contraction.is_none()
                && cur.kind() == GraphKind::Undirected
                && bound != u64::MAX
                && !(u == s && v == t)
                && !(u == t && v == s)
            {
                if let Some(&i) = members.iter().find(|&&i| {
                    cur.spectrum(EdgeId::from(i)).is_none()
                        && cur.edges()[i].fail_prob == 0.0
                        && cur.edges()[i].capacity >= bound
                }) {
                    contraction = Some((u, v, i));
                    changed = true;
                    continue; // bundle partners become self-loops next round
                }
            }
            // parallel merge: exact when the bundle spectrum is two-valued,
            // which a multi-state member rules out
            if members.len() >= 2
                && eff != u64::MAX
                && members
                    .iter()
                    .all(|&i| cur.spectrum(EdgeId::from(i)).is_none())
                && members.iter().all(|&i| cur.edges()[i].capacity >= eff)
            {
                let fail: f64 = members.iter().map(|&i| cur.edges()[i].fail_prob).product();
                for &i in &members {
                    fate[i] = Fate::Merge;
                }
                stats.merged += members.len() - 1;
                merges.push((members, eff, fail));
                changed = true;
            }
        }

        // -- directed terminal trivia: links into s / out of t never carry
        //    s-t flow in an optimal routing --
        if cur.kind() == GraphKind::Directed {
            for (i, e) in cur.edges().iter().enumerate() {
                if (e.dst == s || e.src == t) && !matches!(fate[i], Fate::Delete) {
                    fate[i] = Fate::Delete;
                    stats.bound_removed += 1;
                    changed = true;
                }
            }
        }

        if !changed {
            break;
        }

        // -- rebuild --
        if contraction.is_some() {
            stats.contracted += 1;
        }
        let merge_into = contraction.map(|(keep, gone, _)| (keep, gone));
        let remap = |n: NodeId| -> NodeId {
            match merge_into {
                Some((keep, gone)) if n == gone => keep,
                _ => n,
            }
        };
        let mut b = NetworkBuilder::with_nodes(cur.kind(), cur.node_count());
        let mut next_origin: Vec<Vec<EdgeId>> = Vec::new();
        for (i, e) in cur.edges().iter().enumerate() {
            if let Some((_, _, perfect)) = contraction {
                if i == perfect {
                    continue; // the contracted link itself disappears
                }
            }
            match fate[i] {
                Fate::Delete | Fate::Merge => {}
                Fate::Keep { capacity } => {
                    push_reduced_edge(&mut b, &cur, i, remap(e.src), remap(e.dst), capacity);
                    next_origin.push(edge_origin[i].clone());
                }
            }
        }
        for (members, capacity, fail) in &merges {
            let e = &cur.edges()[members[0]];
            push_edge(&mut b, remap(e.src), remap(e.dst), *capacity, *fail);
            let mut origin: Vec<EdgeId> = members
                .iter()
                .flat_map(|&i| edge_origin[i].iter().copied())
                .collect();
            origin.sort_unstable_by_key(|e| e.index());
            next_origin.push(origin);
        }
        cur = b.build();
        cur_demand = FlowDemand::new(
            remap(cur_demand.source),
            remap(cur_demand.sink),
            cur_demand.demand,
        );
        edge_origin = next_origin;
    }

    // -- node compaction: the rounds above can strand nodes with no
    //    incident links (deleted bundles, contracted partners). Structure
    //    searches downstream count connected components, and a stranded
    //    node would make every cut look non-bipartitioning, so strip them.
    //    Edge order is preserved; `edge_origin` is untouched. Skipped on
    //    identity reductions so callers get the instance back verbatim.
    if stats.changed() {
        let mut used = vec![false; cur.node_count()];
        used[cur_demand.source.index()] = true;
        used[cur_demand.sink.index()] = true;
        for e in cur.edges() {
            used[e.src.index()] = true;
            used[e.dst.index()] = true;
        }
        if used.iter().any(|&u| !u) {
            let mut map = vec![NodeId::from(0usize); cur.node_count()];
            let mut next = 0usize;
            for (i, &u) in used.iter().enumerate() {
                if u {
                    map[i] = NodeId::from(next);
                    next += 1;
                }
            }
            let mut b = NetworkBuilder::with_nodes(cur.kind(), next);
            for (i, e) in cur.edges().iter().enumerate() {
                push_reduced_edge(
                    &mut b,
                    &cur,
                    i,
                    map[e.src.index()],
                    map[e.dst.index()],
                    e.capacity,
                );
            }
            cur = b.build();
            cur_demand = FlowDemand::new(
                map[cur_demand.source.index()],
                map[cur_demand.sink.index()],
                cur_demand.demand,
            );
        }
    }

    Reduction {
        net: cur,
        demand: cur_demand,
        edge_origin,
        stats,
        original_edges,
        original_fallible,
    }
}

/// Rebuild helper: probabilities and node ids are re-emitted from an already
/// validated network, so a builder rejection is a pipeline bug.
fn push_edge(b: &mut NetworkBuilder, src: NodeId, dst: NodeId, capacity: u64, fail_prob: f64) {
    if let Err(e) = b.add_edge(src, dst, capacity, fail_prob) {
        unreachable!("reduction re-emitted an invalid edge: {e}");
    }
}

/// Re-emits link `i` of `net` with its capacity clamped to `capacity`. For a
/// multi-state link this is the state-merge pass: every state capacity is
/// clamped, equal-capacity states merge (probabilities add), and a spectrum
/// collapsing to two states — or one — re-classifies into a plain binary or
/// perfect link, all inside the builder.
fn push_reduced_edge(
    b: &mut NetworkBuilder,
    net: &Network,
    i: usize,
    src: NodeId,
    dst: NodeId,
    capacity: u64,
) {
    match net.spectrum(EdgeId::from(i)) {
        Some(sp) => {
            let states: Vec<(u64, f64)> = sp
                .states()
                .iter()
                .map(|&(c, p)| (c.min(capacity), p))
                .collect();
            if let Err(e) = b.add_spectrum_edge(src, dst, &states) {
                unreachable!("reduction re-emitted an invalid spectrum: {e}");
            }
        }
        None => push_edge(b, src, dst, capacity, net.edges()[i].fail_prob),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::reliability_naive;
    use crate::options::CalcOptions;

    fn check_exact(net: &Network, demand: FlowDemand) -> Reduction {
        let red = reduce(net, demand, true, SolverKind::Dinic);
        let opts = CalcOptions::default();
        let before = reliability_naive(net, demand, &opts).unwrap();
        let after = reliability_naive(&red.net, red.demand, &opts).unwrap();
        assert!(
            (before - after).abs() < 1e-12,
            "reduction must be exact: {before} vs {after}\n{}",
            red.summary()
        );
        red
    }

    #[test]
    fn identity_on_a_tight_path() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.2).unwrap();
        let net = b.build();
        let red = check_exact(&net, FlowDemand::new(n[0], n[2], 1));
        assert!(red.is_identity());
        assert_eq!(red.net.edge_count(), 2);
    }

    #[test]
    fn clamps_overprovisioned_middle_link() {
        // s -1- a -9- b -1- t : the middle link can never carry more than 1
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 9, 0.2).unwrap();
        b.add_edge(n[2], n[3], 1, 0.1).unwrap();
        let net = b.build();
        let red = check_exact(&net, FlowDemand::new(n[0], n[3], 1));
        assert_eq!(red.stats.clamped, 1);
        assert!(red.net.edges().iter().all(|e| e.capacity == 1));
    }

    #[test]
    fn merges_slack_parallel_pair() {
        // s =(5,5)= a -1- t with demand 1: the pair's bound is 1, both caps
        // cover it, so the bundle collapses to one link with p = p1 * p2
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 5, 0.25).unwrap();
        b.add_edge(n[0], n[1], 5, 0.5).unwrap();
        b.add_edge(n[1], n[2], 1, 0.125).unwrap();
        let net = b.build();
        let red = check_exact(&net, FlowDemand::new(n[0], n[2], 1));
        assert_eq!(red.net.edge_count(), 2);
        assert_eq!(red.stats.merged, 1);
        // the merged link carries both original ids in the reconstruction map
        let merged = red
            .edge_origin
            .iter()
            .position(|o| o.len() == 2)
            .unwrap_or_else(|| panic!("no merged link in {:?}", red.edge_origin));
        assert_eq!(red.edge_origin[merged], vec![EdgeId(0), EdgeId(1)]);
        let e = &red.net.edges()[merged];
        assert_eq!(e.capacity, 1);
        assert!((e.fail_prob - 0.125).abs() < 1e-15, "p = 0.25 * 0.5");
    }

    #[test]
    fn keeps_distinguishable_parallel_pair() {
        // caps 1 + 1 against demand 2: the spectrum {0, 1, 2} is three-valued
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.25).unwrap();
        b.add_edge(n[0], n[1], 1, 0.5).unwrap();
        let net = b.build();
        let red = check_exact(&net, FlowDemand::new(n[0], n[1], 2));
        assert_eq!(red.net.edge_count(), 2, "no exact merge exists");
        assert_eq!(red.stats.merged, 0);
    }

    #[test]
    fn contracts_perfect_backbone_link() {
        // a perfect link wide enough for its bundle bound merges its nodes
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap();
        b.add_edge(n[1], n[2], 99, 0.0).unwrap(); // perfect backbone
        b.add_edge(n[2], n[3], 2, 0.2).unwrap();
        let net = b.build();
        let red = check_exact(&net, FlowDemand::new(n[0], n[3], 2));
        assert_eq!(red.stats.contracted, 1);
        assert_eq!(red.net.edge_count(), 2);
        assert!(red.net.edges().iter().all(|e| e.fail_prob > 0.0));
    }

    #[test]
    fn contraction_never_merges_the_terminals() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 99, 0.0).unwrap();
        b.add_edge(n[0], n[1], 1, 0.5).unwrap();
        let net = b.build();
        let d = FlowDemand::new(n[0], n[1], 1);
        let red = check_exact(&net, d);
        assert_eq!(red.stats.contracted, 0);
        assert_ne!(red.demand.source, red.demand.sink);
    }

    #[test]
    fn directed_terminal_trivia_deleted() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.2).unwrap();
        b.add_edge(n[1], n[0], 1, 0.3).unwrap(); // into s
        b.add_edge(n[2], n[1], 1, 0.4).unwrap(); // out of t
        let net = b.build();
        let red = check_exact(&net, FlowDemand::new(n[0], n[2], 1));
        assert_eq!(red.net.edge_count(), 2);
    }

    #[test]
    fn per_side_mode_skips_demand_clamp() {
        // s -3- a -9- t, demand 1: top-level clamps both to 1; value-exact
        // mode may clamp the 9 down to 3 (the bundle bound) but not below
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 3, 0.1).unwrap();
        b.add_edge(n[1], n[2], 9, 0.2).unwrap();
        let net = b.build();
        let d = FlowDemand::new(n[0], n[2], 1);
        let side = reduce(&net, d, false, SolverKind::Dinic);
        assert_eq!(
            side.net.edges()[1].capacity,
            3,
            "clamped to bound, not demand"
        );
        assert_eq!(
            side.net.edges()[0].capacity,
            3,
            "already at its bound, untouched"
        );
        let top = reduce(&net, d, true, SolverKind::Dinic);
        assert!(top.net.edges().iter().all(|e| e.capacity == 1));
    }

    #[test]
    fn reduction_composes_with_dead_spurs() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(6);
        b.add_edge(n[0], n[1], 8, 0.1).unwrap();
        b.add_edge(n[0], n[1], 8, 0.2).unwrap(); // slack parallel pair
        b.add_edge(n[1], n[2], 1, 0.1).unwrap();
        b.add_edge(n[2], n[3], 1, 0.3).unwrap(); // spur chain off the path
        b.add_edge(n[3], n[4], 1, 0.3).unwrap();
        b.add_edge(n[2], n[5], 1, 0.3).unwrap(); // t reached via n2
        let net = b.build();
        let red = check_exact(&net, FlowDemand::new(n[0], n[5], 1));
        // the spur chain is inside the s-t component, so relevance keeps it;
        // the capacity-factor pass proves its bound is zero and deletes it
        // (the far link first, then the newly dangling one next round)
        assert_eq!(red.stats.bound_removed, 2, "{}", red.summary());
        assert_eq!(red.stats.merged, 1, "{}", red.summary());
        assert_eq!(red.net.edge_count(), 3);
        assert!(!red.originals_of(&[EdgeId(0)]).is_empty());
    }

    #[test]
    fn state_merge_collapses_clamped_spectrum() {
        // s =(3-state)= a -1- t: the bundle bound is 1, so states 1 and 5
        // clamp to the same effective value and the spectrum collapses to a
        // plain binary link (p = its down state)
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(3);
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.2), (1, 0.3), (5, 0.5)])
            .unwrap();
        b.add_edge(n[1], n[2], 1, 0.125).unwrap();
        let net = b.build();
        assert!(net.has_multistate());
        let red = check_exact(&net, FlowDemand::new(n[0], n[2], 1));
        assert!(!red.net.has_multistate(), "{}", red.summary());
        assert!(red.stats.clamped >= 1);
        let e = &red.net.edges()[0];
        assert_eq!(e.capacity, 1);
        assert!((e.fail_prob - 0.2).abs() < 1e-15);
    }

    #[test]
    fn multistate_spectrum_survives_partial_clamp() {
        // bound 2 keeps states 0/1/2 distinguishable: the spectrum stays
        // multi-state, with the top state clamped from 5 to 2
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(3);
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.2), (1, 0.3), (5, 0.5)])
            .unwrap();
        b.add_edge(n[1], n[2], 2, 0.125).unwrap();
        let net = b.build();
        let red = check_exact(&net, FlowDemand::new(n[0], n[2], 2));
        assert!(red.net.has_multistate());
        let sp = red.net.spectrum(EdgeId(0)).unwrap();
        assert_eq!(sp.states(), &[(0, 0.2), (1, 0.3), (2, 0.5)]);
    }

    #[test]
    fn multistate_bundles_never_merge_or_contract() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(2);
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.25), (1, 0.25), (2, 0.5)])
            .unwrap();
        b.add_edge(n[0], n[1], 2, 0.5).unwrap();
        let net = b.build();
        let red = check_exact(&net, FlowDemand::new(n[0], n[1], 2));
        assert_eq!(red.stats.merged, 0);
        assert_eq!(red.stats.contracted, 0);
        assert_eq!(red.net.edge_count(), 2);
        assert!(red.net.has_multistate());
    }

    #[test]
    fn describe_edge_renders_merges() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 5, 0.25).unwrap();
        b.add_edge(n[0], n[1], 5, 0.5).unwrap();
        b.add_edge(n[1], n[2], 1, 0.125).unwrap();
        let net = b.build();
        let red = reduce(
            &net,
            FlowDemand::new(n[0], n[2], 1),
            true,
            SolverKind::Dinic,
        );
        let rendered: Vec<String> = (0..red.net.edge_count())
            .map(|i| red.describe_edge(EdgeId::from(i)))
            .collect();
        assert!(rendered.iter().any(|s| s == "0+1"), "{rendered:?}");
    }
}
