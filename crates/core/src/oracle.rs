//! Flow-feasibility oracles over failure configurations.

use maxflow::incremental::{RepairStats, WarmState};
use maxflow::{build_flow, build_flow_multi, NetworkFlow, SolverKind};
use netgraph::{EdgeMask, Network, NodeId};

use crate::assign::Assignment;
use crate::certcache::SolveCert;
use crate::decompose::Side;
use crate::error::ReliabilityError;

/// Reads the monotonicity certificate a just-computed verdict carries off
/// the residual graph (shared by the cold and warm solve paths).
fn extract_cert(nf: &NetworkFlow, ok: bool, required: u64) -> SolveCert {
    if ok {
        SolveCert::Feasible {
            support: nf.flow_support_bits(),
        }
    } else {
        // an infeasible verdict means the solver exhausted augmentation, so
        // the residual graph witnesses a saturated cut; `fixed` capacity
        // (super-terminal arcs) never fails, so the cut refutes exactly the
        // configurations whose alive crossing capacity stays below the rest
        match nf.residual_cut_bits() {
            Some((crossing, fixed)) if fixed < required => SolveCert::Infeasible {
                crossing,
                needed: required - fixed,
            },
            _ => SolveCert::None,
        }
    }
}

/// Runs one feasibility solve and, when asked, extracts the monotonicity
/// certificate the verdict carries (shared by both oracles).
fn solve_with_cert(
    nf: &mut NetworkFlow,
    solver: SolverKind,
    mask: EdgeMask,
    required: u64,
    want_cert: bool,
) -> (bool, SolveCert) {
    nf.apply_mask(mask);
    let ok = solver.solve(&mut nf.graph, nf.source, nf.sink, required) >= required;
    if !want_cert {
        return (ok, SolveCert::None);
    }
    (ok, extract_cert(nf, ok, required))
}

/// As [`solve_with_cert`], but warm-starting from `warm`'s maintained flow
/// (see [`maxflow::incremental`]); exact either way.
fn warm_solve_with_cert(
    nf: &mut NetworkFlow,
    warm: &mut WarmState,
    solver: SolverKind,
    mask: EdgeMask,
    required: u64,
    want_cert: bool,
) -> (bool, SolveCert) {
    let ok = warm.admits(nf, solver, required, mask.bits(), want_cert);
    if !want_cert {
        return (ok, SolveCert::None);
    }
    (ok, extract_cert(nf, ok, required))
}

/// Answers "does this failure configuration admit the s–t demand?" for one
/// fixed network, reusing a single lowered [`NetworkFlow`] across the
/// exponential configuration sweep.
#[derive(Clone)]
pub struct DemandOracle {
    nf: NetworkFlow,
    solver: SolverKind,
    demand: u64,
    caps: Vec<u64>,
    warm: Option<WarmState>,
}

impl DemandOracle {
    /// Lowers `net` for the `s → t` demand `d`. The incremental warm-start
    /// path is off by default; enable it with
    /// [`set_incremental`](Self::set_incremental).
    pub fn new(net: &Network, s: NodeId, t: NodeId, demand: u64, solver: SolverKind) -> Self {
        let caps = net.edges().iter().map(|e| e.capacity).collect();
        DemandOracle {
            nf: build_flow(net, s, t),
            solver,
            demand,
            caps,
            warm: None,
        }
    }

    /// The demand being tested.
    pub fn demand(&self) -> u64 {
        self.demand
    }

    /// Per-link capacities, indexed by edge id (for cut certificates).
    pub fn edge_capacities(&self) -> &[u64] {
        &self.caps
    }

    /// Enables or disables the warm-start incremental solve path. Only
    /// networks with ≤ 64 edges can use it (the sweeps cap enumeration well
    /// below that); requesting it on a larger network is a silent no-op.
    pub fn set_incremental(&mut self, on: bool) {
        if on && self.caps.len() <= 64 {
            if self.warm.is_none() {
                self.warm = Some(WarmState::new());
            }
        } else {
            self.warm = None;
        }
    }

    /// Drops the maintained warm flow (if any); the next query re-solves
    /// from scratch. Call at sweep chunk boundaries and on resume so results
    /// never depend on warm state carried across scheduling decisions.
    pub fn invalidate_warm(&mut self) {
        if let Some(w) = &mut self.warm {
            w.invalidate();
        }
    }

    /// Returns and resets the incremental-repair telemetry.
    pub fn take_repair_stats(&mut self) -> RepairStats {
        self.warm
            .as_mut()
            .map(WarmState::take_stats)
            .unwrap_or_default()
    }

    /// Does the configuration `mask` (over the network's edges) admit `d`?
    pub fn admits(&mut self, mask: EdgeMask) -> bool {
        if self.demand == 0 {
            return true;
        }
        if let Some(w) = &mut self.warm {
            return w.admits(&mut self.nf, self.solver, self.demand, mask.bits(), false);
        }
        self.nf.apply_mask(mask);
        self.solver.solve(
            &mut self.nf.graph,
            self.nf.source,
            self.nf.sink,
            self.demand,
        ) >= self.demand
    }

    /// As [`admits`](Self::admits), additionally extracting the monotonicity
    /// certificate the verdict carries (see [`crate::certcache`]) when
    /// `want_cert` is set.
    pub fn admits_with_cert(&mut self, mask: EdgeMask, want_cert: bool) -> (bool, SolveCert) {
        if self.demand == 0 {
            return (true, SolveCert::Feasible { support: 0 });
        }
        if let Some(w) = &mut self.warm {
            return warm_solve_with_cert(
                &mut self.nf,
                w,
                self.solver,
                mask,
                self.demand,
                want_cert,
            );
        }
        solve_with_cert(&mut self.nf, self.solver, mask, self.demand, want_cert)
    }

    /// Maximum flow with every link alive (for quick infeasibility checks).
    pub fn max_flow_all_alive(&mut self) -> u64 {
        self.invalidate_warm(); // about to mutate the graph behind the warm flow
        self.nf.apply_all_alive();
        self.solver
            .solve(&mut self.nf.graph, self.nf.source, self.nf.sink, u64::MAX)
    }
}

/// Answers, for one side of a bottleneck decomposition, "does this failure
/// configuration of the side's links realize assignment `j`?" — the oracle
/// behind the array data structure of Section III-C.
///
/// The side subproblem is a transshipment feasibility check. On the source
/// side `G_s`, the terminal `s` produces `d` units and each attach point
/// `x_i` consumes `a_i` (a negative `a_i`, possible only under the
/// net-crossing model, turns `x_i` into a producer). On the sink side the
/// roles are mirrored. The check lowers to one max-flow between a
/// super-source and a super-sink whose attachment capacities encode the
/// supplies and demands; the assignment realizes iff the flow saturates.
///
/// Clones share no state: the sweep engine hands each parallel worker its
/// own copy so configuration sweeps never contend on the residual graph.
#[derive(Clone)]
pub struct SideOracle {
    nf: NetworkFlow,
    solver: SolverKind,
    /// Per assignment: `(supply per terminal-node, demand per terminal-node,
    /// required saturation)`.
    plans: Vec<(Vec<u64>, Vec<u64>, u64)>,
    edge_count: usize,
    caps: Vec<u64>,
    current: usize,
    warm: Option<WarmState>,
}

impl SideOracle {
    /// Prepares the oracle for `side` with the given assignment set. The
    /// terminal's production is the assignment's net crossing total (`Σ a_i`,
    /// which equals the stream demand `d` for every assignment in `D`).
    ///
    /// Fails with [`ReliabilityError::ArityMismatch`] when an assignment's
    /// amount vector does not have one entry per attach point.
    pub fn new(
        side: &Side,
        assignments: &[Assignment],
        solver: SolverKind,
    ) -> Result<Self, ReliabilityError> {
        // Side sweeps enumerate binary up/down configurations; a side with a
        // capacity spectrum must be swept whole by the naive engine instead.
        // The planner never routes one here — this guards direct callers.
        if side.net.has_multistate() {
            return Err(ReliabilityError::MultiState {
                operation: "a side spectrum sweep",
            });
        }
        // terminal nodes: the demand terminal first, then the attach points
        let terminals: Vec<NodeId> = std::iter::once(side.terminal)
            .chain(side.attach.iter().copied())
            .collect();
        let mut plans = Vec::with_capacity(assignments.len());
        for a in assignments {
            if a.amounts.len() != side.attach.len() {
                return Err(ReliabilityError::ArityMismatch {
                    what: "assignment amounts",
                    got: a.amounts.len(),
                    expected: side.attach.len(),
                });
            }
            let crossing: i64 = a.amounts.iter().sum();
            // net production of each terminal node
            let mut production: Vec<i64> = Vec::with_capacity(terminals.len());
            if side.is_source_side {
                production.push(crossing);
                production.extend(a.amounts.iter().map(|&x| -x));
            } else {
                production.push(-crossing);
                production.extend(a.amounts.iter().copied());
            }
            let supplies: Vec<u64> = production.iter().map(|&p| p.max(0) as u64).collect();
            let demands: Vec<u64> = production.iter().map(|&p| (-p).max(0) as u64).collect();
            let required: u64 = supplies.iter().sum();
            debug_assert_eq!(required, demands.iter().sum::<u64>());
            plans.push((supplies, demands, required));
        }
        let zeroed: Vec<(NodeId, u64)> = terminals.iter().map(|&n| (n, 0)).collect();
        let nf = build_flow_multi(&side.net, &zeroed, &zeroed);
        let edge_count = side.net.edge_count();
        let caps = side.net.edges().iter().map(|e| e.capacity).collect();
        let mut oracle = SideOracle {
            nf,
            solver,
            plans,
            edge_count,
            caps,
            current: usize::MAX,
            warm: None,
        };
        if !oracle.plans.is_empty() {
            oracle.set_assignment(0);
        }
        Ok(oracle)
    }

    /// Number of assignments.
    pub fn assignment_count(&self) -> usize {
        self.plans.len()
    }

    /// Number of links on this side (the configuration space is `2^this`).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Per-link capacities, indexed by side-edge id (for cut certificates).
    pub fn edge_capacities(&self) -> &[u64] {
        &self.caps
    }

    /// Enables or disables the warm-start incremental solve path (sides with
    /// more than 64 links cannot use it; the request is then a no-op).
    pub fn set_incremental(&mut self, on: bool) {
        if on && self.edge_count <= 64 {
            if self.warm.is_none() {
                self.warm = Some(WarmState::new());
            }
        } else {
            self.warm = None;
        }
    }

    /// Drops the maintained warm flow (if any); the next query re-solves
    /// from scratch.
    pub fn invalidate_warm(&mut self) {
        if let Some(w) = &mut self.warm {
            w.invalidate();
        }
    }

    /// Returns and resets the incremental-repair telemetry.
    pub fn take_repair_stats(&mut self) -> RepairStats {
        self.warm
            .as_mut()
            .map(WarmState::take_stats)
            .unwrap_or_default()
    }

    /// Selects the assignment subsequent [`admits`](Self::admits) calls test.
    /// Retuning the super-terminal base capacities invalidates any maintained
    /// warm flow: the next query after a switch re-solves from scratch.
    pub fn set_assignment(&mut self, j: usize) {
        let (supplies, demands, _) = &self.plans[j];
        for (&arc, &cap) in self.nf.source_arcs.iter().zip(supplies) {
            self.nf.graph.set_base_capacity(arc, cap);
        }
        for (&arc, &cap) in self.nf.sink_arcs.iter().zip(demands) {
            self.nf.graph.set_base_capacity(arc, cap);
        }
        if self.current != j {
            self.invalidate_warm();
        }
        self.current = j;
    }

    /// Does the side configuration `mask` realize the selected assignment?
    pub fn admits(&mut self, mask: EdgeMask) -> bool {
        let required = self.plans[self.current].2;
        if required == 0 {
            return true;
        }
        if let Some(w) = &mut self.warm {
            return w.admits(&mut self.nf, self.solver, required, mask.bits(), false);
        }
        self.nf.apply_mask(mask);
        self.solver
            .solve(&mut self.nf.graph, self.nf.source, self.nf.sink, required)
            >= required
    }

    /// As [`admits`](Self::admits), additionally extracting the monotonicity
    /// certificate for the *currently selected assignment* when `want_cert`
    /// is set. Certificates are only valid for the assignment they were
    /// extracted under — the sweep engine keeps one cache per assignment.
    pub fn admits_with_cert(&mut self, mask: EdgeMask, want_cert: bool) -> (bool, SolveCert) {
        let required = self.plans[self.current].2;
        if required == 0 {
            return (true, SolveCert::Feasible { support: 0 });
        }
        if let Some(w) = &mut self.warm {
            return warm_solve_with_cert(&mut self.nf, w, self.solver, mask, required, want_cert);
        }
        solve_with_cert(&mut self.nf, self.solver, mask, required, want_cert)
    }

    /// Shorthand: does the all-alive configuration realize assignment `j`?
    pub fn feasible_at_best(&mut self, j: usize) -> bool {
        self.set_assignment(j);
        self.admits(EdgeMask::all_alive(self.edge_count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    fn diamond() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[2], 1, 0.1).unwrap();
        b.add_edge(n[1], n[3], 1, 0.1).unwrap();
        b.add_edge(n[2], n[3], 1, 0.1).unwrap();
        b.build()
    }

    #[test]
    fn oracle_tracks_configurations() {
        let net = diamond();
        let mut o = DemandOracle::new(&net, NodeId(0), NodeId(3), 1, SolverKind::Dinic);
        assert!(o.admits(EdgeMask::all_alive(4)));
        assert!(o.admits(EdgeMask::from_bits(0b0101, 4))); // upper path only
        assert!(!o.admits(EdgeMask::from_bits(0b0110, 4))); // mismatched halves
        assert!(!o.admits(EdgeMask::all_failed(4)));
    }

    #[test]
    fn demand_two_needs_both_paths() {
        let net = diamond();
        let mut o = DemandOracle::new(&net, NodeId(0), NodeId(3), 2, SolverKind::Dinic);
        assert!(o.admits(EdgeMask::all_alive(4)));
        assert!(!o.admits(EdgeMask::from_bits(0b0111, 4)));
        assert_eq!(o.max_flow_all_alive(), 2);
    }

    #[test]
    fn zero_demand_always_admits() {
        let net = diamond();
        let mut o = DemandOracle::new(&net, NodeId(0), NodeId(3), 0, SolverKind::Dinic);
        assert!(o.admits(EdgeMask::all_failed(4)));
    }

    /// Source side: s with two attach points a (via e0, cap 2) and b (via e1,
    /// cap 1).
    fn source_side() -> Side {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap();
        b.add_edge(n[0], n[2], 1, 0.1).unwrap();
        Side {
            net: b.build(),
            edge_origin: vec![],
            terminal: n[0],
            attach: vec![n[1], n[2]],
            is_source_side: true,
        }
    }

    fn asg(amounts: &[i64]) -> Assignment {
        Assignment {
            amounts: amounts.to_vec(),
        }
    }

    #[test]
    fn side_oracle_source_side() {
        let side = source_side();
        let assignments = vec![asg(&[2, 0]), asg(&[1, 1]), asg(&[0, 2])];
        let mut o = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        assert_eq!(o.assignment_count(), 3);
        assert_eq!(o.edge_count(), 2);
        assert!(o.feasible_at_best(0), "(2,0): e0 carries 2");
        assert!(o.feasible_at_best(1), "(1,1)");
        assert!(!o.feasible_at_best(2), "(0,2): e1 has capacity 1");
        // kill e0: only (0,...) assignments could work, but (0,2) exceeds cap
        o.set_assignment(1);
        assert!(!o.admits(EdgeMask::from_bits(0b10, 2)));
        o.set_assignment(0);
        assert!(
            o.admits(EdgeMask::from_bits(0b01, 2)),
            "(2,0) only needs e0"
        );
    }

    #[test]
    fn side_oracle_sink_side() {
        // mirrored: attach points feed t
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[2], 1, 0.1).unwrap(); // y1 -> t
        b.add_edge(n[1], n[2], 1, 0.1).unwrap(); // y2 -> t
        let side = Side {
            net: b.build(),
            edge_origin: vec![],
            terminal: n[2],
            attach: vec![n[0], n[1]],
            is_source_side: false,
        };
        let assignments = vec![asg(&[2, 0]), asg(&[1, 1])];
        let mut o = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        assert!(!o.feasible_at_best(0), "(2,0): y1->t has capacity 1");
        assert!(o.feasible_at_best(1));
    }

    #[test]
    fn side_oracle_single_node_side() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let s = b.add_node();
        let side = Side {
            net: b.build(),
            edge_origin: vec![],
            terminal: s,
            attach: vec![s],
            is_source_side: true,
        };
        let assignments = vec![asg(&[1])];
        let mut o = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        assert!(o.feasible_at_best(0), "s is itself the attach point");
    }

    #[test]
    fn side_oracle_net_model_reverse_flow() {
        // source side where x2 re-injects one unit that must reach x1:
        // s -e0(cap1)-> x1, x2 -e1(cap1)-> x1. Assignment (2, -1): x1 takes 2,
        // x2 gives 1 back.
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[2], n[1], 1, 0.1).unwrap();
        let side = Side {
            net: b.build(),
            edge_origin: vec![],
            terminal: n[0],
            attach: vec![n[1], n[2]],
            is_source_side: true,
        };
        let assignments = vec![asg(&[2, -1]), asg(&[1, 0])];
        let mut o = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        assert!(o.feasible_at_best(0), "(2,-1): 1 from s plus 1 from x2");
        assert!(o.feasible_at_best(1), "(1,0): direct");
    }
}
