//! Series–parallel reduction for unit-demand (two-terminal) reliability.
//!
//! For `d = 1` the flow question degenerates to s–t connectivity over
//! positive-capacity links, and the classic exact reductions apply:
//!
//! * **capacity-0 / self-loop removal** — such links never carry the unit;
//! * **dangling removal** — a non-terminal node of degree ≤ 1 (or whose links
//!   all go to one neighbour) lies on no simple s–t path;
//! * **parallel reduction** — links joining the same node pair merge into one
//!   with `p = p₁·p₂` (the merged link fails iff both fail);
//! * **series reduction** — a non-terminal degree-2 node `v` with links
//!   `u—v—w` (`u ≠ w`) merges them into `u—w` with survival `r₁·r₂`.
//!
//! Each rule preserves the reliability exactly. On series-parallel networks
//! the graph collapses to a single link — polynomial time where every general
//! algorithm is exponential; on general networks the reduced remainder is
//! handed to the factoring algorithm. Implemented for undirected networks
//! (the classical setting; directed series/parallel rules need care with
//! orientations and are not needed by the workloads).

use netgraph::{GraphKind, Network, NetworkBuilder, NodeId};

use crate::demand::FlowDemand;
use crate::error::ReliabilityError;
use crate::factoring::reliability_factoring;
use crate::options::CalcOptions;

/// Counts of applied reductions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Series merges performed.
    pub series: usize,
    /// Parallel merges performed.
    pub parallel: usize,
    /// Dangling nodes removed.
    pub dangling: usize,
    /// Self-loops and capacity-0 links dropped.
    pub dropped: usize,
}

/// The reduced network (unit capacities) plus statistics.
#[derive(Clone, Debug)]
pub struct ReducedNetwork {
    /// The exactly-equivalent smaller network.
    pub net: Network,
    /// Source in the reduced network.
    pub source: NodeId,
    /// Sink in the reduced network.
    pub sink: NodeId,
    /// What was applied.
    pub stats: ReductionStats,
}

/// Internal working edge: endpoints + failure probability.
#[derive(Clone, Copy, Debug)]
struct WEdge {
    u: usize,
    v: usize,
    p: f64,
}

/// Applies all reductions to fixpoint. Undirected networks only.
///
/// # Panics
/// Panics when called on a directed network.
pub fn reduce_unit_demand(net: &Network, s: NodeId, t: NodeId) -> ReducedNetwork {
    assert_eq!(
        net.kind(),
        GraphKind::Undirected,
        "series-parallel reduction is defined for undirected networks"
    );
    let mut stats = ReductionStats::default();
    let mut edges: Vec<WEdge> = Vec::new();
    for e in net.edges() {
        if e.capacity == 0 || e.src == e.dst {
            stats.dropped += 1; // can never carry the unit / self-loop
            continue;
        }
        edges.push(WEdge {
            u: e.src.index(),
            v: e.dst.index(),
            p: e.fail_prob,
        });
    }
    let n = net.node_count();
    let (si, ti) = (s.index(), t.index());

    let mut changed = true;
    while changed {
        changed = false;

        // parallel merges: group by normalized endpoint pair
        edges.sort_by_key(|e| (e.u.min(e.v), e.u.max(e.v)));
        let mut merged: Vec<WEdge> = Vec::with_capacity(edges.len());
        for e in edges.drain(..) {
            match merged.last_mut() {
                Some(last)
                    if (last.u.min(last.v), last.u.max(last.v)) == (e.u.min(e.v), e.u.max(e.v)) =>
                {
                    last.p *= e.p; // fails iff both fail
                    stats.parallel += 1;
                    changed = true;
                }
                _ => merged.push(e),
            }
        }
        edges = merged;

        // degree census
        let mut degree = vec![0usize; n];
        for e in &edges {
            degree[e.u] += 1;
            degree[e.v] += 1;
        }

        // dangling removal: non-terminal degree <= 1
        let before = edges.len();
        edges.retain(|e| {
            let dead = (degree[e.u] <= 1 && e.u != si && e.u != ti)
                || (degree[e.v] <= 1 && e.v != si && e.v != ti);
            !dead
        });
        if edges.len() != before {
            stats.dangling += before - edges.len();
            changed = true;
            continue; // degrees changed; restart the pass
        }

        // series merge: one non-terminal degree-2 node at a time
        for (mid, &deg) in degree.iter().enumerate() {
            if mid == si || mid == ti || deg != 2 {
                continue;
            }
            let incident: Vec<usize> = edges
                .iter()
                .enumerate()
                .filter(|(_, e)| e.u == mid || e.v == mid)
                .map(|(i, _)| i)
                .collect();
            debug_assert_eq!(incident.len(), 2);
            let (i, j) = (incident[0], incident[1]);
            let other = |e: &WEdge| if e.u == mid { e.v } else { e.u };
            let (a, b) = (other(&edges[i]), other(&edges[j]));
            if a == b {
                // a pendant 2-cycle through mid: no simple path uses it
                let mut k = 0;
                edges.retain(|_| {
                    let keep = k != i && k != j;
                    k += 1;
                    keep
                });
                stats.dangling += 1;
                changed = true;
                break;
            }
            // survival requires both halves: p = 1 - (1-p_i)(1-p_j)
            let p = 1.0 - (1.0 - edges[i].p) * (1.0 - edges[j].p);
            let (lo, hi) = (i.min(j), i.max(j));
            edges.remove(hi);
            edges.remove(lo);
            edges.push(WEdge { u: a, v: b, p });
            stats.series += 1;
            changed = true;
            break; // degrees changed; recompute
        }
    }

    // rebuild a compact network over the surviving nodes
    let mut keep: Vec<bool> = vec![false; n];
    keep[si] = true;
    keep[ti] = true;
    for e in &edges {
        keep[e.u] = true;
        keep[e.v] = true;
    }
    let mut remap = vec![usize::MAX; n];
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    for (i, &k) in keep.iter().enumerate() {
        if k {
            remap[i] = b.add_node().index();
        }
    }
    for e in &edges {
        b.add_edge(NodeId::from(remap[e.u]), NodeId::from(remap[e.v]), 1, e.p)
            .unwrap_or_else(|e| unreachable!("reduced probabilities stay in range: {e}"));
    }
    ReducedNetwork {
        net: b.build(),
        source: NodeId::from(remap[si]),
        sink: NodeId::from(remap[ti]),
        stats,
    }
}

/// Unit-demand reliability via series-parallel reduction, finishing the
/// (possibly already trivial) remainder with the factoring algorithm.
pub fn reliability_sp_reduced(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<f64, ReliabilityError> {
    demand.validate(net)?;
    assert_eq!(
        demand.demand, 1,
        "series-parallel reduction applies to unit demand"
    );
    let reduced = reduce_unit_demand(net, demand.source, demand.sink);
    if reduced.source == reduced.sink {
        return Ok(1.0);
    }
    reliability_factoring(
        &reduced.net,
        FlowDemand::new(reduced.source, reduced.sink, 1),
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::reliability_naive;
    use netgraph::NetworkBuilder;
    use proptest::prelude::*;

    fn build(n: usize, edges: &[(usize, usize, f64)]) -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let ids = b.add_nodes(n);
        for &(u, v, p) in edges {
            b.add_edge(ids[u], ids[v], 1, p).unwrap();
        }
        b.build()
    }

    #[test]
    fn pure_series_chain_collapses() {
        let net = build(4, &[(0, 1, 0.1), (1, 2, 0.2), (2, 3, 0.3)]);
        let red = reduce_unit_demand(&net, NodeId(0), NodeId(3));
        assert_eq!(red.net.edge_count(), 1);
        assert_eq!(red.stats.series, 2);
        let p = red.net.edge(netgraph::EdgeId(0)).fail_prob;
        let expected = 1.0 - 0.9 * 0.8 * 0.7;
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn pure_parallel_collapses() {
        let net = build(2, &[(0, 1, 0.1), (0, 1, 0.2), (0, 1, 0.3)]);
        let red = reduce_unit_demand(&net, NodeId(0), NodeId(1));
        assert_eq!(red.net.edge_count(), 1);
        assert_eq!(red.stats.parallel, 2);
        let p = red.net.edge(netgraph::EdgeId(0)).fail_prob;
        assert!((p - 0.1 * 0.2 * 0.3).abs() < 1e-12);
    }

    #[test]
    fn dangling_and_loops_removed() {
        // s - t plus a dangling spur and a self loop
        let net = build(3, &[(0, 1, 0.1), (1, 2, 0.5), (0, 0, 0.2)]);
        let red = reduce_unit_demand(&net, NodeId(0), NodeId(1));
        assert_eq!(red.net.edge_count(), 1);
        assert_eq!(red.stats.dropped, 1);
        assert_eq!(red.stats.dangling, 1);
    }

    #[test]
    fn zero_capacity_links_dropped() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let ids = b.add_nodes(2);
        b.add_edge(ids[0], ids[1], 0, 0.1).unwrap();
        b.add_edge(ids[0], ids[1], 1, 0.2).unwrap();
        let net = b.build();
        let red = reduce_unit_demand(&net, NodeId(0), NodeId(1));
        assert_eq!(red.net.edge_count(), 1);
        assert!((red.net.edge(netgraph::EdgeId(0)).fail_prob - 0.2).abs() < 1e-12);
    }

    #[test]
    fn ladder_collapses_fully() {
        // ((series pair) parallel (series pair)) in series with one link
        let net = build(
            4,
            &[
                (0, 1, 0.1),
                (1, 2, 0.2),
                (0, 1, 0.15),
                (1, 2, 0.25),
                (2, 3, 0.05),
            ],
        );
        let red = reduce_unit_demand(&net, NodeId(0), NodeId(3));
        assert_eq!(
            red.net.edge_count(),
            1,
            "series-parallel graph collapses to one link"
        );
        let r_sp = 1.0 - red.net.edge(netgraph::EdgeId(0)).fail_prob;
        let naive = reliability_naive(
            &net,
            FlowDemand::new(NodeId(0), NodeId(3), 1),
            &CalcOptions::default(),
        )
        .unwrap();
        assert!((r_sp - naive).abs() < 1e-12);
    }

    #[test]
    fn huge_chain_beyond_naive_range() {
        // 64 series links: naive refuses, reduction is instant and exact
        let edges: Vec<(usize, usize, f64)> = (0..64)
            .map(|i| (i, i + 1, 0.01 + (i % 7) as f64 / 100.0))
            .collect();
        let net = build(65, &edges);
        let d = FlowDemand::new(NodeId(0), NodeId(64), 1);
        assert!(reliability_naive(&net, d, &CalcOptions::default()).is_err());
        let r = reliability_sp_reduced(&net, d, &CalcOptions::default()).unwrap();
        let expected: f64 = edges.iter().map(|&(_, _, p)| 1.0 - p).product();
        assert!((r - expected).abs() < 1e-12);
    }

    #[test]
    fn pendant_two_cycle_removed() {
        // s - t, plus a cycle hanging off a middle node
        let net = build(3, &[(0, 1, 0.1), (1, 2, 0.2), (1, 2, 0.3)]);
        // t = node 1; node 2 is a non-terminal connected only to node 1 (twice)
        let red = reduce_unit_demand(&net, NodeId(0), NodeId(1));
        assert_eq!(red.net.edge_count(), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_reduction_preserves_reliability(
            n in 2usize..7,
            raw in proptest::collection::vec((0usize..7, 0usize..7, 1u32..31), 1..11),
        ) {
            let edges: Vec<(usize, usize, f64)> =
                raw.iter().map(|&(u, v, p)| (u % n, v % n, p as f64 / 32.0)).collect();
            let net = build(n, &edges);
            let d = FlowDemand::new(NodeId(0), NodeId::from(n - 1), 1);
            let naive = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
            let sp = reliability_sp_reduced(&net, d, &CalcOptions::default()).unwrap();
            prop_assert!((naive - sp).abs() < 1e-10, "naive {} vs sp {}", naive, sp);
        }
    }
}
