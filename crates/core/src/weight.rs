//! The weight abstraction: one generic implementation, two value domains.
//!
//! Every probability computation in this crate is written once, generically
//! over [`Weight`], and instantiated at `f64` (fast) and
//! [`exactmath::BigRational`] (exact). Because both instantiations execute the
//! *same* code, the exact run validates the float run end to end.

use exactmath::BigRational;
use netgraph::{Network, StateExpansion};

/// A commutative ring with subtraction, rich enough for probability algebra.
pub trait Weight: Clone + PartialEq + std::fmt::Debug + Send + Sync {
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// `self + other`.
    fn add(&self, other: &Self) -> Self;
    /// `self - other`.
    fn sub(&self, other: &Self) -> Self;
    /// `self * other`.
    fn mul(&self, other: &Self) -> Self;
    /// True when equal to zero.
    fn is_zero(&self) -> bool;
}

impl Weight for f64 {
    fn zero() -> Self {
        0.0
    }
    fn one() -> Self {
        1.0
    }
    fn add(&self, other: &Self) -> Self {
        self + other
    }
    fn sub(&self, other: &Self) -> Self {
        self - other
    }
    fn mul(&self, other: &Self) -> Self {
        self * other
    }
    fn is_zero(&self) -> bool {
        *self == 0.0
    }
}

impl Weight for BigRational {
    fn zero() -> Self {
        BigRational::zero()
    }
    fn one() -> Self {
        BigRational::one()
    }
    fn add(&self, other: &Self) -> Self {
        BigRational::add(self, other)
    }
    fn sub(&self, other: &Self) -> Self {
        BigRational::sub(self, other)
    }
    fn mul(&self, other: &Self) -> Self {
        BigRational::mul(self, other)
    }
    fn is_zero(&self) -> bool {
        BigRational::is_zero(self)
    }
}

/// Per-edge `(alive, failed)` probability pair: `(1 − p(e), p(e))`.
pub type EdgeWeights<W> = Vec<(W, W)>;

/// The `(1 − p, p)` pairs of every edge, as `f64`.
pub fn edge_weights(net: &Network) -> EdgeWeights<f64> {
    net.edges()
        .iter()
        .map(|e| (1.0 - e.fail_prob, e.fail_prob))
        .collect()
}

/// The `(1 − p, p)` pairs of every edge, as exact rationals. The stored `f64`
/// probabilities convert exactly (they are dyadic rationals), so the exact
/// computation models precisely the same network the float one does.
pub fn edge_weights_exact(net: &Network) -> EdgeWeights<BigRational> {
    net.edges()
        .iter()
        .map(|e| {
            let p = BigRational::from_f64(e.fail_prob);
            (p.complement(), p)
        })
        .collect()
}

/// Per-digit state probability vectors: `weights[j][v]` is the probability
/// of state digit `j` (of a tranche expansion) holding state `v`.
pub type DigitWeights<W> = Vec<Vec<W>>;

/// The per-digit state probabilities of a tranche expansion, as `f64` —
/// binary digits contribute `[p, 1 − p]`, multi-state digits their spectrum
/// probabilities ascending by capacity.
pub fn digit_weights(x: &StateExpansion) -> DigitWeights<f64> {
    x.digits.iter().map(|d| d.probs.clone()).collect()
}

/// The per-digit state probabilities of a tranche expansion, as exact
/// rationals (the stored `f64` probabilities are dyadic, so the conversion
/// is exact).
pub fn digit_weights_exact(x: &StateExpansion) -> DigitWeights<BigRational> {
    x.digits
        .iter()
        .map(|d| d.probs.iter().map(|&p| BigRational::from_f64(p)).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder};

    #[test]
    fn f64_ring_ops() {
        assert_eq!(Weight::add(&2.0, &3.0), 5.0);
        assert_eq!(Weight::mul(&2.0, &3.0), 6.0);
        assert_eq!(Weight::sub(&2.0, &3.0), -1.0);
        assert!(Weight::is_zero(&0.0));
        assert!(!Weight::is_zero(&1e-300));
    }

    #[test]
    fn rational_ring_ops() {
        let half = BigRational::from_ratio(1, 2);
        let third = BigRational::from_ratio(1, 3);
        assert_eq!(Weight::add(&half, &third), BigRational::from_ratio(5, 6));
        assert_eq!(Weight::mul(&half, &third), BigRational::from_ratio(1, 6));
        assert!(Weight::is_zero(&BigRational::zero()));
    }

    #[test]
    fn weights_complement() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.25).unwrap();
        let net = b.build();
        let w = edge_weights(&net);
        assert_eq!(w[0], (0.75, 0.25));
        let we = edge_weights_exact(&net);
        assert_eq!(we[0].1, BigRational::from_ratio(1, 4));
        assert_eq!(we[0].0, BigRational::from_ratio(3, 4));
    }
}
