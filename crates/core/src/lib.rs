//! # flowrel-core — reliability of flow networks with bottleneck links
//!
//! Implementation of *Reliability Calculation of P2P Streaming Systems with
//! Bottleneck Links* (S. Fujita, IEEE IPDPSW 2017).
//!
//! Given a network `G = (V, E)` whose links have capacities `c(e)` and
//! independent failure probabilities `p(e)`, and a flow demand
//! `D = (s, t, d)`, the **reliability** is the probability that the random
//! subgraph of surviving links admits an s–t flow of value at least `d`.
//!
//! The crate provides four exact algorithms plus a strategy-picking
//! calculator:
//!
//! * [`naive::reliability_naive`] — enumerate all `2^|E|` failure
//!   configurations (the paper's baseline, Fig. 1);
//! * [`bridge::reliability_bridge`] — recursive series decomposition along
//!   bridges (the paper's `k = 1` case, Fig. 2 / Eq. 1);
//! * [`algorithm::reliability_bottleneck`] — the paper's main contribution:
//!   decomposition along a set of α-bottleneck links, per-side realization
//!   arrays (Section III-C), and inclusion–exclusion accumulation over
//!   supported assignments (Section IV);
//! * [`factoring::reliability_factoring`] — classic conditioning with
//!   flow-based pruning, an additional exact comparator;
//! * [`calculator::ReliabilityCalculator`] — picks a strategy automatically
//!   and reports what it did.
//!
//! Every algorithm exists in `f64` (with compensated summation) and exact
//! [`exactmath::BigRational`] forms; the generic code is shared through the
//! [`weight::Weight`] abstraction, so the exact form validates the float form
//! down to the last operation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulate;
pub mod algorithm;
pub mod assign;
pub mod bottleneck;
pub mod bounds;
pub mod bridge;
pub mod budget;
pub mod calculator;
pub mod certcache;
pub mod checkpoint;
pub mod decompose;
pub mod demand;
pub mod error;
pub mod factoring;
pub mod fnet;
pub mod importance;
pub mod naive;
pub mod nodefail;
pub mod options;
pub mod oracle;
pub mod plan;
pub mod polynomial;
pub mod preprocess;
pub mod reduce;
pub mod spectrum;
pub mod spreduce;
pub mod sweep;
pub mod table;
pub mod weight;

pub use accumulate::{combine_interval, AccumulationMethod};
pub use algorithm::{
    reliability_bottleneck, reliability_bottleneck_anytime, reliability_bottleneck_anytime_on,
    reliability_bottleneck_exact, BottleneckOutcome, BottleneckReport, PlanSlotReport,
};
pub use assign::{enumerate_assignments, Assignment, AssignmentModel};
pub use bottleneck::{
    find_all_bottleneck_sets, find_bottleneck_set, validate_bottleneck_set, BottleneckSet,
};
pub use bounds::{enumerate_minimal_cuts, enumerate_simple_paths, esary_proschan_bounds};
pub use bridge::reliability_bridge;
pub use bridge::reliability_bridge_exact;
pub use budget::{Budget, BudgetSentinel, CancelToken};
pub use calculator::{Outcome, PartialReport, ReliabilityCalculator, ReliabilityReport, Strategy};
pub use certcache::{CertCache, SolveCert, SweepStats};
pub use checkpoint::{
    instance_fingerprint, Checkpoint, CheckpointKind, FactoringCheckpoint, NaiveCheckpoint,
    PlanCheckpoint, PlanLeafState, SideCheckpoint, SweepCursor,
};
pub use decompose::{decompose, Decomposition, Side};
pub use demand::FlowDemand;
pub use error::ReliabilityError;
pub use factoring::{
    reliability_factoring, reliability_factoring_anytime, reliability_factoring_exact,
    FactoringOutcome,
};
pub use fnet::NetFile;
pub use importance::{birnbaum_importance, LinkImportance};
pub use montecarlo::{
    EstimatorKind, McBudget, McCheckpoint, McError, McOutcome, McReport, McSettings, StopTarget,
};
pub use naive::{
    reliability_naive, reliability_naive_anytime, reliability_naive_anytime_on,
    reliability_naive_exact, reliability_naive_weighted, reliability_naive_with_stats,
    NaiveOutcome,
};
pub use nodefail::{split_node_failures, NodeSplit};
pub use options::CalcOptions;
pub use oracle::{DemandOracle, SideOracle};
pub use plan::{
    CutNode, DecompositionPlan, DeepCutNode, LeafNode, PlanNode, PlanOutcome, SidePlan, SweepNode,
};
pub use polynomial::{reliability_polynomial, ReliabilityPolynomial};
pub use preprocess::{relevance_reduce, RelevantNetwork};
pub use reduce::{reduce, ReduceStats, Reduction};
pub use spectrum::RealizationSpectrum;
pub use spreduce::{reduce_unit_demand, reliability_sp_reduced, ReducedNetwork, ReductionStats};
pub use sweep::{
    sweep_spectrum, sweep_spectrum_budgeted, sweep_sum, sweep_sum_budgeted, sweep_table,
    sweep_table_budgeted, PartialSpectrum, PartialSum, PartialTable, SweepConfig, SweepOracle,
};
pub use table::RealizationTable;
pub use weight::{edge_weights, edge_weights_exact, Weight};
