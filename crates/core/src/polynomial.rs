//! The reliability polynomial for uniform link-failure probability.
//!
//! When every link fails with the same probability `p`, the reliability is a
//! polynomial in `p`:
//!
//! `R(p) = Σ_{i=0..|E|} N_i · (1−p)^i · p^{|E|−i}`
//!
//! where `N_i` counts the failure configurations with exactly `i` alive links
//! that admit the demand. The counts are structural — they depend only on the
//! topology, capacities and demand, not on `p` — so one enumeration answers
//! *every* uniform failure rate at once (percolation-style sweeps, e.g.
//! "at what churn level does the overlay collapse?").

use netgraph::{EdgeMask, Network};

use crate::demand::FlowDemand;
use crate::error::ReliabilityError;
use crate::options::CalcOptions;
use crate::oracle::DemandOracle;

/// The structural coefficients of the reliability polynomial.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReliabilityPolynomial {
    /// `counts[i]` = number of operational configurations with exactly `i`
    /// alive links.
    pub counts: Vec<u64>,
    /// Number of links `|E|`.
    pub edges: usize,
}

impl ReliabilityPolynomial {
    /// Evaluates `R(p)` for a uniform failure probability `p ∈ [0, 1]`.
    pub fn evaluate(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let q = 1.0 - p;
        let mut r = 0.0;
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            r += n as f64 * q.powi(i as i32) * p.powi((self.edges - i) as i32);
        }
        r
    }

    /// Number of operational configurations in total.
    pub fn operational_configurations(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The smallest number of surviving links that can still admit the
    /// demand (`None` when no configuration does).
    pub fn min_operational_links(&self) -> Option<usize> {
        self.counts.iter().position(|&n| n > 0)
    }
}

/// Computes the reliability polynomial by a single `2^|E|` sweep.
pub fn reliability_polynomial(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<ReliabilityPolynomial, ReliabilityError> {
    demand.validate(net)?;
    let m = net.edge_count();
    assert!(
        m <= EdgeMask::MAX_EDGES,
        "polynomial sweep supports at most 64 links"
    );
    if m > opts.max_enum_edges {
        return Err(ReliabilityError::TooManyEdges {
            count: m,
            max: opts.max_enum_edges,
        });
    }
    let mut counts = vec![0u64; m + 1];
    if demand.demand == 0 {
        // every configuration admits a zero demand
        for (i, slot) in counts.iter_mut().enumerate() {
            *slot = binomial(m as u64, i as u64);
        }
        return Ok(ReliabilityPolynomial { counts, edges: m });
    }
    let mut oracle = DemandOracle::new(net, demand.source, demand.sink, demand.demand, opts.solver);
    if oracle.max_flow_all_alive() < demand.demand {
        return Ok(ReliabilityPolynomial { counts, edges: m });
    }
    for bits in 0..(1u64 << m) {
        let mask = EdgeMask::from_bits(bits, m);
        if oracle.admits(mask) {
            counts[mask.alive_count()] += 1;
        }
    }
    Ok(ReliabilityPolynomial { counts, edges: m })
}

fn binomial(n: u64, k: u64) -> u64 {
    let k = k.min(n - k);
    let mut r = 1u64;
    for i in 0..k {
        r = r * (n - i) / (i + 1);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::reliability_naive;
    use netgraph::{GraphKind, NetworkBuilder, NodeId};

    fn uniform_net(p: f64) -> Network {
        // diamond with uniform probability
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 1, p).unwrap();
        b.add_edge(n[0], n[2], 1, p).unwrap();
        b.add_edge(n[1], n[3], 1, p).unwrap();
        b.add_edge(n[2], n[3], 1, p).unwrap();
        b.build()
    }

    #[test]
    fn single_link_polynomial() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.5).unwrap();
        let net = b.build();
        let poly = reliability_polynomial(
            &net,
            FlowDemand::new(n[0], n[1], 1),
            &CalcOptions::default(),
        )
        .unwrap();
        assert_eq!(poly.counts, vec![0, 1]);
        assert!((poly.evaluate(0.3) - 0.7).abs() < 1e-12);
        assert_eq!(poly.min_operational_links(), Some(1));
    }

    #[test]
    fn matches_naive_at_sample_points() {
        for p in [0.0f64, 0.1, 0.25, 0.5, 0.9] {
            let net = uniform_net(p.clamp(1e-9, 0.999));
            let d = FlowDemand::new(NodeId(0), NodeId(3), 1);
            let poly = reliability_polynomial(&net, d, &CalcOptions::default()).unwrap();
            let naive = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
            let via_poly = poly.evaluate(net.edge(netgraph::EdgeId(0)).fail_prob);
            assert!(
                (via_poly - naive).abs() < 1e-12,
                "p={p}: poly {via_poly} vs naive {naive}"
            );
        }
    }

    #[test]
    fn counts_are_structural() {
        // the counts must not depend on the probabilities at all
        let a = reliability_polynomial(
            &uniform_net(0.1),
            FlowDemand::new(NodeId(0), NodeId(3), 1),
            &CalcOptions::default(),
        )
        .unwrap();
        let b = reliability_polynomial(
            &uniform_net(0.7),
            FlowDemand::new(NodeId(0), NodeId(3), 1),
            &CalcOptions::default(),
        )
        .unwrap();
        assert_eq!(a, b);
        // diamond, d=1: works with {e0,e2}, {e1,e3} (2 of the C(4,2)=6
        // two-link configs), all four 3-link configs, and the full config
        assert_eq!(a.counts, vec![0, 0, 2, 4, 1]);
        assert_eq!(a.operational_configurations(), 7);
        assert_eq!(a.min_operational_links(), Some(2));
    }

    #[test]
    fn demand_two_needs_more_links() {
        let net = uniform_net(0.2);
        let poly = reliability_polynomial(
            &net,
            FlowDemand::new(NodeId(0), NodeId(3), 2),
            &CalcOptions::default(),
        )
        .unwrap();
        assert_eq!(poly.min_operational_links(), Some(4), "both paths required");
        assert_eq!(poly.counts, vec![0, 0, 0, 0, 1]);
    }

    #[test]
    fn infeasible_demand_gives_zero_polynomial() {
        let net = uniform_net(0.2);
        let poly = reliability_polynomial(
            &net,
            FlowDemand::new(NodeId(0), NodeId(3), 5),
            &CalcOptions::default(),
        )
        .unwrap();
        assert_eq!(poly.operational_configurations(), 0);
        assert_eq!(poly.evaluate(0.1), 0.0);
        assert_eq!(poly.min_operational_links(), None);
    }

    #[test]
    fn zero_demand_counts_everything() {
        let net = uniform_net(0.2);
        let poly = reliability_polynomial(
            &net,
            FlowDemand::new(NodeId(0), NodeId(3), 0),
            &CalcOptions::default(),
        )
        .unwrap();
        assert_eq!(poly.counts, vec![1, 4, 6, 4, 1]);
        assert!((poly.evaluate(0.37) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evaluate_at_extremes() {
        let net = uniform_net(0.2);
        let d = FlowDemand::new(NodeId(0), NodeId(3), 1);
        let poly = reliability_polynomial(&net, d, &CalcOptions::default()).unwrap();
        assert_eq!(poly.evaluate(0.0), 1.0, "no failures: the diamond works");
        assert_eq!(poly.evaluate(1.0), 0.0, "all links failed");
    }
}
