//! The shared configuration-sweep engine.
//!
//! Every exponential enumeration in the crate — the naive `2^|E|` baseline,
//! the weighted/exact variant, the per-side realization spectrum, and the
//! paper-faithful realization table — walks a `2^m` configuration space and
//! asks a max-flow oracle one monotone feasibility question per
//! configuration. This module centralizes that walk and layers three exact
//! optimizations on top of it:
//!
//! 1. **Certificate caching** ([`crate::certcache`]): each solver verdict is
//!    generalized into a monotonicity certificate (flow support / saturated
//!    cut), and subsequent configurations are first tested against a bounded
//!    cache of certificates — a few word operations instead of a max-flow.
//! 2. **Gray-code enumeration with split-product weights**: configurations
//!    are visited in an order that changes one link per step (O(1) mask
//!    maintenance), and each configuration's probability is the product of a
//!    precomputed low-bits table entry and a per-block high-bits product —
//!    two multiplications per configuration, division-free, so the same code
//!    is exact for [`exactmath::BigRational`] weights.
//! 3. **Chunked parallelism**: the index space is split into contiguous
//!    chunks; each rayon worker owns a *clone* of the oracle, its own
//!    certificate cache, and a private accumulator, merged at the end.
//!
//! All three are behavior-preserving: certificates answer exactly what the
//! solver would, the weight factorization is algebraically identical, and
//! the parallel merge only regroups additions (bit-identical for exact
//! weights, within rounding for `f64`).

use exactmath::NeumaierSum;
use netgraph::EdgeMask;
use rayon::prelude::*;

use crate::certcache::{CertCache, SolveCert, SweepStats};
use crate::options::CalcOptions;
use crate::oracle::{DemandOracle, SideOracle};
use crate::weight::Weight;

/// Low-bits width of the split-product weight table (table size `2^this`)
/// and granularity of the per-block high products.
const BLOCK_BITS: usize = 12;

/// Minimum enumeration exponent before chunked parallelism pays for itself.
const PARALLEL_MIN_BITS: usize = 10;

/// How the engine should run one sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Split the index space across rayon workers.
    pub parallel: bool,
    /// Consult/record monotonicity certificates before invoking the solver.
    pub certificates: bool,
    /// Certificates retained per cache (per kind, per worker, and — for side
    /// sweeps — per assignment).
    pub cache_size: usize,
}

impl SweepConfig {
    /// Serial, certificate-free sweep (the legacy behavior).
    pub fn serial() -> Self {
        SweepConfig {
            parallel: false,
            certificates: false,
            cache_size: 0,
        }
    }

    /// Derives the sweep configuration from the calculation options.
    pub fn from_opts(opts: &CalcOptions) -> Self {
        SweepConfig {
            parallel: opts.parallel,
            certificates: opts.certificate_cache,
            cache_size: opts.certificate_cache_size,
        }
    }

    fn cache(&self) -> Option<CertCache> {
        if self.certificates {
            Some(CertCache::new(self.cache_size))
        } else {
            None
        }
    }
}

/// A feasibility oracle the engine can drive: one monotone verdict per
/// configuration, with optional certificate extraction.
pub trait SweepOracle {
    /// Tests one configuration; extracts a certificate when `want_cert`.
    fn test_config(&mut self, mask: EdgeMask, want_cert: bool) -> (bool, SolveCert);

    /// Per-link capacities in the mask's bit order, used by cut certificates
    /// to bound the flow a configuration can carry across a witnessed cut.
    fn edge_capacities(&self) -> &[u64];
}

impl SweepOracle for DemandOracle {
    fn test_config(&mut self, mask: EdgeMask, want_cert: bool) -> (bool, SolveCert) {
        self.admits_with_cert(mask, want_cert)
    }

    fn edge_capacities(&self) -> &[u64] {
        DemandOracle::edge_capacities(self)
    }
}

impl SweepOracle for SideOracle {
    fn test_config(&mut self, mask: EdgeMask, want_cert: bool) -> (bool, SolveCert) {
        self.admits_with_cert(mask, want_cert)
    }

    fn edge_capacities(&self) -> &[u64] {
        SideOracle::edge_capacities(self)
    }
}

/// Answers one configuration from the certificate cache when possible,
/// otherwise solves and records the new certificate.
#[inline]
fn classify_or_solve<O: SweepOracle>(
    oracle: &mut O,
    cache: &mut Option<CertCache>,
    mask: EdgeMask,
    stats: &mut SweepStats,
) -> bool {
    stats.configs += 1;
    match cache {
        Some(cache) => {
            if let Some(verdict) = cache.classify(mask.bits(), oracle.edge_capacities()) {
                if verdict {
                    stats.feasible_hits += 1;
                } else {
                    stats.infeasible_hits += 1;
                }
                return verdict;
            }
            stats.solver_calls += 1;
            let (ok, cert) = oracle.test_config(mask, true);
            cache.record(cert);
            ok
        }
        None => {
            stats.solver_calls += 1;
            oracle.test_config(mask, false).0
        }
    }
}

/// Solves the all-alive and all-dead configurations once to pre-seed worker
/// caches: their certificates (the best-case flow support and the worst-case
/// cut) are the two most general ones a sweep can hold, and parallel workers
/// would otherwise each rediscover them from a cold cache.
fn seed_certs<O: SweepOracle>(
    oracle: &mut O,
    masks: [EdgeMask; 2],
    stats: &mut SweepStats,
) -> Vec<SolveCert> {
    let mut seeds = Vec::with_capacity(2);
    for mask in masks {
        stats.solver_calls += 1;
        let (_, cert) = oracle.test_config(mask, true);
        if cert != SolveCert::None {
            seeds.push(cert);
        }
    }
    seeds
}

/// A fresh per-worker cache, pre-loaded with the seed certificates.
fn seeded_cache(cfg: &SweepConfig, seeds: &[SolveCert]) -> Option<CertCache> {
    let mut cache = cfg.cache();
    if let Some(c) = &mut cache {
        for &s in seeds {
            c.record(s);
        }
    }
    cache
}

/// Split-product weight table: `weight(config) = low[config & low_mask] ·
/// high(config >> low_bits)`, where `low` is precomputed once (two
/// multiplications per entry) and the high product changes only once per
/// `2^low_bits` block. Division-free, so exact for any [`Weight`].
struct WeightTable<W> {
    low: Vec<W>,
    low_bits: usize,
    low_mask: u64,
}

impl<W: Weight> WeightTable<W> {
    /// `weights[i]` is the `(alive, failed)` pair of enumeration bit `i`.
    fn new(weights: &[(W, W)]) -> Self {
        let b = BLOCK_BITS.min(weights.len());
        let mut low = vec![W::one()];
        for w in weights.iter().take(b) {
            let mut next = Vec::with_capacity(low.len() * 2);
            for t in &low {
                next.push(t.mul(&w.1)); // new top bit 0: failed
            }
            for t in &low {
                next.push(t.mul(&w.0)); // new top bit 1: alive
            }
            low = next;
        }
        let low_mask = if b == 0 { 0 } else { (1u64 << b) - 1 };
        WeightTable {
            low,
            low_bits: b,
            low_mask,
        }
    }

    /// Product over the bits at positions `low_bits..` for block `g_high`.
    fn high_product(&self, weights: &[(W, W)], g_high: u64) -> W {
        let mut p = W::one();
        for (i, w) in weights.iter().enumerate().skip(self.low_bits) {
            p = p.mul(if g_high >> (i - self.low_bits) & 1 == 1 {
                &w.0
            } else {
                &w.1
            });
        }
        p
    }

    /// Weight of configuration `g`, given its block's high product.
    fn weight(&self, g: u64, high: &W) -> W {
        self.low[(g & self.low_mask) as usize].mul(high)
    }
}

/// Partial-sum strategy of a sweep: compensated for `f64`, plain ring
/// addition for exact weights.
pub trait SweepAccumulator<W>: Send {
    /// The zero accumulator.
    fn empty() -> Self;
    /// Adds one configuration's weight.
    fn add(&mut self, w: W);
    /// Folds in another worker's partial sum.
    fn merge(&mut self, other: Self);
    /// The accumulated total.
    fn finish(self) -> W;
}

/// Neumaier-compensated `f64` accumulation.
pub struct CompensatedAcc(NeumaierSum);

impl SweepAccumulator<f64> for CompensatedAcc {
    fn empty() -> Self {
        CompensatedAcc(NeumaierSum::new())
    }

    fn add(&mut self, w: f64) {
        self.0.add(w);
    }

    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
    }

    fn finish(self) -> f64 {
        self.0.total()
    }
}

/// Plain `W` addition (exact for rational weights).
pub struct PlainAcc<W>(W);

impl<W: Weight> SweepAccumulator<W> for PlainAcc<W> {
    fn empty() -> Self {
        PlainAcc(W::zero())
    }

    fn add(&mut self, w: W) {
        self.0 = self.0.add(&w);
    }

    fn merge(&mut self, other: Self) {
        self.0 = self.0.add(&other.0);
    }

    fn finish(self) -> W {
        self.0
    }
}

/// Geometry of a naive sweep: which network edges are enumerated (compact
/// bit `j` ↔ edge `fallible[j]`) and which are pinned alive.
pub struct SweepGeometry<'a> {
    /// Enumerated edge indices, in compact-bit order.
    pub fallible: &'a [usize],
    /// Bits (over the full edge numbering) pinned alive in every mask.
    pub pinned: u64,
    /// Total network edge count (full mask width).
    pub edge_count: usize,
}

/// Sums the weights of all feasible configurations of a `2^m` enumeration
/// over `geom.fallible`, where `weights[j]` is the `(alive, failed)` pair of
/// compact bit `j`.
pub fn sweep_sum<W, A, O>(
    oracle: &O,
    geom: &SweepGeometry<'_>,
    weights: &[(W, W)],
    cfg: &SweepConfig,
) -> (W, SweepStats)
where
    W: Weight,
    A: SweepAccumulator<W>,
    O: SweepOracle + Clone + Send + Sync,
{
    let m = geom.fallible.len();
    assert_eq!(weights.len(), m, "one weight pair per enumerated edge");
    let total = 1u64 << m;
    let wt = WeightTable::new(weights);
    if cfg.parallel && m >= PARALLEL_MIN_BITS {
        let mut seed_stats = SweepStats::default();
        let seeds = if cfg.certificates {
            let mut probe = oracle.clone();
            let alive = geom.fallible.iter().fold(geom.pinned, |b, &i| b | 1 << i);
            seed_certs(
                &mut probe,
                [
                    EdgeMask::from_bits(alive, geom.edge_count),
                    EdgeMask::from_bits(geom.pinned, geom.edge_count),
                ],
                &mut seed_stats,
            )
        } else {
            Vec::new()
        };
        let chunks = (rayon::current_num_threads() * 8).max(1) as u64;
        let chunk_len = total.div_ceil(chunks);
        let (acc, mut stats) = (0..chunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * chunk_len;
                let hi = ((c + 1) * chunk_len).min(total);
                let mut local = oracle.clone();
                let mut cache = seeded_cache(cfg, &seeds);
                let mut stats = SweepStats::default();
                let acc = sum_range::<W, A, O>(
                    &mut local, &mut cache, &mut stats, lo, hi, geom, &wt, weights,
                );
                (acc, stats)
            })
            .reduce(
                || (A::empty(), SweepStats::default()),
                |mut a, b| {
                    a.0.merge(b.0);
                    a.1.merge(&b.1);
                    a
                },
            );
        stats.merge(&seed_stats);
        (acc.finish(), stats)
    } else {
        let mut local = oracle.clone();
        let mut cache = cfg.cache();
        let mut stats = SweepStats::default();
        let acc = sum_range::<W, A, O>(
            &mut local, &mut cache, &mut stats, 0, total, geom, &wt, weights,
        );
        (acc.finish(), stats)
    }
}

/// One worker's share of [`sweep_sum`]: Gray-code walk over `lo..hi` with
/// O(1) mask maintenance and split-product weights.
#[allow(clippy::too_many_arguments)]
fn sum_range<W, A, O>(
    oracle: &mut O,
    cache: &mut Option<CertCache>,
    stats: &mut SweepStats,
    lo: u64,
    hi: u64,
    geom: &SweepGeometry<'_>,
    wt: &WeightTable<W>,
    weights: &[(W, W)],
) -> A
where
    W: Weight,
    A: SweepAccumulator<W>,
    O: SweepOracle,
{
    let mut acc = A::empty();
    if lo >= hi {
        return acc;
    }
    // Gray code of the starting index; `bits` scatters it onto the full
    // edge numbering.
    let mut g = lo ^ (lo >> 1);
    let mut bits = geom.pinned;
    let mut rest = g;
    while rest != 0 {
        let j = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        bits |= 1 << geom.fallible[j];
    }
    let mut high = wt.high_product(weights, g >> wt.low_bits);
    let mut c = lo;
    loop {
        if classify_or_solve(
            oracle,
            cache,
            EdgeMask::from_bits(bits, geom.edge_count),
            stats,
        ) {
            acc.add(wt.weight(g, &high));
        }
        c += 1;
        if c >= hi {
            break;
        }
        // successive Gray codes differ in exactly bit tz(c)
        let flip = c.trailing_zeros() as usize;
        g ^= 1 << flip;
        bits ^= 1 << geom.fallible[flip];
        if flip >= wt.low_bits {
            high = wt.high_product(weights, g >> wt.low_bits);
        }
    }
    acc
}

/// Builds the realization-spectrum masses for one side: `mass[r]` = total
/// probability of side configurations whose realization mask over the `live`
/// assignments is exactly `r`. `weights[i]` is the `(alive, failed)` pair of
/// side link `i`; `assign_count` sizes the mask space.
pub fn sweep_spectrum<W: Weight>(
    oracle: &SideOracle,
    live: &[usize],
    weights: &[(W, W)],
    assign_count: usize,
    cfg: &SweepConfig,
) -> (Vec<W>, SweepStats) {
    let m = oracle.edge_count();
    assert_eq!(weights.len(), m, "one weight pair per side link");
    let total = 1u64 << m;
    let size = 1usize << assign_count;
    let wt = WeightTable::new(weights);
    if cfg.parallel && m >= PARALLEL_MIN_BITS {
        let (seeds, seed_stats) = side_seeds(oracle, live, cfg);
        let chunks = (rayon::current_num_threads() * 8).max(1) as u64;
        let chunk_len = total.div_ceil(chunks);
        let (mass, mut stats) = (0..chunks)
            .into_par_iter()
            .map(|ci| {
                let lo = ci * chunk_len;
                let hi = ((ci + 1) * chunk_len).min(total);
                let mut local = oracle.clone();
                let mut caches: Vec<Option<CertCache>> =
                    seeds.iter().map(|s| seeded_cache(cfg, s)).collect();
                let mut stats = SweepStats::default();
                let mass = spectrum_range(
                    &mut local,
                    &mut caches,
                    live,
                    lo,
                    hi,
                    &wt,
                    weights,
                    size,
                    &mut stats,
                );
                (mass, stats)
            })
            .reduce(
                || (vec![W::zero(); size], SweepStats::default()),
                |mut a, b| {
                    for (x, y) in a.0.iter_mut().zip(&b.0) {
                        *x = x.add(y);
                    }
                    a.1.merge(&b.1);
                    a
                },
            );
        stats.merge(&seed_stats);
        (mass, stats)
    } else {
        let mut local = oracle.clone();
        let mut caches: Vec<Option<CertCache>> = live.iter().map(|_| cfg.cache()).collect();
        let mut stats = SweepStats::default();
        let mass = spectrum_range(
            &mut local,
            &mut caches,
            live,
            0,
            total,
            &wt,
            weights,
            size,
            &mut stats,
        );
        (mass, stats)
    }
}

/// Seed certificates for a side sweep, one set per live assignment (each
/// assignment has its own cache — certificates are only valid under the
/// assignment they were extracted with).
fn side_seeds(
    oracle: &SideOracle,
    live: &[usize],
    cfg: &SweepConfig,
) -> (Vec<Vec<SolveCert>>, SweepStats) {
    let mut stats = SweepStats::default();
    if !cfg.certificates {
        return (vec![Vec::new(); live.len()], stats);
    }
    let m = oracle.edge_count();
    let mut probe = oracle.clone();
    let seeds = live
        .iter()
        .map(|&j| {
            probe.set_assignment(j);
            seed_certs(
                &mut probe,
                [EdgeMask::all_alive(m), EdgeMask::all_failed(m)],
                &mut stats,
            )
        })
        .collect();
    (seeds, stats)
}

/// One worker's share of [`sweep_spectrum`]: per table-block, realize every
/// live assignment (amortizing assignment switches), then accumulate the
/// block's configuration weights into the mask masses.
#[allow(clippy::too_many_arguments)]
fn spectrum_range<W: Weight>(
    oracle: &mut SideOracle,
    caches: &mut [Option<CertCache>],
    live: &[usize],
    lo: u64,
    hi: u64,
    wt: &WeightTable<W>,
    weights: &[(W, W)],
    size: usize,
    stats: &mut SweepStats,
) -> Vec<W> {
    let m = oracle.edge_count();
    let mut mass = vec![W::zero(); size];
    let block = 1u64 << wt.low_bits;
    let mut realized = vec![0u32; block as usize];
    let mut blo = lo;
    while blo < hi {
        // stop at the next table-block boundary so one high product covers
        // the whole sub-range
        let bhi = hi.min((blo | (block - 1)) + 1);
        realized[..(bhi - blo) as usize].fill(0);
        for (idx, &j) in live.iter().enumerate() {
            oracle.set_assignment(j);
            let cache = &mut caches[idx];
            for c in blo..bhi {
                if classify_or_solve(oracle, cache, EdgeMask::from_bits(c, m), stats) {
                    realized[(c - blo) as usize] |= 1 << j;
                }
            }
        }
        let high = wt.high_product(weights, blo >> wt.low_bits);
        for c in blo..bhi {
            let slot = &mut mass[realized[(c - blo) as usize] as usize];
            *slot = slot.add(&wt.weight(c, &high));
        }
        blo = bhi;
    }
    mass
}

/// Builds the paper-faithful realization array: `masks[c]` has bit `j` set
/// iff side configuration `c` realizes live assignment `j`.
pub fn sweep_table(
    oracle: &SideOracle,
    live: &[usize],
    cfg: &SweepConfig,
) -> (Vec<u32>, SweepStats) {
    let m = oracle.edge_count();
    let total = 1u64 << m;
    if cfg.parallel && m >= PARALLEL_MIN_BITS {
        let (seeds, seed_stats) = side_seeds(oracle, live, cfg);
        let chunks = (rayon::current_num_threads() * 8).max(1) as u64;
        let chunk_len = total.div_ceil(chunks);
        let (mut segments, mut stats) = (0..chunks)
            .into_par_iter()
            .map(|ci| {
                let lo = ci * chunk_len;
                let hi = ((ci + 1) * chunk_len).min(total);
                let mut local = oracle.clone();
                let mut caches: Vec<Option<CertCache>> =
                    seeds.iter().map(|s| seeded_cache(cfg, s)).collect();
                let mut stats = SweepStats::default();
                let masks = table_range(&mut local, &mut caches, live, lo, hi, &mut stats);
                (vec![(lo, masks)], stats)
            })
            .reduce(
                || (Vec::new(), SweepStats::default()),
                |mut a, mut b| {
                    a.0.append(&mut b.0);
                    a.1.merge(&b.1);
                    a
                },
            );
        segments.sort_by_key(|&(lo, _)| lo);
        stats.merge(&seed_stats);
        (segments.into_iter().flat_map(|(_, v)| v).collect(), stats)
    } else {
        let mut local = oracle.clone();
        let mut caches: Vec<Option<CertCache>> = live.iter().map(|_| cfg.cache()).collect();
        let mut stats = SweepStats::default();
        let masks = table_range(&mut local, &mut caches, live, 0, total, &mut stats);
        (masks, stats)
    }
}

/// One worker's share of [`sweep_table`].
fn table_range(
    oracle: &mut SideOracle,
    caches: &mut [Option<CertCache>],
    live: &[usize],
    lo: u64,
    hi: u64,
    stats: &mut SweepStats,
) -> Vec<u32> {
    let m = oracle.edge_count();
    let mut masks = vec![0u32; (hi - lo) as usize];
    for (idx, &j) in live.iter().enumerate() {
        oracle.set_assignment(j);
        let cache = &mut caches[idx];
        for c in lo..hi {
            if classify_or_solve(oracle, cache, EdgeMask::from_bits(c, m), stats) {
                masks[(c - lo) as usize] |= 1 << j;
            }
        }
    }
    masks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::FlowDemand;
    use maxflow::SolverKind;
    use netgraph::{GraphKind, Network, NetworkBuilder, NodeId};

    fn table_weight<W: Weight>(weights: &[(W, W)], g: u64) -> W {
        let mut p = W::one();
        for (i, w) in weights.iter().enumerate() {
            p = p.mul(if g >> i & 1 == 1 { &w.0 } else { &w.1 });
        }
        p
    }

    #[test]
    fn weight_table_matches_direct_product() {
        let weights: Vec<(f64, f64)> = (0..15)
            .map(|i| (0.9 - 0.01 * i as f64, 0.1 + 0.01 * i as f64))
            .collect();
        let wt = WeightTable::new(&weights);
        for g in [0u64, 1, 0xfff, 0x1000, 0x7abc, (1 << 15) - 1] {
            let high = wt.high_product(&weights, g >> wt.low_bits);
            let direct = table_weight(&weights, g);
            assert!((wt.weight(g, &high) - direct).abs() < 1e-15, "g={g:#x}");
        }
    }

    #[test]
    fn weight_table_handles_tiny_and_empty() {
        let weights: Vec<(f64, f64)> = vec![(0.8, 0.2)];
        let wt = WeightTable::new(&weights);
        let high = wt.high_product(&weights, 0);
        assert!((wt.weight(0, &high) - 0.2).abs() < 1e-15);
        assert!((wt.weight(1, &high) - 0.8).abs() < 1e-15);
        let empty: Vec<(f64, f64)> = Vec::new();
        let wt0 = WeightTable::new(&empty);
        assert!((wt0.weight(0, &wt0.high_product(&empty, 0)) - 1.0).abs() < 1e-15);
    }

    fn diamond() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[2], 1, 0.2).unwrap();
        b.add_edge(n[1], n[3], 1, 0.3).unwrap();
        b.add_edge(n[2], n[3], 1, 0.4).unwrap();
        b.build()
    }

    fn sum_with(cfg: &SweepConfig) -> (f64, SweepStats) {
        let net = diamond();
        let d = FlowDemand::new(NodeId(0), NodeId(3), 1);
        let oracle = DemandOracle::new(&net, d.source, d.sink, d.demand, SolverKind::Dinic);
        let fallible: Vec<usize> = (0..4).collect();
        let weights: Vec<(f64, f64)> = net
            .edges()
            .iter()
            .map(|e| (1.0 - e.fail_prob, e.fail_prob))
            .collect();
        let geom = SweepGeometry {
            fallible: &fallible,
            pinned: 0,
            edge_count: 4,
        };
        sweep_sum::<f64, CompensatedAcc, _>(&oracle, &geom, &weights, cfg)
    }

    #[test]
    fn gray_sweep_sums_feasible_probability() {
        // diamond, demand 1: R = 1 - (1 - 0.9*0.7)(1 - 0.8*0.6)
        let expected = 1.0 - (1.0 - 0.9 * 0.7) * (1.0 - 0.8 * 0.6);
        let (r, stats) = sum_with(&SweepConfig::serial());
        assert!((r - expected).abs() < 1e-12, "{r} vs {expected}");
        assert_eq!(stats.configs, 16);
        assert_eq!(stats.solver_calls, 16);
        assert_eq!(stats.solver_calls_avoided(), 0);
    }

    #[test]
    fn certificates_preserve_the_sum_and_avoid_solves() {
        let (r0, _) = sum_with(&SweepConfig::serial());
        let cfg = SweepConfig {
            parallel: false,
            certificates: true,
            cache_size: 16,
        };
        let (r1, stats) = sum_with(&cfg);
        assert_eq!(r1, r0, "serial cert-cached sweep must be bit-identical");
        assert!(
            stats.solver_calls_avoided() > 0,
            "16 configs must yield hits"
        );
        assert_eq!(
            stats.solver_calls + stats.solver_calls_avoided(),
            stats.configs
        );
    }

    #[test]
    fn pinned_edges_stay_alive() {
        let net = diamond();
        let d = FlowDemand::new(NodeId(0), NodeId(3), 1);
        let oracle = DemandOracle::new(&net, d.source, d.sink, d.demand, SolverKind::Dinic);
        // pin edge 0 alive, enumerate the rest
        let fallible = [1usize, 2, 3];
        let weights: Vec<(f64, f64)> = fallible
            .iter()
            .map(|&i| (1.0 - net.edges()[i].fail_prob, net.edges()[i].fail_prob))
            .collect();
        let geom = SweepGeometry {
            fallible: &fallible,
            pinned: 0b0001,
            edge_count: 4,
        };
        let (r, stats) =
            sweep_sum::<f64, CompensatedAcc, _>(&oracle, &geom, &weights, &SweepConfig::serial());
        // edge 0 alive with probability 1: R = 1 - (1 - 0.7)(1 - 0.8*0.6)
        let expected = 1.0 - (1.0 - 0.7) * (1.0 - 0.8 * 0.6);
        assert!((r - expected).abs() < 1e-12, "{r} vs {expected}");
        assert_eq!(stats.configs, 8);
    }
}
