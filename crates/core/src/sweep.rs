//! The shared configuration-sweep engine.
//!
//! Every exponential enumeration in the crate — the naive `2^|E|` baseline,
//! the weighted/exact variant, the per-side realization spectrum, and the
//! paper-faithful realization table — walks a `2^m` configuration space and
//! asks a max-flow oracle one monotone feasibility question per
//! configuration. This module centralizes that walk and layers three exact
//! optimizations on top of it:
//!
//! 1. **Certificate caching** ([`crate::certcache`]): each solver verdict is
//!    generalized into a monotonicity certificate (flow support / saturated
//!    cut), and subsequent configurations are first tested against a bounded
//!    cache of certificates — a few word operations instead of a max-flow.
//! 2. **Gray-code enumeration with split-product weights**: configurations
//!    are visited in an order that changes one link per step (O(1) mask
//!    maintenance), and each configuration's probability is the product of a
//!    precomputed low-bits table entry and a per-block high-bits product —
//!    two multiplications per configuration, division-free, so the same code
//!    is exact for [`exactmath::BigRational`] weights.
//! 3. **Chunked parallelism**: the index space is split into contiguous
//!    chunks; each rayon worker owns a *clone* of the oracle, its own
//!    certificate cache, and a private accumulator, merged at the end.
//!
//! All three are behavior-preserving: certificates answer exactly what the
//! solver would, the weight factorization is algebraically identical, and
//! the parallel merge only regroups additions (bit-identical for exact
//! weights, within rounding for `f64`).
//!
//! ## Anytime operation
//!
//! Every sweep also exists in a `*_budgeted` form that polls a
//! [`BudgetSentinel`] between small batches of configurations. When the
//! budget runs out the sweep stops at a clean cursor and returns a partial
//! result ([`PartialSum`] / [`PartialSpectrum`] / [`PartialTable`]) whose
//! `remaining` ranges describe exactly which configuration indices were
//! never examined. Passing that partial result back in as `resume` continues
//! the walk; for the *serial* engine the feasible/explored accumulations are
//! replayed in the identical order, so an interrupted-and-resumed run
//! reproduces the uninterrupted result **bit for bit**. The non-budgeted
//! entry points are thin wrappers over the budgeted ones with an unlimited
//! sentinel, so there is exactly one enumeration code path.

use exactmath::NeumaierSum;
use maxflow::RepairStats;
use netgraph::{EdgeMask, StateExpansion};
use rayon::prelude::*;

use crate::budget::BudgetSentinel;
use crate::certcache::{CertCache, SolveCert, SweepStats};
use crate::options::CalcOptions;
use crate::oracle::{DemandOracle, SideOracle};
use crate::weight::Weight;

/// Low-bits width of the split-product weight table (table size `2^this`)
/// and granularity of the per-block high products.
const BLOCK_BITS: usize = 12;

/// Minimum enumeration exponent before chunked parallelism pays for itself.
const PARALLEL_MIN_BITS: usize = 10;

/// Configurations examined between budget polls: large enough that the poll
/// (an atomic add) is noise next to a max-flow call, small enough that a
/// deadline or cancellation is honored promptly. The side sweeps also switch
/// assignments once per batch, so a larger batch means fewer warm-flow
/// invalidations for the incremental oracle.
const BATCH: u64 = 256;

/// How the engine should run one sweep.
#[derive(Clone, Copy, Debug)]
pub struct SweepConfig {
    /// Split the index space across rayon workers.
    pub parallel: bool,
    /// Consult/record monotonicity certificates before invoking the solver.
    pub certificates: bool,
    /// Certificates retained per cache (per kind, per worker, and — for side
    /// sweeps — per assignment).
    pub cache_size: usize,
    /// Carry a warm feasible flow across the configuration steps inside each
    /// worker's contiguous range, repairing it per flipped link instead of
    /// re-solving from scratch (see [`maxflow::incremental`]). Warm state is
    /// dropped at every range boundary — worker start, chunk switch, and
    /// resume-from-checkpoint — so verdicts (and therefore every sum, bound,
    /// and checkpoint) are identical with it on or off.
    pub incremental: bool,
    /// Run serially when the sweep totals fewer solver questions than this,
    /// even with [`parallel`](Self::parallel) set: below ~10k configurations
    /// the fork/join and per-worker oracle clones cost more than they save.
    pub parallel_threshold: u64,
}

impl SweepConfig {
    /// Serial, certificate-free, cold-solve sweep (the legacy behavior).
    pub fn serial() -> Self {
        SweepConfig {
            parallel: false,
            certificates: false,
            cache_size: 0,
            incremental: false,
            parallel_threshold: 0,
        }
    }

    /// Derives the sweep configuration from the calculation options.
    pub fn from_opts(opts: &CalcOptions) -> Self {
        SweepConfig {
            parallel: opts.parallel,
            certificates: opts.certificate_cache,
            cache_size: opts.certificate_cache_size,
            incremental: opts.incremental,
            parallel_threshold: opts.parallel_threshold,
        }
    }

    fn cache(&self) -> Option<CertCache> {
        if self.certificates {
            Some(CertCache::new(self.cache_size))
        } else {
            None
        }
    }

    /// Whether a sweep of `m` enumerated bits totalling `work` solver
    /// questions should fan out across rayon workers.
    fn fan_out(&self, m: usize, work: u64) -> bool {
        self.parallel && m >= PARALLEL_MIN_BITS && work >= self.parallel_threshold
    }
}

/// A feasibility oracle the engine can drive: one monotone verdict per
/// configuration, with optional certificate extraction.
pub trait SweepOracle {
    /// Tests one configuration; extracts a certificate when `want_cert`.
    fn test_config(&mut self, mask: EdgeMask, want_cert: bool) -> (bool, SolveCert);

    /// Per-link capacities in the mask's bit order, used by cut certificates
    /// to bound the flow a configuration can carry across a witnessed cut.
    fn edge_capacities(&self) -> &[u64];

    /// Switches warm-start incremental flow repair on or off. The default is
    /// a no-op for oracles without warm state.
    fn set_incremental(&mut self, on: bool) {
        let _ = on;
    }

    /// Drops any warm flow so the next verdict re-solves from scratch. The
    /// engine calls this at every range boundary — worker start, chunk
    /// switch, and resume-from-checkpoint.
    fn invalidate_warm(&mut self) {}

    /// Takes the incremental-repair counters accumulated since the last call.
    fn take_repair_stats(&mut self) -> RepairStats {
        RepairStats::default()
    }
}

impl SweepOracle for DemandOracle {
    fn test_config(&mut self, mask: EdgeMask, want_cert: bool) -> (bool, SolveCert) {
        self.admits_with_cert(mask, want_cert)
    }

    fn edge_capacities(&self) -> &[u64] {
        DemandOracle::edge_capacities(self)
    }

    fn set_incremental(&mut self, on: bool) {
        DemandOracle::set_incremental(self, on);
    }

    fn invalidate_warm(&mut self) {
        DemandOracle::invalidate_warm(self);
    }

    fn take_repair_stats(&mut self) -> RepairStats {
        DemandOracle::take_repair_stats(self)
    }
}

impl SweepOracle for SideOracle {
    fn test_config(&mut self, mask: EdgeMask, want_cert: bool) -> (bool, SolveCert) {
        self.admits_with_cert(mask, want_cert)
    }

    fn edge_capacities(&self) -> &[u64] {
        SideOracle::edge_capacities(self)
    }

    fn set_incremental(&mut self, on: bool) {
        SideOracle::set_incremental(self, on);
    }

    fn invalidate_warm(&mut self) {
        SideOracle::invalidate_warm(self);
    }

    fn take_repair_stats(&mut self) -> RepairStats {
        SideOracle::take_repair_stats(self)
    }
}

/// Answers one configuration from the certificate cache when possible,
/// otherwise solves and records the new certificate.
#[inline]
fn classify_or_solve<O: SweepOracle>(
    oracle: &mut O,
    cache: &mut Option<CertCache>,
    mask: EdgeMask,
    stats: &mut SweepStats,
) -> bool {
    stats.configs += 1;
    match cache {
        Some(cache) => {
            if let Some(verdict) = cache.classify(mask.bits(), oracle.edge_capacities()) {
                if verdict {
                    stats.feasible_hits += 1;
                } else {
                    stats.infeasible_hits += 1;
                }
                return verdict;
            }
            stats.solver_calls += 1;
            let (ok, cert) = oracle.test_config(mask, true);
            cache.record(cert);
            ok
        }
        None => {
            stats.solver_calls += 1;
            oracle.test_config(mask, false).0
        }
    }
}

/// Solves the all-alive and all-dead configurations once to pre-seed worker
/// caches: their certificates (the best-case flow support and the worst-case
/// cut) are the two most general ones a sweep can hold, and parallel workers
/// would otherwise each rediscover them from a cold cache.
fn seed_certs<O: SweepOracle>(
    oracle: &mut O,
    masks: [EdgeMask; 2],
    stats: &mut SweepStats,
) -> Vec<SolveCert> {
    let mut seeds = Vec::with_capacity(2);
    for mask in masks {
        stats.solver_calls += 1;
        let (_, cert) = oracle.test_config(mask, true);
        if cert != SolveCert::None {
            seeds.push(cert);
        }
    }
    seeds
}

/// A fresh per-worker cache, pre-loaded with the seed certificates.
fn seeded_cache(cfg: &SweepConfig, seeds: &[SolveCert]) -> Option<CertCache> {
    let mut cache = cfg.cache();
    if let Some(c) = &mut cache {
        for &s in seeds {
            c.record(s);
        }
    }
    cache
}

/// Drops empty ranges, sorts, and merges adjacent/overlapping half-open
/// `[lo, hi)` ranges.
fn coalesce(mut ranges: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    ranges.retain(|&(lo, hi)| lo < hi);
    ranges.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(ranges.len());
    for (lo, hi) in ranges {
        match out.last_mut() {
            Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
            _ => out.push((lo, hi)),
        }
    }
    out
}

/// Splits a set of ranges into roughly `parts` contiguous pieces of near-equal
/// length, preserving order within each input range.
fn split_ranges(ranges: &[(u64, u64)], parts: usize) -> Vec<(u64, u64)> {
    let total: u64 = ranges.iter().map(|&(lo, hi)| hi - lo).sum();
    if total == 0 {
        return Vec::new();
    }
    let piece = total.div_ceil(parts.max(1) as u64).max(1);
    let mut out = Vec::new();
    for &(lo, hi) in ranges {
        let mut c = lo;
        while c < hi {
            let e = hi.min(c + piece);
            out.push((c, e));
            c = e;
        }
    }
    out
}

/// Total length of a set of half-open ranges.
fn ranges_len(ranges: &[(u64, u64)]) -> u64 {
    ranges.iter().map(|&(lo, hi)| hi - lo).sum()
}

/// Split-product weight table: `weight(config) = low[config & low_mask] ·
/// high(config >> low_bits)`, where `low` is precomputed once (two
/// multiplications per entry) and the high product changes only once per
/// `2^low_bits` block. Division-free, so exact for any [`Weight`].
struct WeightTable<W> {
    low: Vec<W>,
    low_bits: usize,
    low_mask: u64,
}

impl<W: Weight> WeightTable<W> {
    /// `weights[i]` is the `(alive, failed)` pair of enumeration bit `i`.
    fn new(weights: &[(W, W)]) -> Self {
        let b = BLOCK_BITS.min(weights.len());
        let mut low = vec![W::one()];
        for w in weights.iter().take(b) {
            let mut next = Vec::with_capacity(low.len() * 2);
            for t in &low {
                next.push(t.mul(&w.1)); // new top bit 0: failed
            }
            for t in &low {
                next.push(t.mul(&w.0)); // new top bit 1: alive
            }
            low = next;
        }
        let low_mask = if b == 0 { 0 } else { (1u64 << b) - 1 };
        WeightTable {
            low,
            low_bits: b,
            low_mask,
        }
    }

    /// Product over the bits at positions `low_bits..` for block `g_high`.
    fn high_product(&self, weights: &[(W, W)], g_high: u64) -> W {
        let mut p = W::one();
        for (i, w) in weights.iter().enumerate().skip(self.low_bits) {
            p = p.mul(if g_high >> (i - self.low_bits) & 1 == 1 {
                &w.0
            } else {
                &w.1
            });
        }
        p
    }

    /// Weight of configuration `g`, given its block's high product.
    fn weight(&self, g: u64, high: &W) -> W {
        self.low[(g & self.low_mask) as usize].mul(high)
    }
}

/// Partial-sum strategy of a sweep: compensated for `f64`, plain ring
/// addition for exact weights.
pub trait SweepAccumulator<W>: Send {
    /// A serializable snapshot of the running accumulation, for
    /// checkpointing mid-sweep.
    type State: Clone + Send;
    /// The zero accumulator.
    fn empty() -> Self;
    /// Adds one configuration's weight.
    fn add(&mut self, w: W);
    /// Folds in another worker's partial sum.
    fn merge(&mut self, other: Self);
    /// The accumulated total.
    fn finish(self) -> W;
    /// Snapshots the running state. Rebuilding with
    /// [`SweepAccumulator::from_state`] and continuing reproduces the
    /// uninterrupted accumulation (bit-identical for the serial engine).
    fn state(&self) -> Self::State;
    /// Rebuilds an accumulator from a saved snapshot.
    fn from_state(s: Self::State) -> Self;
}

/// Neumaier-compensated `f64` accumulation.
pub struct CompensatedAcc(NeumaierSum);

impl SweepAccumulator<f64> for CompensatedAcc {
    type State = (f64, f64);

    fn empty() -> Self {
        CompensatedAcc(NeumaierSum::new())
    }

    fn add(&mut self, w: f64) {
        self.0.add(w);
    }

    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
    }

    fn finish(self) -> f64 {
        self.0.total()
    }

    fn state(&self) -> (f64, f64) {
        self.0.parts()
    }

    fn from_state((sum, comp): (f64, f64)) -> Self {
        CompensatedAcc(NeumaierSum::from_parts(sum, comp))
    }
}

/// Plain `W` addition (exact for rational weights).
pub struct PlainAcc<W>(W);

impl<W: Weight> SweepAccumulator<W> for PlainAcc<W> {
    type State = W;

    fn empty() -> Self {
        PlainAcc(W::zero())
    }

    fn add(&mut self, w: W) {
        self.0 = self.0.add(&w);
    }

    fn merge(&mut self, other: Self) {
        self.0 = self.0.add(&other.0);
    }

    fn finish(self) -> W {
        self.0
    }

    fn state(&self) -> W {
        self.0.clone()
    }

    fn from_state(s: W) -> Self {
        PlainAcc(s)
    }
}

/// Geometry of a naive sweep: which network edges are enumerated (compact
/// bit `j` ↔ edge `fallible[j]`) and which are pinned alive.
pub struct SweepGeometry<'a> {
    /// Enumerated edge indices, in compact-bit order.
    pub fallible: &'a [usize],
    /// Bits (over the full edge numbering) pinned alive in every mask.
    pub pinned: u64,
    /// Total network edge count (full mask width).
    pub edge_count: usize,
}

/// The state of a (possibly interrupted) [`sweep_sum_budgeted`] run.
///
/// `remaining` empty means the sweep completed and `feasible` holds the full
/// sum. Otherwise `feasible` is a certified lower bound on the full sum,
/// `explored` is the total weight of every configuration examined so far
/// (feasible or not), and `remaining` lists the half-open index ranges that
/// were never examined — feeding the whole value back in as `resume`
/// continues exactly there.
pub struct PartialSum<A> {
    /// Accumulated weight of the feasible configurations examined so far.
    pub feasible: A,
    /// Accumulated weight of *all* configurations examined so far (only
    /// tracked when the sweep runs under a real budget).
    pub explored: A,
    /// Half-open `[lo, hi)` index ranges not yet examined, ascending.
    pub remaining: Vec<(u64, u64)>,
    /// Certificates exported from the sweep's cache, to warm-start a resumed
    /// run (advisory: an empty list only costs cold-cache solves).
    pub certs: Vec<SolveCert>,
}

impl<A> PartialSum<A> {
    /// Whether every configuration has been examined.
    pub fn is_complete(&self) -> bool {
        self.remaining.is_empty()
    }

    /// Number of configurations not yet examined.
    pub fn remaining_configs(&self) -> u64 {
        ranges_len(&self.remaining)
    }
}

/// Sums the weights of all feasible configurations of a `2^m` enumeration
/// over `geom.fallible`, where `weights[j]` is the `(alive, failed)` pair of
/// compact bit `j`.
pub fn sweep_sum<W, A, O>(
    oracle: &O,
    geom: &SweepGeometry<'_>,
    weights: &[(W, W)],
    cfg: &SweepConfig,
) -> (W, SweepStats)
where
    W: Weight,
    A: SweepAccumulator<W>,
    O: SweepOracle + Clone + Send + Sync,
{
    let sentinel = BudgetSentinel::unlimited();
    let (partial, stats) =
        sweep_sum_budgeted::<W, A, O>(oracle, geom, weights, cfg, &sentinel, None);
    debug_assert!(partial.is_complete(), "unlimited sweeps always finish");
    (partial.feasible.finish(), stats)
}

/// Budget-guarded form of [`sweep_sum`]: examines configurations until done
/// or until `sentinel` stops granting, and returns the (possibly partial)
/// state plus counters. Pass a previous run's [`PartialSum`] as `resume` to
/// continue it; a serial interrupted-and-resumed run reproduces the
/// uninterrupted sum bit for bit.
#[allow(clippy::too_many_arguments)]
pub fn sweep_sum_budgeted<W, A, O>(
    oracle: &O,
    geom: &SweepGeometry<'_>,
    weights: &[(W, W)],
    cfg: &SweepConfig,
    sentinel: &BudgetSentinel,
    resume: Option<PartialSum<A>>,
) -> (PartialSum<A>, SweepStats)
where
    W: Weight,
    A: SweepAccumulator<W>,
    O: SweepOracle + Clone + Send + Sync,
{
    let m = geom.fallible.len();
    assert_eq!(weights.len(), m, "one weight pair per enumerated edge");
    let total = 1u64 << m;
    let wt = WeightTable::new(weights);
    let (mut feasible, mut explored, work, warm) = match resume {
        Some(p) => (p.feasible, p.explored, coalesce(p.remaining), p.certs),
        None => (A::empty(), A::empty(), vec![(0, total)], Vec::new()),
    };
    debug_assert!(work.iter().all(|&(_, hi)| hi <= total));
    if cfg.fan_out(m, ranges_len(&work)) {
        let mut seed_stats = SweepStats::default();
        let mut seeds = if cfg.certificates {
            let mut probe = oracle.clone();
            let alive = geom.fallible.iter().fold(geom.pinned, |b, &i| b | 1 << i);
            seed_certs(
                &mut probe,
                [
                    EdgeMask::from_bits(alive, geom.edge_count),
                    EdgeMask::from_bits(geom.pinned, geom.edge_count),
                ],
                &mut seed_stats,
            )
        } else {
            Vec::new()
        };
        seeds.extend(warm.iter().copied().take(cfg.cache_size));
        let pieces = split_ranges(&work, rayon::current_num_threads() * 8);
        let results: Vec<_> = pieces
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut local = oracle.clone();
                local.set_incremental(cfg.incremental);
                local.invalidate_warm();
                let mut cache = seeded_cache(cfg, &seeds);
                let mut stats = SweepStats::default();
                let mut f = A::empty();
                let mut x = A::empty();
                let stop = sum_range_guarded::<W, A, O>(
                    &mut local, &mut cache, &mut stats, lo, hi, geom, &wt, weights, sentinel,
                    &mut f, &mut x,
                );
                stats.absorb_repairs(&local.take_repair_stats());
                let certs = cache.map(|c| c.export()).unwrap_or_default();
                (f, x, stop.map(|s| (s, hi)), certs, stats)
            })
            .collect_vec();
        // merge in piece order: deterministic for a fixed piece layout
        let mut stats = seed_stats;
        let mut remaining = Vec::new();
        let mut certs = Vec::new();
        for (f, x, leftover, ex, st) in results {
            feasible.merge(f);
            explored.merge(x);
            remaining.extend(leftover);
            certs.extend(ex);
            stats.merge(&st);
        }
        certs.truncate(4 * cfg.cache_size.max(1));
        let partial = PartialSum {
            feasible,
            explored,
            remaining: coalesce(remaining),
            certs,
        };
        (partial, stats)
    } else {
        let mut local = oracle.clone();
        local.set_incremental(cfg.incremental);
        let mut cache = seeded_cache(cfg, &warm);
        let mut stats = SweepStats::default();
        let mut remaining = Vec::new();
        for (k, &(lo, hi)) in work.iter().enumerate() {
            // warm flows never survive a range boundary (fresh start and
            // every resume gap) — the verdict stream stays independent of
            // how the walk was sliced
            local.invalidate_warm();
            if let Some(stop) = sum_range_guarded::<W, A, O>(
                &mut local,
                &mut cache,
                &mut stats,
                lo,
                hi,
                geom,
                &wt,
                weights,
                sentinel,
                &mut feasible,
                &mut explored,
            ) {
                remaining.push((stop, hi));
                remaining.extend_from_slice(&work[k + 1..]);
                break;
            }
        }
        stats.absorb_repairs(&local.take_repair_stats());
        let certs = cache.map(|c| c.export()).unwrap_or_default();
        let partial = PartialSum {
            feasible,
            explored,
            remaining,
            certs,
        };
        (partial, stats)
    }
}

/// One worker's share of [`sweep_sum_budgeted`]: Gray-code walk over
/// `lo..hi` with O(1) mask maintenance, split-product weights, and a budget
/// poll every [`BATCH`] configurations. Returns `Some(cursor)` when the
/// budget stopped the walk with `cursor..hi` unexamined, `None` when done.
#[allow(clippy::too_many_arguments)]
fn sum_range_guarded<W, A, O>(
    oracle: &mut O,
    cache: &mut Option<CertCache>,
    stats: &mut SweepStats,
    lo: u64,
    hi: u64,
    geom: &SweepGeometry<'_>,
    wt: &WeightTable<W>,
    weights: &[(W, W)],
    sentinel: &BudgetSentinel,
    feasible: &mut A,
    explored: &mut A,
) -> Option<u64>
where
    W: Weight,
    A: SweepAccumulator<W>,
    O: SweepOracle,
{
    if lo >= hi {
        return None;
    }
    let track = !sentinel.is_unlimited();
    // Gray code of the starting index; `bits` scatters it onto the full
    // edge numbering.
    let mut g = lo ^ (lo >> 1);
    let mut bits = geom.pinned;
    let mut rest = g;
    while rest != 0 {
        let j = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        bits |= 1 << geom.fallible[j];
    }
    let mut high = wt.high_product(weights, g >> wt.low_bits);
    let mut c = lo;
    while c < hi {
        let granted = sentinel.grant(1, (hi - c).min(BATCH));
        if granted == 0 {
            return Some(c);
        }
        for _ in 0..granted {
            let ok = classify_or_solve(
                oracle,
                cache,
                EdgeMask::from_bits(bits, geom.edge_count),
                stats,
            );
            if track {
                let w = wt.weight(g, &high);
                if ok {
                    feasible.add(w.clone());
                }
                explored.add(w);
            } else if ok {
                feasible.add(wt.weight(g, &high));
            }
            c += 1;
            if c >= hi {
                break;
            }
            // successive Gray codes differ in exactly bit tz(c)
            let flip = c.trailing_zeros() as usize;
            g ^= 1 << flip;
            bits ^= 1 << geom.fallible[flip];
            if flip >= wt.low_bits {
                high = wt.high_product(weights, g >> wt.low_bits);
            }
        }
    }
    None
}

/// Geometry of a mixed-radix sweep over a tranche-expanded network (see
/// [`netgraph::spectrum`]): configuration `c ∈ [0, Π radices)` decodes into
/// one state digit per fallible link, and digit `j` holding value `v` means
/// tranche arcs `1..=v` of that link are alive in the expanded edge mask.
///
/// Binary networks never build one of these — they keep the plain
/// [`SweepGeometry`] bitmask path — so an all-binary instance takes exactly
/// the same code bit for bit whether or not this type exists.
pub struct MixedGeometry {
    /// Per-digit radix (number of states), in digit order.
    radices: Vec<u32>,
    /// `tranche_bits[j][i]`: single-bit mask of the expanded arc that flips
    /// when digit `j` steps between values `i` and `i + 1`.
    tranche_bits: Vec<Vec<u64>>,
    /// `value_bits[j][v]`: OR of the tranche bits alive at digit value `v`.
    value_bits: Vec<Vec<u64>>,
    /// Mixed-radix place values: `place[j] = Π_{i<j} radices[i]`, with
    /// `place[digits] = Π radices` (the configuration total).
    place: Vec<u64>,
    /// Expanded-arc bits pinned alive in every configuration.
    pinned: u64,
    /// Expanded-arc count (full mask width).
    edge_count: usize,
}

impl MixedGeometry {
    /// Builds the sweep geometry of a tranche expansion. Returns `None` when
    /// `Π radices` overflows the sweep cursor (no such sweep is enumerable
    /// anyway).
    pub fn from_expansion(x: &StateExpansion) -> Option<MixedGeometry> {
        x.config_total()?;
        let mut place = Vec::with_capacity(x.digits.len() + 1);
        let mut p = 1u64;
        for d in &x.digits {
            place.push(p);
            p *= d.radix as u64;
        }
        place.push(p);
        Some(MixedGeometry {
            radices: x.digits.iter().map(|d| d.radix as u32).collect(),
            tranche_bits: x
                .digits
                .iter()
                .map(|d| d.tranche_arcs.iter().map(|&a| 1u64 << a).collect())
                .collect(),
            value_bits: x
                .digits
                .iter()
                .map(|d| (0..d.radix).map(|v| d.value_bits(v)).collect())
                .collect(),
            place,
            pinned: x.pinned,
            edge_count: x.net.edge_count(),
        })
    }

    /// Number of state digits (fallible links).
    pub fn digits(&self) -> usize {
        self.radices.len()
    }

    /// Total number of configurations `Π radices`.
    pub fn total(&self) -> u64 {
        *self.place.last().unwrap_or(&1)
    }

    /// The per-digit radices.
    pub fn radices(&self) -> &[u32] {
        &self.radices
    }

    /// Expanded mask with every tranche alive (all links in their best
    /// state).
    fn best_bits(&self) -> u64 {
        self.value_bits
            .iter()
            .zip(&self.radices)
            .fold(self.pinned, |b, (vb, &r)| b | vb[r as usize - 1])
    }
}

/// Split-product weight table for mixed-radix digits, the analogue of
/// [`WeightTable`]: the low factor tabulates every combination of the first
/// `low_digits` digits (at most `2^BLOCK_BITS` entries), the high factor is
/// a product over the remaining digits that changes only when one of them
/// steps.
struct MixedWeightTable<W> {
    low: Vec<W>,
    low_digits: usize,
    low_size: u64,
}

impl<W: Weight> MixedWeightTable<W> {
    /// `weights[j][v]` is the probability weight of digit `j` holding state
    /// `v`.
    fn new(weights: &[Vec<W>], radices: &[u32]) -> Self {
        let mut b = 0usize;
        let mut size = 1u64;
        while b < radices.len() && size * radices[b] as u64 <= 1u64 << BLOCK_BITS {
            size *= radices[b] as u64;
            b += 1;
        }
        let mut low = vec![W::one()];
        for (j, w) in weights.iter().enumerate().take(b) {
            let mut next = Vec::with_capacity(low.len() * radices[j] as usize);
            for v in w {
                for t in &low {
                    next.push(t.mul(v));
                }
            }
            low = next;
        }
        MixedWeightTable {
            low,
            low_digits: b,
            low_size: size,
        }
    }

    /// Product over the digits at positions `low_digits..` for the digit
    /// values in `g`.
    fn high_product(&self, weights: &[Vec<W>], g: &[u32]) -> W {
        let mut p = W::one();
        for (w, &v) in weights.iter().zip(g).skip(self.low_digits) {
            p = p.mul(&w[v as usize]);
        }
        p
    }

    /// Weight of the configuration whose Gray digit value is `gval`, given
    /// its block's high product.
    fn weight(&self, gval: u64, high: &W) -> W {
        self.low[(gval % self.low_size) as usize].mul(high)
    }
}

/// The cursor state of a mixed-radix reflected Gray walk.
///
/// Like the binary Gray code, successive configurations differ in exactly
/// one digit by ±1, so exactly one tranche arc of the expanded network flips
/// per step — which is what keeps monotonicity certificates and warm-start
/// flow repair exactly as effective as in the binary sweep. The reflected
/// construction is the standard one (Knuth 7.2.1.1): digit `j` sweeps
/// `0..radix` ascending or descending depending on the parity of the plain
/// value of the digits above it.
struct MixedWalker {
    /// Plain mixed-radix digits of the current index `c`.
    a: Vec<u32>,
    /// Reflected Gray digits of `c` (the digits actually realized).
    g: Vec<u32>,
    /// Gray digits re-encoded as a mixed-radix value, indexing the weight
    /// table.
    gval: u64,
    /// Expanded-arc mask bits realized by `g` (pinned bits included).
    bits: u64,
}

impl MixedWalker {
    /// Decodes the walk state at an arbitrary index `lo` — worker ranges and
    /// checkpoint resumes start mid-sequence.
    fn at(geom: &MixedGeometry, lo: u64) -> MixedWalker {
        let d = geom.digits();
        let mut a = vec![0u32; d];
        let mut g = vec![0u32; d];
        let mut gval = 0u64;
        let mut bits = geom.pinned;
        for j in 0..d {
            let r = geom.radices[j];
            a[j] = ((lo / geom.place[j]) % r as u64) as u32;
            let above = lo / geom.place[j + 1];
            g[j] = if above & 1 == 0 { a[j] } else { r - 1 - a[j] };
            gval += g[j] as u64 * geom.place[j];
            bits |= geom.value_bits[j][g[j] as usize];
        }
        MixedWalker { a, g, gval, bits }
    }

    /// Advances from index `c` to `c + 1`; returns the digit that stepped.
    /// `c + 1` must be in range (the caller owns the bounds check).
    fn step(&mut self, geom: &MixedGeometry, c_next: u64) -> usize {
        let mut t = 0usize;
        while self.a[t] == geom.radices[t] - 1 {
            self.a[t] = 0;
            t += 1;
        }
        self.a[t] += 1;
        let above = c_next / geom.place[t + 1];
        if above & 1 == 0 {
            // digit t sweeps ascending here: g[t] follows a[t] up
            self.bits ^= geom.tranche_bits[t][self.g[t] as usize];
            self.g[t] += 1;
            self.gval += geom.place[t];
        } else {
            self.g[t] -= 1;
            self.bits ^= geom.tranche_bits[t][self.g[t] as usize];
            self.gval -= geom.place[t];
        }
        t
    }
}

/// Mixed-radix form of [`sweep_sum`]: sums the weights of all feasible state
/// configurations of a tranche expansion, where `weights[j][v]` is the
/// probability of digit `j` holding state `v`.
pub fn sweep_sum_mixed<W, A, O>(
    oracle: &O,
    geom: &MixedGeometry,
    weights: &[Vec<W>],
    cfg: &SweepConfig,
) -> (W, SweepStats)
where
    W: Weight,
    A: SweepAccumulator<W>,
    O: SweepOracle + Clone + Send + Sync,
{
    let sentinel = BudgetSentinel::unlimited();
    let (partial, stats) =
        sweep_sum_mixed_budgeted::<W, A, O>(oracle, geom, weights, cfg, &sentinel, None);
    debug_assert!(partial.is_complete(), "unlimited sweeps always finish");
    (partial.feasible.finish(), stats)
}

/// Budget-guarded form of [`sweep_sum_mixed`], the exact analogue of
/// [`sweep_sum_budgeted`]: same partial-sum contract, same bit-identical
/// serial resume guarantee, same chunked parallel fan-out (the reflected
/// Gray walk decodes at any index, so workers and resumed runs start
/// mid-sequence just like the binary engine).
#[allow(clippy::too_many_arguments)]
pub fn sweep_sum_mixed_budgeted<W, A, O>(
    oracle: &O,
    geom: &MixedGeometry,
    weights: &[Vec<W>],
    cfg: &SweepConfig,
    sentinel: &BudgetSentinel,
    resume: Option<PartialSum<A>>,
) -> (PartialSum<A>, SweepStats)
where
    W: Weight,
    A: SweepAccumulator<W>,
    O: SweepOracle + Clone + Send + Sync,
{
    let d = geom.digits();
    assert_eq!(weights.len(), d, "one weight vector per state digit");
    let total = geom.total();
    let wt = MixedWeightTable::new(weights, &geom.radices);
    let (mut feasible, mut explored, work, warm) = match resume {
        Some(p) => (p.feasible, p.explored, coalesce(p.remaining), p.certs),
        None => (A::empty(), A::empty(), vec![(0, total)], Vec::new()),
    };
    debug_assert!(work.iter().all(|&(_, hi)| hi <= total));
    if cfg.fan_out(d, ranges_len(&work)) {
        let mut seed_stats = SweepStats::default();
        let mut seeds = if cfg.certificates {
            let mut probe = oracle.clone();
            seed_certs(
                &mut probe,
                [
                    EdgeMask::from_bits(geom.best_bits(), geom.edge_count),
                    EdgeMask::from_bits(geom.pinned, geom.edge_count),
                ],
                &mut seed_stats,
            )
        } else {
            Vec::new()
        };
        seeds.extend(warm.iter().copied().take(cfg.cache_size));
        let pieces = split_ranges(&work, rayon::current_num_threads() * 8);
        let results: Vec<_> = pieces
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut local = oracle.clone();
                local.set_incremental(cfg.incremental);
                local.invalidate_warm();
                let mut cache = seeded_cache(cfg, &seeds);
                let mut stats = SweepStats::default();
                let mut f = A::empty();
                let mut x = A::empty();
                let stop = sum_range_guarded_mixed::<W, A, O>(
                    &mut local, &mut cache, &mut stats, lo, hi, geom, &wt, weights, sentinel,
                    &mut f, &mut x,
                );
                stats.absorb_repairs(&local.take_repair_stats());
                let certs = cache.map(|c| c.export()).unwrap_or_default();
                (f, x, stop.map(|s| (s, hi)), certs, stats)
            })
            .collect_vec();
        let mut stats = seed_stats;
        let mut remaining = Vec::new();
        let mut certs = Vec::new();
        for (f, x, leftover, ex, st) in results {
            feasible.merge(f);
            explored.merge(x);
            remaining.extend(leftover);
            certs.extend(ex);
            stats.merge(&st);
        }
        certs.truncate(4 * cfg.cache_size.max(1));
        let partial = PartialSum {
            feasible,
            explored,
            remaining: coalesce(remaining),
            certs,
        };
        (partial, stats)
    } else {
        let mut local = oracle.clone();
        local.set_incremental(cfg.incremental);
        let mut cache = seeded_cache(cfg, &warm);
        let mut stats = SweepStats::default();
        let mut remaining = Vec::new();
        for (k, &(lo, hi)) in work.iter().enumerate() {
            local.invalidate_warm();
            if let Some(stop) = sum_range_guarded_mixed::<W, A, O>(
                &mut local,
                &mut cache,
                &mut stats,
                lo,
                hi,
                geom,
                &wt,
                weights,
                sentinel,
                &mut feasible,
                &mut explored,
            ) {
                remaining.push((stop, hi));
                remaining.extend_from_slice(&work[k + 1..]);
                break;
            }
        }
        stats.absorb_repairs(&local.take_repair_stats());
        let certs = cache.map(|c| c.export()).unwrap_or_default();
        let partial = PartialSum {
            feasible,
            explored,
            remaining,
            certs,
        };
        (partial, stats)
    }
}

/// One worker's share of [`sweep_sum_mixed_budgeted`]: reflected-Gray walk
/// over `lo..hi` with one tranche-arc flip per step, split-product weights,
/// and a budget poll every [`BATCH`] configurations.
#[allow(clippy::too_many_arguments)]
fn sum_range_guarded_mixed<W, A, O>(
    oracle: &mut O,
    cache: &mut Option<CertCache>,
    stats: &mut SweepStats,
    lo: u64,
    hi: u64,
    geom: &MixedGeometry,
    wt: &MixedWeightTable<W>,
    weights: &[Vec<W>],
    sentinel: &BudgetSentinel,
    feasible: &mut A,
    explored: &mut A,
) -> Option<u64>
where
    W: Weight,
    A: SweepAccumulator<W>,
    O: SweepOracle,
{
    if lo >= hi {
        return None;
    }
    let track = !sentinel.is_unlimited();
    let mut walker = MixedWalker::at(geom, lo);
    let mut high = wt.high_product(weights, &walker.g);
    let mut c = lo;
    while c < hi {
        let granted = sentinel.grant(1, (hi - c).min(BATCH));
        if granted == 0 {
            return Some(c);
        }
        for _ in 0..granted {
            let ok = classify_or_solve(
                oracle,
                cache,
                EdgeMask::from_bits(walker.bits, geom.edge_count),
                stats,
            );
            if track {
                let w = wt.weight(walker.gval, &high);
                if ok {
                    feasible.add(w.clone());
                }
                explored.add(w);
            } else if ok {
                feasible.add(wt.weight(walker.gval, &high));
            }
            c += 1;
            if c >= hi {
                break;
            }
            let t = walker.step(geom, c);
            if t >= wt.low_digits {
                high = wt.high_product(weights, &walker.g);
            }
        }
    }
    None
}

/// The state of a (possibly interrupted) [`sweep_spectrum_budgeted`] run.
///
/// `remaining` empty means `mass` is the complete realization spectrum.
/// Otherwise `mass` holds the mass of the side configurations examined so
/// far (so it sums to the explored probability, not to 1), and `remaining`
/// lists the unexamined configuration ranges.
pub struct PartialSpectrum<W> {
    /// Per-realization-mask accumulated mass over the examined
    /// configurations.
    pub mass: Vec<W>,
    /// Half-open `[lo, hi)` configuration ranges not yet examined, ascending.
    pub remaining: Vec<(u64, u64)>,
    /// Certificates per live assignment, to warm-start a resumed run
    /// (advisory; may be empty).
    pub certs: Vec<Vec<SolveCert>>,
}

impl<W> PartialSpectrum<W> {
    /// Whether every side configuration has been examined.
    pub fn is_complete(&self) -> bool {
        self.remaining.is_empty()
    }

    /// Number of side configurations not yet examined.
    pub fn remaining_configs(&self) -> u64 {
        ranges_len(&self.remaining)
    }
}

/// Builds the realization-spectrum masses for one side: `mass[r]` = total
/// probability of side configurations whose realization mask over the `live`
/// assignments is exactly `r`. `weights[i]` is the `(alive, failed)` pair of
/// side link `i`; `assign_count` sizes the mask space.
pub fn sweep_spectrum<W: Weight>(
    oracle: &SideOracle,
    live: &[usize],
    weights: &[(W, W)],
    assign_count: usize,
    cfg: &SweepConfig,
) -> (Vec<W>, SweepStats) {
    let sentinel = BudgetSentinel::unlimited();
    let (partial, stats) =
        sweep_spectrum_budgeted(oracle, live, weights, assign_count, cfg, &sentinel, None);
    debug_assert!(partial.is_complete(), "unlimited sweeps always finish");
    (partial.mass, stats)
}

/// Budget-guarded form of [`sweep_spectrum`]. The budget is charged
/// `live.len()` units per configuration (one solver question per live
/// assignment). Serial interrupted-and-resumed runs reproduce the
/// uninterrupted spectrum bit for bit: the per-slot mass additions happen in
/// the same ascending-configuration order either way.
#[allow(clippy::too_many_arguments)]
pub fn sweep_spectrum_budgeted<W: Weight>(
    oracle: &SideOracle,
    live: &[usize],
    weights: &[(W, W)],
    assign_count: usize,
    cfg: &SweepConfig,
    sentinel: &BudgetSentinel,
    resume: Option<PartialSpectrum<W>>,
) -> (PartialSpectrum<W>, SweepStats) {
    let m = oracle.edge_count();
    assert_eq!(weights.len(), m, "one weight pair per side link");
    let total = 1u64 << m;
    let size = 1usize << assign_count;
    let wt = WeightTable::new(weights);
    let (mut mass, work, warm) = match resume {
        Some(p) => (p.mass, coalesce(p.remaining), p.certs),
        None => (vec![W::zero(); size], vec![(0, total)], Vec::new()),
    };
    debug_assert_eq!(mass.len(), size, "resumed spectrum must match |D|");
    debug_assert!(work.iter().all(|&(_, hi)| hi <= total));
    let unit = live.len().max(1) as u64;
    if cfg.fan_out(m, ranges_len(&work) * unit) {
        let (mut seeds, seed_stats) = side_seeds(oracle, live, cfg);
        for (s, w) in seeds.iter_mut().zip(&warm) {
            s.extend(w.iter().copied().take(cfg.cache_size));
        }
        let pieces = split_ranges(&work, rayon::current_num_threads() * 8);
        let results: Vec<_> = pieces
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut local = oracle.clone();
                local.set_incremental(cfg.incremental);
                local.invalidate_warm();
                let mut caches: Vec<Option<CertCache>> =
                    seeds.iter().map(|s| seeded_cache(cfg, s)).collect();
                let mut stats = SweepStats::default();
                let mut part = vec![W::zero(); size];
                let stop = spectrum_range_guarded(
                    &mut local,
                    &mut caches,
                    live,
                    lo,
                    hi,
                    &wt,
                    weights,
                    &mut part,
                    sentinel,
                    &mut stats,
                );
                stats.absorb_repairs(&local.take_repair_stats());
                (part, stop.map(|s| (s, hi)), stats)
            })
            .collect_vec();
        let mut stats = seed_stats;
        let mut remaining = Vec::new();
        for (part, leftover, st) in results {
            for (x, y) in mass.iter_mut().zip(&part) {
                *x = x.add(y);
            }
            remaining.extend(leftover);
            stats.merge(&st);
        }
        let partial = PartialSpectrum {
            mass,
            remaining: coalesce(remaining),
            // parallel caches are per worker; exporting one would be
            // arbitrary, and warm-starts are advisory anyway
            certs: Vec::new(),
        };
        (partial, stats)
    } else {
        let mut local = oracle.clone();
        local.set_incremental(cfg.incremental);
        let mut caches: Vec<Option<CertCache>> = (0..live.len())
            .map(|i| seeded_cache(cfg, warm.get(i).map(Vec::as_slice).unwrap_or(&[])))
            .collect();
        let mut stats = SweepStats::default();
        let mut remaining = Vec::new();
        for (k, &(lo, hi)) in work.iter().enumerate() {
            local.invalidate_warm();
            if let Some(stop) = spectrum_range_guarded(
                &mut local,
                &mut caches,
                live,
                lo,
                hi,
                &wt,
                weights,
                &mut mass,
                sentinel,
                &mut stats,
            ) {
                remaining.push((stop, hi));
                remaining.extend_from_slice(&work[k + 1..]);
                break;
            }
        }
        stats.absorb_repairs(&local.take_repair_stats());
        let certs = caches
            .into_iter()
            .map(|c| c.map(|c| c.export()).unwrap_or_default())
            .collect();
        let partial = PartialSpectrum {
            mass,
            remaining,
            certs,
        };
        (partial, stats)
    }
}

/// Seed certificates for a side sweep, one set per live assignment (each
/// assignment has its own cache — certificates are only valid under the
/// assignment they were extracted with).
fn side_seeds(
    oracle: &SideOracle,
    live: &[usize],
    cfg: &SweepConfig,
) -> (Vec<Vec<SolveCert>>, SweepStats) {
    let mut stats = SweepStats::default();
    if !cfg.certificates {
        return (vec![Vec::new(); live.len()], stats);
    }
    let m = oracle.edge_count();
    let mut probe = oracle.clone();
    let seeds = live
        .iter()
        .map(|&j| {
            probe.set_assignment(j);
            seed_certs(
                &mut probe,
                [EdgeMask::all_alive(m), EdgeMask::all_failed(m)],
                &mut stats,
            )
        })
        .collect();
    (seeds, stats)
}

/// One worker's share of [`sweep_spectrum_budgeted`]: per sub-batch of one
/// table block, realize every live assignment (amortizing assignment
/// switches), then accumulate the batch's configuration weights into the
/// mask masses in ascending-configuration order.
#[allow(clippy::too_many_arguments)]
fn spectrum_range_guarded<W: Weight>(
    oracle: &mut SideOracle,
    caches: &mut [Option<CertCache>],
    live: &[usize],
    lo: u64,
    hi: u64,
    wt: &WeightTable<W>,
    weights: &[(W, W)],
    mass: &mut [W],
    sentinel: &BudgetSentinel,
    stats: &mut SweepStats,
) -> Option<u64> {
    let m = oracle.edge_count();
    let block = 1u64 << wt.low_bits;
    let unit = live.len().max(1) as u64;
    let mut realized = [0u32; BATCH as usize];
    let mut blo = lo;
    while blo < hi {
        // stop at the next table-block boundary so one high product covers
        // the whole sub-range
        let bhi = hi.min((blo | (block - 1)) + 1);
        let high = wt.high_product(weights, blo >> wt.low_bits);
        let mut c0 = blo;
        while c0 < bhi {
            let granted = sentinel.grant(unit, (bhi - c0).min(BATCH));
            if granted == 0 {
                return Some(c0);
            }
            let c1 = c0 + granted;
            let n = (c1 - c0) as usize;
            realized[..n].fill(0);
            for (idx, &j) in live.iter().enumerate() {
                oracle.set_assignment(j);
                let cache = &mut caches[idx];
                for c in c0..c1 {
                    if classify_or_solve(oracle, cache, EdgeMask::from_bits(c, m), stats) {
                        realized[(c - c0) as usize] |= 1 << j;
                    }
                }
            }
            for c in c0..c1 {
                let slot = &mut mass[realized[(c - c0) as usize] as usize];
                *slot = slot.add(&wt.weight(c, &high));
            }
            c0 = c1;
        }
        blo = bhi;
    }
    None
}

/// The state of a (possibly interrupted) [`sweep_table_budgeted`] run:
/// `masks[c]` is valid for every examined configuration `c`; entries inside
/// `remaining` are zero.
pub struct PartialTable {
    /// Realization mask per side configuration (zero where unexamined).
    pub masks: Vec<u32>,
    /// Half-open `[lo, hi)` configuration ranges not yet examined, ascending.
    pub remaining: Vec<(u64, u64)>,
}

impl PartialTable {
    /// Whether every side configuration has been examined.
    pub fn is_complete(&self) -> bool {
        self.remaining.is_empty()
    }
}

/// Builds the paper-faithful realization array: `masks[c]` has bit `j` set
/// iff side configuration `c` realizes live assignment `j`.
pub fn sweep_table(
    oracle: &SideOracle,
    live: &[usize],
    cfg: &SweepConfig,
) -> (Vec<u32>, SweepStats) {
    let sentinel = BudgetSentinel::unlimited();
    let (partial, stats) = sweep_table_budgeted(oracle, live, cfg, &sentinel, None);
    debug_assert!(partial.is_complete(), "unlimited sweeps always finish");
    (partial.masks, stats)
}

/// Budget-guarded form of [`sweep_table`]; charged `live.len()` units per
/// configuration, like the spectrum sweep.
pub fn sweep_table_budgeted(
    oracle: &SideOracle,
    live: &[usize],
    cfg: &SweepConfig,
    sentinel: &BudgetSentinel,
    resume: Option<PartialTable>,
) -> (PartialTable, SweepStats) {
    let m = oracle.edge_count();
    let total = 1u64 << m;
    let (mut masks, work) = match resume {
        Some(p) => (p.masks, coalesce(p.remaining)),
        None => (vec![0u32; total as usize], vec![(0, total)]),
    };
    debug_assert_eq!(masks.len(), total as usize);
    debug_assert!(work.iter().all(|&(_, hi)| hi <= total));
    let unit = live.len().max(1) as u64;
    if cfg.fan_out(m, ranges_len(&work) * unit) {
        let (seeds, seed_stats) = side_seeds(oracle, live, cfg);
        let pieces = split_ranges(&work, rayon::current_num_threads() * 8);
        let results: Vec<_> = pieces
            .into_par_iter()
            .map(|(lo, hi)| {
                let mut local = oracle.clone();
                local.set_incremental(cfg.incremental);
                local.invalidate_warm();
                let mut caches: Vec<Option<CertCache>> =
                    seeds.iter().map(|s| seeded_cache(cfg, s)).collect();
                let mut stats = SweepStats::default();
                let (seg, stop) = table_range_guarded(
                    &mut local,
                    &mut caches,
                    live,
                    lo,
                    hi,
                    sentinel,
                    &mut stats,
                );
                stats.absorb_repairs(&local.take_repair_stats());
                (lo, seg, stop.map(|s| (s, hi)), stats)
            })
            .collect_vec();
        let mut stats = seed_stats;
        let mut remaining = Vec::new();
        for (lo, seg, leftover, st) in results {
            let done = leftover.map_or(lo + seg.len() as u64, |(s, _)| s);
            masks[lo as usize..done as usize].copy_from_slice(&seg[..(done - lo) as usize]);
            remaining.extend(leftover);
            stats.merge(&st);
        }
        let partial = PartialTable {
            masks,
            remaining: coalesce(remaining),
        };
        (partial, stats)
    } else {
        let mut local = oracle.clone();
        local.set_incremental(cfg.incremental);
        let mut caches: Vec<Option<CertCache>> = live.iter().map(|_| cfg.cache()).collect();
        let mut stats = SweepStats::default();
        let mut remaining = Vec::new();
        for (k, &(lo, hi)) in work.iter().enumerate() {
            local.invalidate_warm();
            let (seg, stop) =
                table_range_guarded(&mut local, &mut caches, live, lo, hi, sentinel, &mut stats);
            let done = stop.unwrap_or(hi);
            masks[lo as usize..done as usize].copy_from_slice(&seg[..(done - lo) as usize]);
            if let Some(s) = stop {
                remaining.push((s, hi));
                remaining.extend_from_slice(&work[k + 1..]);
                break;
            }
        }
        stats.absorb_repairs(&local.take_repair_stats());
        let partial = PartialTable { masks, remaining };
        (partial, stats)
    }
}

/// One worker's share of [`sweep_table_budgeted`]: config-major over
/// sub-batches of [`BATCH`] configurations, all live assignments per batch.
/// Returns the segment for `lo..hi` (zeros past the stop cursor) and the
/// stop cursor, if any.
fn table_range_guarded(
    oracle: &mut SideOracle,
    caches: &mut [Option<CertCache>],
    live: &[usize],
    lo: u64,
    hi: u64,
    sentinel: &BudgetSentinel,
    stats: &mut SweepStats,
) -> (Vec<u32>, Option<u64>) {
    let m = oracle.edge_count();
    let unit = live.len().max(1) as u64;
    let mut seg = vec![0u32; (hi - lo) as usize];
    let mut c0 = lo;
    while c0 < hi {
        let granted = sentinel.grant(unit, (hi - c0).min(BATCH));
        if granted == 0 {
            return (seg, Some(c0));
        }
        let c1 = c0 + granted;
        for (idx, &j) in live.iter().enumerate() {
            oracle.set_assignment(j);
            let cache = &mut caches[idx];
            for c in c0..c1 {
                if classify_or_solve(oracle, cache, EdgeMask::from_bits(c, m), stats) {
                    seg[(c - lo) as usize] |= 1 << j;
                }
            }
        }
        c0 = c1;
    }
    (seg, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::Budget;
    use crate::demand::FlowDemand;
    use maxflow::SolverKind;
    use netgraph::{GraphKind, Network, NetworkBuilder, NodeId};

    fn table_weight<W: Weight>(weights: &[(W, W)], g: u64) -> W {
        let mut p = W::one();
        for (i, w) in weights.iter().enumerate() {
            p = p.mul(if g >> i & 1 == 1 { &w.0 } else { &w.1 });
        }
        p
    }

    #[test]
    fn weight_table_matches_direct_product() {
        let weights: Vec<(f64, f64)> = (0..15)
            .map(|i| (0.9 - 0.01 * i as f64, 0.1 + 0.01 * i as f64))
            .collect();
        let wt = WeightTable::new(&weights);
        for g in [0u64, 1, 0xfff, 0x1000, 0x7abc, (1 << 15) - 1] {
            let high = wt.high_product(&weights, g >> wt.low_bits);
            let direct = table_weight(&weights, g);
            assert!((wt.weight(g, &high) - direct).abs() < 1e-15, "g={g:#x}");
        }
    }

    #[test]
    fn weight_table_handles_tiny_and_empty() {
        let weights: Vec<(f64, f64)> = vec![(0.8, 0.2)];
        let wt = WeightTable::new(&weights);
        let high = wt.high_product(&weights, 0);
        assert!((wt.weight(0, &high) - 0.2).abs() < 1e-15);
        assert!((wt.weight(1, &high) - 0.8).abs() < 1e-15);
        let empty: Vec<(f64, f64)> = Vec::new();
        let wt0 = WeightTable::new(&empty);
        assert!((wt0.weight(0, &wt0.high_product(&empty, 0)) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn coalesce_merges_and_sorts() {
        assert_eq!(coalesce(vec![]), vec![]);
        assert_eq!(coalesce(vec![(5, 5), (3, 3)]), vec![]);
        assert_eq!(
            coalesce(vec![(8, 10), (0, 4), (4, 6)]),
            vec![(0, 6), (8, 10)]
        );
        assert_eq!(coalesce(vec![(0, 5), (2, 3), (4, 9)]), vec![(0, 9)]);
    }

    #[test]
    fn split_ranges_covers_exactly() {
        let work = vec![(0u64, 10u64), (20, 23)];
        let pieces = split_ranges(&work, 4);
        assert_eq!(ranges_len(&pieces), 13);
        assert_eq!(coalesce(pieces), work);
        assert!(split_ranges(&[], 4).is_empty());
        // one part: ranges come back as-is
        assert_eq!(split_ranges(&work, 1), work);
    }

    fn diamond() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[2], 1, 0.2).unwrap();
        b.add_edge(n[1], n[3], 1, 0.3).unwrap();
        b.add_edge(n[2], n[3], 1, 0.4).unwrap();
        b.build()
    }

    fn sum_with(cfg: &SweepConfig) -> (f64, SweepStats) {
        let net = diamond();
        let d = FlowDemand::new(NodeId(0), NodeId(3), 1);
        let oracle = DemandOracle::new(&net, d.source, d.sink, d.demand, SolverKind::Dinic);
        let fallible: Vec<usize> = (0..4).collect();
        let weights: Vec<(f64, f64)> = net
            .edges()
            .iter()
            .map(|e| (1.0 - e.fail_prob, e.fail_prob))
            .collect();
        let geom = SweepGeometry {
            fallible: &fallible,
            pinned: 0,
            edge_count: 4,
        };
        sweep_sum::<f64, CompensatedAcc, _>(&oracle, &geom, &weights, cfg)
    }

    #[test]
    fn gray_sweep_sums_feasible_probability() {
        // diamond, demand 1: R = 1 - (1 - 0.9*0.7)(1 - 0.8*0.6)
        let expected = 1.0 - (1.0 - 0.9 * 0.7) * (1.0 - 0.8 * 0.6);
        let (r, stats) = sum_with(&SweepConfig::serial());
        assert!((r - expected).abs() < 1e-12, "{r} vs {expected}");
        assert_eq!(stats.configs, 16);
        assert_eq!(stats.solver_calls, 16);
        assert_eq!(stats.solver_calls_avoided(), 0);
    }

    #[test]
    fn certificates_preserve_the_sum_and_avoid_solves() {
        let (r0, _) = sum_with(&SweepConfig::serial());
        let cfg = SweepConfig {
            certificates: true,
            cache_size: 16,
            ..SweepConfig::serial()
        };
        let (r1, stats) = sum_with(&cfg);
        assert_eq!(r1, r0, "serial cert-cached sweep must be bit-identical");
        assert!(
            stats.solver_calls_avoided() > 0,
            "16 configs must yield hits"
        );
        assert_eq!(
            stats.solver_calls + stats.solver_calls_avoided(),
            stats.configs
        );
    }

    #[test]
    fn incremental_sweep_is_bit_identical_and_repairs_in_place() {
        let (r0, _) = sum_with(&SweepConfig::serial());
        let cfg = SweepConfig {
            incremental: true,
            ..SweepConfig::serial()
        };
        let (r1, stats) = sum_with(&cfg);
        assert_eq!(
            r1.to_bits(),
            r0.to_bits(),
            "incremental repair must not change any verdict"
        );
        assert!(
            stats.full_resolves >= 1,
            "cold start re-solves from scratch"
        );
        assert!(
            stats.repairs > 0,
            "Gray steps must repair the warm flow in place: {stats:?}"
        );
        assert!(stats.flips >= stats.repairs, "every repair applies ≥1 flip");
    }

    #[test]
    fn fan_out_honors_parallel_threshold() {
        let par = SweepConfig {
            parallel: true,
            parallel_threshold: 10_000,
            ..SweepConfig::serial()
        };
        assert!(!par.fan_out(12, 4_096), "small sweeps stay serial");
        assert!(par.fan_out(14, 16_384), "big sweeps fan out");
        assert!(!par.fan_out(4, 1 << 20), "tiny exponents stay serial");
        assert!(!SweepConfig::serial().fan_out(20, 1 << 20));
    }

    #[test]
    fn pinned_edges_stay_alive() {
        let net = diamond();
        let d = FlowDemand::new(NodeId(0), NodeId(3), 1);
        let oracle = DemandOracle::new(&net, d.source, d.sink, d.demand, SolverKind::Dinic);
        // pin edge 0 alive, enumerate the rest
        let fallible = [1usize, 2, 3];
        let weights: Vec<(f64, f64)> = fallible
            .iter()
            .map(|&i| (1.0 - net.edges()[i].fail_prob, net.edges()[i].fail_prob))
            .collect();
        let geom = SweepGeometry {
            fallible: &fallible,
            pinned: 0b0001,
            edge_count: 4,
        };
        let (r, stats) =
            sweep_sum::<f64, CompensatedAcc, _>(&oracle, &geom, &weights, &SweepConfig::serial());
        // edge 0 alive with probability 1: R = 1 - (1 - 0.7)(1 - 0.8*0.6)
        let expected = 1.0 - (1.0 - 0.7) * (1.0 - 0.8 * 0.6);
        assert!((r - expected).abs() < 1e-12, "{r} vs {expected}");
        assert_eq!(stats.configs, 8);
    }

    #[test]
    fn budgeted_sum_stops_and_resumes_bit_identical() {
        let net = diamond();
        let d = FlowDemand::new(NodeId(0), NodeId(3), 1);
        let oracle = DemandOracle::new(&net, d.source, d.sink, d.demand, SolverKind::Dinic);
        let fallible: Vec<usize> = (0..4).collect();
        let weights: Vec<(f64, f64)> = net
            .edges()
            .iter()
            .map(|e| (1.0 - e.fail_prob, e.fail_prob))
            .collect();
        let geom = SweepGeometry {
            fallible: &fallible,
            pinned: 0,
            edge_count: 4,
        };
        let cfg = SweepConfig {
            certificates: true,
            cache_size: 8,
            ..SweepConfig::serial()
        };
        let (full, _) = sweep_sum::<f64, CompensatedAcc, _>(&oracle, &geom, &weights, &cfg);

        // resume in slices of at most 5 configurations each
        let mut partial: Option<PartialSum<CompensatedAcc>> = None;
        let mut rounds = 0;
        loop {
            let budget = Budget {
                max_configs: Some(5),
                ..Default::default()
            };
            let sentinel = budget.start();
            let (p, _) = sweep_sum_budgeted::<f64, CompensatedAcc, _>(
                &oracle,
                &geom,
                &weights,
                &cfg,
                &sentinel,
                partial.take(),
            );
            rounds += 1;
            if p.is_complete() {
                assert_eq!(
                    p.feasible.finish().to_bits(),
                    full.to_bits(),
                    "serial resume must be bit-identical"
                );
                break;
            }
            assert!(p.remaining_configs() < 16);
            partial = Some(p);
        }
        assert!(
            rounds >= 3,
            "16 configs in 5-config slices: {rounds} rounds"
        );
    }

    fn mixed_fixture() -> (Network, StateExpansion) {
        // s→t: a 3-state link {0: 0.2, 1: 0.3, 2: 0.5} in parallel with a
        // binary link (cap 1, p = 0.4); demand 2.
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let s = b.add_node();
        let t = b.add_node();
        b.add_spectrum_edge(s, t, &[(0, 0.2), (1, 0.3), (2, 0.5)])
            .unwrap();
        b.add_edge(s, t, 1, 0.4).unwrap();
        let net = b.build();
        let x = StateExpansion::build(&net).unwrap();
        (net, x)
    }

    #[test]
    fn mixed_walker_visits_every_config_once_one_flip_apart() {
        let (_, x) = mixed_fixture();
        let geom = MixedGeometry::from_expansion(&x).unwrap();
        assert_eq!(geom.total(), 6);
        let mut w = MixedWalker::at(&geom, 0);
        let mut seen = std::collections::HashSet::new();
        seen.insert(w.bits);
        let mut prev = w.bits;
        for c in 1..geom.total() {
            w.step(&geom, c);
            assert_eq!(
                (w.bits ^ prev).count_ones(),
                1,
                "exactly one tranche arc flips per step"
            );
            prev = w.bits;
            assert!(seen.insert(w.bits), "mask revisited at c={c}");
            // decoding at c must agree with stepping to c
            let direct = MixedWalker::at(&geom, c);
            assert_eq!(direct.bits, w.bits);
            assert_eq!(direct.g, w.g);
            assert_eq!(direct.gval, w.gval);
        }
        assert_eq!(seen.len(), 6, "all 6 configurations visited");
    }

    #[test]
    fn mixed_walker_matches_binary_gray_on_all_binary_radices() {
        // a 4-digit all-binary instance: the reflected mixed-radix walk must
        // realize exactly the classic Gray sequence c ^ (c >> 1)
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let s = b.add_node();
        let t = b.add_node();
        for i in 0..4 {
            b.add_edge(s, t, 1, 0.1 + 0.1 * i as f64).unwrap();
        }
        let net = b.build();
        let x = StateExpansion::build(&net).unwrap();
        let geom = MixedGeometry::from_expansion(&x).unwrap();
        let mut w = MixedWalker::at(&geom, 0);
        for c in 0..16u64 {
            if c > 0 {
                w.step(&geom, c);
            }
            assert_eq!(w.bits, c ^ (c >> 1), "c={c}");
            assert_eq!(w.gval, c ^ (c >> 1));
        }
    }

    #[test]
    fn mixed_sweep_sums_state_probabilities() {
        let (_, x) = mixed_fixture();
        let geom = MixedGeometry::from_expansion(&x).unwrap();
        let oracle = DemandOracle::new(&x.net, NodeId(0), NodeId(1), 2, SolverKind::Dinic);
        let weights: Vec<Vec<f64>> = x.digits.iter().map(|d| d.probs.clone()).collect();
        // P(c1 + c2 ≥ 2) = P(c1=2) + P(c1=1)·P(c2=1) = 0.5 + 0.3·0.6
        let expected = 0.5 + 0.3 * 0.6;
        for cfg in [
            SweepConfig::serial(),
            SweepConfig {
                certificates: true,
                cache_size: 8,
                ..SweepConfig::serial()
            },
            SweepConfig {
                incremental: true,
                ..SweepConfig::serial()
            },
        ] {
            let (r, stats) =
                sweep_sum_mixed::<f64, CompensatedAcc, _>(&oracle, &geom, &weights, &cfg);
            assert!((r - expected).abs() < 1e-12, "{r} vs {expected}");
            assert_eq!(stats.configs, 6);
        }
    }

    #[test]
    fn mixed_budgeted_sum_stops_and_resumes_bit_identical() {
        let (_, x) = mixed_fixture();
        let geom = MixedGeometry::from_expansion(&x).unwrap();
        let oracle = DemandOracle::new(&x.net, NodeId(0), NodeId(1), 2, SolverKind::Dinic);
        let weights: Vec<Vec<f64>> = x.digits.iter().map(|d| d.probs.clone()).collect();
        let cfg = SweepConfig {
            certificates: true,
            cache_size: 8,
            ..SweepConfig::serial()
        };
        let (full, _) = sweep_sum_mixed::<f64, CompensatedAcc, _>(&oracle, &geom, &weights, &cfg);
        let mut partial: Option<PartialSum<CompensatedAcc>> = None;
        let mut rounds = 0;
        loop {
            let budget = Budget {
                max_configs: Some(2),
                ..Default::default()
            };
            let sentinel = budget.start();
            let (p, _) = sweep_sum_mixed_budgeted::<f64, CompensatedAcc, _>(
                &oracle,
                &geom,
                &weights,
                &cfg,
                &sentinel,
                partial.take(),
            );
            rounds += 1;
            if p.is_complete() {
                assert_eq!(
                    p.feasible.finish().to_bits(),
                    full.to_bits(),
                    "serial mixed resume must be bit-identical"
                );
                break;
            }
            partial = Some(p);
        }
        assert!(rounds >= 3, "6 configs in 2-config slices: {rounds} rounds");
    }

    #[test]
    fn partial_sum_bounds_bracket_the_exact_value() {
        let net = diamond();
        let d = FlowDemand::new(NodeId(0), NodeId(3), 1);
        let oracle = DemandOracle::new(&net, d.source, d.sink, d.demand, SolverKind::Dinic);
        let fallible: Vec<usize> = (0..4).collect();
        let weights: Vec<(f64, f64)> = net
            .edges()
            .iter()
            .map(|e| (1.0 - e.fail_prob, e.fail_prob))
            .collect();
        let geom = SweepGeometry {
            fallible: &fallible,
            pinned: 0,
            edge_count: 4,
        };
        let cfg = SweepConfig::serial();
        let (exact, _) = sweep_sum::<f64, CompensatedAcc, _>(&oracle, &geom, &weights, &cfg);
        for cut in 1..16u64 {
            let budget = Budget {
                max_configs: Some(cut),
                ..Default::default()
            };
            let sentinel = budget.start();
            let (p, _) = sweep_sum_budgeted::<f64, CompensatedAcc, _>(
                &oracle, &geom, &weights, &cfg, &sentinel, None,
            );
            let r_low = p.feasible.state().0 + p.feasible.state().1;
            let explored = p.explored.state().0 + p.explored.state().1;
            let r_high = (r_low + (1.0 - explored).max(0.0)).min(1.0);
            assert!(
                r_low <= exact + 1e-12 && exact <= r_high + 1e-12,
                "cut={cut}: [{r_low}, {r_high}] must bracket {exact}"
            );
        }
    }
}
