//! Errors of the reliability algorithms.

use std::fmt;

use netgraph::{EdgeId, GraphError};

/// Errors produced by the reliability algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum ReliabilityError {
    /// Propagated graph error (bad node / edge / probability).
    Graph(GraphError),
    /// Exhaustive enumeration was requested over too many fallible links.
    ///
    /// `2^count` configurations would have to be examined; the configured
    /// bound refuses hopeless runs instead of hanging.
    TooManyEdges {
        /// Fallible links that would be enumerated.
        count: usize,
        /// The configured maximum.
        max: usize,
    },
    /// The network has more links than an [`netgraph::EdgeMask`] can
    /// represent, so configurations cannot be enumerated at all.
    EdgeMaskOverflow {
        /// Links in the network.
        count: usize,
        /// The mask capacity ([`netgraph::EdgeMask::MAX_EDGES`]).
        max: usize,
    },
    /// A component of the bottleneck decomposition is too large to enumerate.
    SideTooLarge {
        /// Links in the offending component.
        count: usize,
        /// The configured maximum.
        max: usize,
    },
    /// The assignment set `D` is too large for the accumulation masks.
    TooManyAssignments {
        /// `|D|` for the requested demand and bottleneck set.
        count: usize,
        /// The configured maximum.
        max: usize,
    },
    /// The candidate link set is not a valid α-bottleneck set: removing it
    /// does not separate the source from the sink.
    NotSeparating,
    /// The candidate link set is not minimal: the contained proper subset
    /// already separates the source from the sink.
    NotMinimal {
        /// A witness proper subset that already separates s and t.
        witness: Vec<EdgeId>,
    },
    /// Removing the candidate set does not leave exactly two connected
    /// components (after restricting to the nodes relevant to s and t).
    NotTwoComponents {
        /// Number of components observed.
        components: usize,
    },
    /// No bottleneck set of the requested maximum cardinality exists.
    NoBottleneckFound,
    /// Two user-supplied collections that must be index-aligned are not.
    ArityMismatch {
        /// What was misaligned (e.g. "assignment amounts").
        what: &'static str,
        /// Observed length.
        got: usize,
        /// Required length.
        expected: usize,
    },
    /// The operation is only defined for directed networks.
    DirectedOnly {
        /// The operation that was requested.
        operation: &'static str,
    },
    /// The computation was stopped by its [`crate::budget::Budget`] before
    /// completing; the partial sweep certifies the rigorous interval
    /// `[r_low, r_high]` around the exact reliability.
    ///
    /// Produced by [`crate::calculator::ReliabilityCalculator::run_complete`]
    /// when the budgeted run returned a partial outcome; callers who want the
    /// bounds *and* the resume checkpoint should use
    /// [`crate::calculator::ReliabilityCalculator::run`] instead.
    Interrupted {
        /// Certified lower bound on the reliability.
        r_low: f64,
        /// Certified upper bound on the reliability.
        r_high: f64,
    },
    /// A resume checkpoint does not belong to the given instance (different
    /// network, demand, or enumeration-relevant options).
    CheckpointMismatch {
        /// What disagreed.
        reason: String,
    },
    /// A Monte-Carlo estimation run rejected its input (bad sampling
    /// parameters, too many links for the sampling mask, invalid strata).
    Sampling {
        /// What was rejected.
        reason: String,
    },
    /// The operation does not support multi-state capacity spectra (v1
    /// keeps factoring, explicit bottleneck splits, custom edge weights,
    /// and the dagger estimator binary-only; naive, planned, and MC
    /// strategies handle spectra).
    MultiState {
        /// The operation that was requested.
        operation: &'static str,
    },
}

impl ReliabilityError {
    /// Stable small-integer code for this error variant, shared by the CLI
    /// (as a process exit status) and the server wire protocol (as the
    /// `code` field of structured error replies). `2`–`4` are reserved for
    /// usage/IO/parse failures and `20` for budget-incomplete results, so
    /// variants start at 10.
    pub fn code(&self) -> u8 {
        match self {
            ReliabilityError::Graph(_) => 10,
            ReliabilityError::TooManyEdges { .. } => 11,
            ReliabilityError::EdgeMaskOverflow { .. } => 12,
            ReliabilityError::SideTooLarge { .. } => 13,
            ReliabilityError::TooManyAssignments { .. } => 14,
            ReliabilityError::NotSeparating => 15,
            ReliabilityError::NotMinimal { .. } => 16,
            ReliabilityError::NotTwoComponents { .. } => 17,
            ReliabilityError::NoBottleneckFound => 18,
            ReliabilityError::Interrupted { .. } => 19,
            ReliabilityError::ArityMismatch { .. } => 21,
            ReliabilityError::DirectedOnly { .. } => 22,
            ReliabilityError::CheckpointMismatch { .. } => 23,
            ReliabilityError::Sampling { .. } => 24,
            ReliabilityError::MultiState { .. } => 25,
        }
    }
}

impl fmt::Display for ReliabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReliabilityError::Graph(e) => write!(f, "graph error: {e}"),
            ReliabilityError::TooManyEdges { count, max } => {
                write!(
                    f,
                    "{count} fallible links exceed the enumeration bound of {max}"
                )
            }
            ReliabilityError::EdgeMaskOverflow { count, max } => {
                write!(f, "{count} links exceed the {max}-bit edge-mask capacity")
            }
            ReliabilityError::SideTooLarge { count, max } => {
                write!(
                    f,
                    "decomposition side has {count} links, exceeding the bound of {max}"
                )
            }
            ReliabilityError::TooManyAssignments { count, max } => {
                write!(
                    f,
                    "assignment set has {count} entries, exceeding the bound of {max}"
                )
            }
            ReliabilityError::NotSeparating => {
                write!(
                    f,
                    "removing the candidate links does not separate source from sink"
                )
            }
            ReliabilityError::NotMinimal { witness } => {
                write!(
                    f,
                    "candidate link set is not minimal: {witness:?} already separates"
                )
            }
            ReliabilityError::NotTwoComponents { components } => {
                write!(
                    f,
                    "removal leaves {components} components, expected exactly 2"
                )
            }
            ReliabilityError::NoBottleneckFound => {
                write!(
                    f,
                    "no bottleneck link set found within the cardinality bound"
                )
            }
            ReliabilityError::ArityMismatch {
                what,
                got,
                expected,
            } => {
                write!(f, "{what}: got {got} entries, expected {expected}")
            }
            ReliabilityError::DirectedOnly { operation } => {
                write!(f, "{operation} is only defined for directed networks")
            }
            ReliabilityError::Interrupted { r_low, r_high } => {
                write!(
                    f,
                    "interrupted by the budget; reliability is within [{r_low}, {r_high}]"
                )
            }
            ReliabilityError::CheckpointMismatch { reason } => {
                write!(f, "checkpoint does not match this instance: {reason}")
            }
            ReliabilityError::Sampling { reason } => {
                write!(f, "sampling error: {reason}")
            }
            ReliabilityError::MultiState { operation } => {
                write!(
                    f,
                    "{operation} does not support multi-state capacity spectra"
                )
            }
        }
    }
}

impl std::error::Error for ReliabilityError {}

impl From<GraphError> for ReliabilityError {
    fn from(e: GraphError) -> Self {
        ReliabilityError::Graph(e)
    }
}

impl From<montecarlo::McError> for ReliabilityError {
    fn from(e: montecarlo::McError) -> Self {
        match e {
            montecarlo::McError::CheckpointMismatch { reason } => {
                ReliabilityError::CheckpointMismatch { reason }
            }
            other => ReliabilityError::Sampling {
                reason: other.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ReliabilityError::TooManyEdges { count: 40, max: 30 };
        assert!(e.to_string().contains("40"));
        assert!(e.to_string().contains("30"));
        let e = ReliabilityError::NotMinimal {
            witness: vec![EdgeId(1)],
        };
        assert!(e.to_string().contains("e1"));
    }
}
