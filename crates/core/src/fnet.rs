//! The `.fnet` text format: a human-editable description of a flow network
//! and its demand, shared by the CLI, the server, and the test harnesses.
//!
//! ```text
//! # comments and blank lines are ignored
//! directed            # or: undirected
//! nodes 4
//! edge 0 1 2 0.05     # edge <src> <dst> <capacity> <fail_prob>
//! edge 0 2 2 0.10
//! edge 1 3 2 0.05
//! edge 2 3 2 0.10
//! demand 0 3 2        # demand <source> <sink> <rate>
//! ```
//!
//! Multi-state links carry a capacity *spectrum* instead of a single
//! up/down pair, one `capacity:probability` state per column:
//!
//! ```text
//! spectrum 0 1 0:0.2 1:0.3 2:0.5   # spectrum <src> <dst> <cap:prob>...
//! ```
//!
//! The states are validated like
//! [`netgraph::NetworkBuilder::add_spectrum_edge`] input: probabilities sum
//! to 1, and degenerate shapes normalize (a `{0:p, c:1−p}` spectrum *is*
//! a binary link and serializes back as a plain `edge` line). Files without
//! `spectrum` lines are exactly the legacy format, parsed and serialized
//! byte-identically.

use std::fmt::Write as _;

use netgraph::{GraphKind, Network, NetworkBuilder, NodeId};

use crate::demand::FlowDemand;

/// A parsed `.fnet` file.
#[derive(Clone, Debug)]
pub struct NetFile {
    /// The network.
    pub net: Network,
    /// The demand, if a `demand` line was present.
    pub demand: Option<FlowDemand>,
}

/// Parse errors with line numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// A not-yet-applied edge line: plain binary or a capacity spectrum. Edges
/// are buffered so their `.fnet` line order fixes the edge ids regardless
/// of where the `nodes` line appears.
enum PendingEdge {
    Binary(u32, u32, u64, f64),
    Spectrum(u32, u32, Vec<(u64, f64)>),
}

/// Parses the `.fnet` format.
pub fn parse(text: &str) -> Result<NetFile, ParseError> {
    let mut kind: Option<GraphKind> = None;
    let mut builder: Option<NetworkBuilder> = None;
    let mut demand = None;
    let mut pending_edges: Vec<(usize, PendingEdge)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        let mut parts = line.split_whitespace();
        let Some(keyword) = parts.next() else {
            continue; // blank or comment-only line
        };
        let rest: Vec<&str> = parts.collect();
        match keyword {
            "directed" | "undirected" => {
                if kind.is_some() {
                    return Err(err(line_no, "directionality declared twice"));
                }
                kind = Some(if keyword == "directed" {
                    GraphKind::Directed
                } else {
                    GraphKind::Undirected
                });
            }
            "nodes" => {
                if builder.is_some() {
                    return Err(err(line_no, "nodes declared twice"));
                }
                let k = kind.ok_or_else(|| {
                    err(line_no, "declare 'directed' or 'undirected' before 'nodes'")
                })?;
                let n: usize = rest
                    .first()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err(line_no, "usage: nodes <count>"))?;
                builder = Some(NetworkBuilder::with_nodes(k, n));
            }
            "edge" => {
                if rest.len() != 4 {
                    return Err(err(
                        line_no,
                        "usage: edge <src> <dst> <capacity> <fail_prob>",
                    ));
                }
                let u: u32 = rest[0]
                    .parse()
                    .map_err(|_| err(line_no, "bad source node"))?;
                let v: u32 = rest[1]
                    .parse()
                    .map_err(|_| err(line_no, "bad destination node"))?;
                let cap: u64 = rest[2].parse().map_err(|_| err(line_no, "bad capacity"))?;
                let p: f64 = rest[3]
                    .parse()
                    .map_err(|_| err(line_no, "bad probability"))?;
                pending_edges.push((line_no, PendingEdge::Binary(u, v, cap, p)));
            }
            "spectrum" => {
                if rest.len() < 3 {
                    return Err(err(
                        line_no,
                        "usage: spectrum <src> <dst> <cap:prob> [<cap:prob>...]",
                    ));
                }
                let u: u32 = rest[0]
                    .parse()
                    .map_err(|_| err(line_no, "bad source node"))?;
                let v: u32 = rest[1]
                    .parse()
                    .map_err(|_| err(line_no, "bad destination node"))?;
                let mut states = Vec::with_capacity(rest.len() - 2);
                for tok in &rest[2..] {
                    let (c, p) = tok.split_once(':').ok_or_else(|| {
                        err(line_no, format!("state '{tok}' is not <capacity>:<prob>"))
                    })?;
                    let c: u64 = c
                        .parse()
                        .map_err(|_| err(line_no, format!("bad state capacity '{c}'")))?;
                    let p: f64 = p
                        .parse()
                        .map_err(|_| err(line_no, format!("bad state probability '{p}'")))?;
                    states.push((c, p));
                }
                pending_edges.push((line_no, PendingEdge::Spectrum(u, v, states)));
            }
            "demand" => {
                if rest.len() != 3 {
                    return Err(err(line_no, "usage: demand <source> <sink> <rate>"));
                }
                let s: u32 = rest[0].parse().map_err(|_| err(line_no, "bad source"))?;
                let t: u32 = rest[1].parse().map_err(|_| err(line_no, "bad sink"))?;
                let d: u64 = rest[2].parse().map_err(|_| err(line_no, "bad rate"))?;
                demand = Some(FlowDemand::new(NodeId(s), NodeId(t), d));
            }
            other => return Err(err(line_no, format!("unknown keyword '{other}'"))),
        }
    }

    let mut builder =
        builder.ok_or_else(|| err(text.lines().count().max(1), "missing 'nodes' line"))?;
    for (line_no, pending) in pending_edges {
        match pending {
            PendingEdge::Binary(u, v, cap, p) => builder
                .add_edge(NodeId(u), NodeId(v), cap, p)
                .map(|_| ())
                .map_err(|e| err(line_no, e.to_string()))?,
            PendingEdge::Spectrum(u, v, states) => builder
                .add_spectrum_edge(NodeId(u), NodeId(v), &states)
                .map(|_| ())
                .map_err(|e| err(line_no, e.to_string()))?,
        }
    }
    let net = builder.build();
    if let Some(d) = demand {
        d.validate(&net)
            .map_err(|e| err(text.lines().count().max(1), e.to_string()))?;
    }
    Ok(NetFile { net, demand })
}

/// Serializes a network (and optional demand) back to the `.fnet` format.
pub fn serialize(net: &Network, demand: Option<FlowDemand>) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}",
        match net.kind() {
            GraphKind::Directed => "directed",
            GraphKind::Undirected => "undirected",
        }
    );
    let _ = writeln!(out, "nodes {}", net.node_count());
    for (id, e) in net.edge_refs() {
        match net.spectrum(id) {
            Some(sp) => {
                let _ = write!(out, "spectrum {} {}", e.src.0, e.dst.0);
                for &(c, p) in sp.states() {
                    let _ = write!(out, " {c}:{p}");
                }
                let _ = writeln!(out);
            }
            None => {
                let _ = writeln!(
                    out,
                    "edge {} {} {} {}",
                    e.src.0, e.dst.0, e.capacity, e.fail_prob
                );
            }
        }
    }
    if let Some(d) = demand {
        let _ = writeln!(out, "demand {} {} {}", d.source.0, d.sink.0, d.demand);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# the quickstart diamond
directed
nodes 4
edge 0 1 2 0.05
edge 0 2 2 0.10
edge 1 3 2 0.05
edge 2 3 2 0.10
demand 0 3 2
";

    #[test]
    fn parses_sample() {
        let f = parse(SAMPLE).unwrap();
        assert_eq!(f.net.node_count(), 4);
        assert_eq!(f.net.edge_count(), 4);
        assert_eq!(f.net.kind(), GraphKind::Directed);
        let d = f.demand.unwrap();
        assert_eq!((d.source.0, d.sink.0, d.demand), (0, 3, 2));
        assert_eq!(f.net.edge(netgraph::EdgeId(1)).fail_prob, 0.10);
    }

    #[test]
    fn roundtrip() {
        let f = parse(SAMPLE).unwrap();
        let text = serialize(&f.net, f.demand);
        let f2 = parse(&text).unwrap();
        assert_eq!(f2.net.edge_count(), f.net.edge_count());
        for (a, b) in f.net.edges().iter().zip(f2.net.edges()) {
            assert_eq!(a, b);
        }
        assert_eq!(f.demand, f2.demand);
    }

    #[test]
    fn spectrum_lines_parse_and_round_trip() {
        let text = "\
directed
nodes 3
spectrum 0 1 0:0.2 1:0.3 2:0.5
edge 1 2 2 0.1
demand 0 2 2
";
        let f = parse(text).unwrap();
        assert_eq!(f.net.edge_count(), 2);
        let sp = f.net.spectrum(netgraph::EdgeId(0)).expect("multi-state");
        assert_eq!(sp.states(), &[(0, 0.2), (1, 0.3), (2, 0.5)]);
        // the stored edge reconstructs max capacity and down probability
        let e = f.net.edge(netgraph::EdgeId(0));
        assert_eq!(e.capacity, 2);
        assert_eq!(e.fail_prob, 0.2);
        assert!(f.net.spectrum(netgraph::EdgeId(1)).is_none());

        let out = serialize(&f.net, f.demand);
        assert!(out.contains("spectrum 0 1 0:0.2 1:0.3 2:0.5"), "{out}");
        let f2 = parse(&out).unwrap();
        assert_eq!(
            f2.net.spectrum(netgraph::EdgeId(0)),
            f.net.spectrum(netgraph::EdgeId(0))
        );
        for (a, b) in f.net.edges().iter().zip(f2.net.edges()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn binary_spectrum_lines_normalize_to_plain_edges() {
        // {0:p, c:1−p} is a binary link; it parses to a plain edge and
        // serializes back as a legacy 'edge' line, not a 'spectrum' line
        let f = parse("directed\nnodes 2\nspectrum 0 1 0:0.25 4:0.75\n").unwrap();
        assert!(f.net.spectrum(netgraph::EdgeId(0)).is_none());
        let e = f.net.edge(netgraph::EdgeId(0));
        assert_eq!((e.capacity, e.fail_prob), (4, 0.25));
        let out = serialize(&f.net, None);
        assert!(
            out.contains("edge 0 1 4 0.25") && !out.contains("spectrum"),
            "{out}"
        );
    }

    #[test]
    fn legacy_files_serialize_byte_identically() {
        let f = parse(SAMPLE).unwrap();
        let out = serialize(&f.net, f.demand);
        assert_eq!(
            out,
            "directed\nnodes 4\nedge 0 1 2 0.05\nedge 0 2 2 0.1\n\
             edge 1 3 2 0.05\nedge 2 3 2 0.1\ndemand 0 3 2\n"
        );
    }

    #[test]
    fn rejects_malformed_spectrum_lines() {
        let e = parse("directed\nnodes 2\nspectrum 0 1\n").unwrap_err();
        assert!(e.message.contains("usage"), "{e}");
        let e = parse("directed\nnodes 2\nspectrum 0 1 3\n").unwrap_err();
        assert!(e.message.contains("not <capacity>:<prob>"), "{e}");
        let e = parse("directed\nnodes 2\nspectrum 0 1 0:0.5 1:0.9\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("sum"), "{e}");
    }

    #[test]
    fn reports_line_numbers() {
        let bad = "directed\nnodes 2\nedge 0 5 1 0.1\n";
        let e = parse(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn rejects_unknown_keyword() {
        let e = parse("directed\nnodes 1\nfrobnicate\n").unwrap_err();
        assert!(e.message.contains("frobnicate"));
    }

    #[test]
    fn rejects_missing_direction() {
        let e = parse("nodes 3\n").unwrap_err();
        assert!(e.message.contains("directed"));
    }

    #[test]
    fn rejects_bad_probability() {
        let e = parse("directed\nnodes 2\nedge 0 1 1 1.5\n").unwrap_err();
        assert!(e.message.contains("probability") || e.message.contains("1.5"));
    }

    #[test]
    fn edges_before_nodes_are_ok() {
        // edge lines may appear anywhere; they are applied after 'nodes'
        let f = parse("undirected\nnodes 2\nedge 0 1 1 0.25\n").unwrap();
        assert_eq!(f.net.edge_count(), 1);
        assert!(f.demand.is_none());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let f = parse("\n# hi\ndirected # inline\nnodes 1\n\n").unwrap();
        assert_eq!(f.net.node_count(), 1);
    }
}
