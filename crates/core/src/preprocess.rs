//! Exact preprocessing: relevance reduction.
//!
//! A link that lies on no s→t path can never carry s→t flow — in *any*
//! failure configuration (removing links never creates paths, and cycles
//! never contribute to the s–t flow value). Its state therefore marginalizes
//! out of the reliability, for every demand `d`, and it can be deleted before
//! enumeration. For directed networks the relevant links are exactly those
//! `(u, v)` with `u` reachable from `s` and `v` co-reachable to `t`; for
//! undirected networks, those inside the s–t component.
//!
//! This shrinks the enumeration *exponent*: a network with 40 links of which
//! 12 dangle off the delivery paths becomes a 28-link instance with the
//! identical reliability. [`crate::naive::reliability_naive`] and
//! [`crate::factoring::reliability_factoring`] apply it automatically.

use netgraph::{Adjacency, BitSet, GraphKind, Network, NodeId};

use crate::demand::FlowDemand;

/// The relevance-reduced instance.
#[derive(Clone, Debug)]
pub struct RelevantNetwork {
    /// The reduced network (possibly identical to the input).
    pub net: Network,
    /// The demand, with endpoints renumbered for the reduced network.
    pub demand: FlowDemand,
    /// For each reduced edge, its index in the original network.
    pub edge_origin: Vec<usize>,
    /// Links removed from the original.
    pub removed: usize,
}

/// Nodes co-reachable to `t`: BFS over reversed directions.
fn coreach(net: &Network, t: NodeId) -> BitSet {
    let adj = Adjacency::new(net);
    let mut seen = BitSet::new(net.node_count());
    seen.insert(t.index());
    let mut stack = vec![t];
    while let Some(u) = stack.pop() {
        for &(_, v) in adj.in_edges(u) {
            if !seen.contains(v.index()) {
                seen.insert(v.index());
                stack.push(v);
            }
        }
    }
    seen
}

/// Deletes every link on no s→t path. Exact for every demand.
pub fn relevance_reduce(net: &Network, demand: FlowDemand) -> RelevantNetwork {
    let adj = Adjacency::new(net);
    let reach = netgraph::bfs_reachable(&adj, demand.source, |_| true);
    let co = coreach(net, demand.sink);
    let relevant = |i: usize| -> bool {
        let e = &net.edges()[i];
        if e.src == e.dst || e.capacity == 0 {
            return false; // self-loops and zero-capacity links never matter
        }
        if e.fail_prob >= 1.0 {
            return false; // an always-down link behaves as a deleted one
        }
        match net.kind() {
            GraphKind::Directed => reach.contains(e.src.index()) && co.contains(e.dst.index()),
            // undirected: usable in either direction
            GraphKind::Undirected => {
                (reach.contains(e.src.index()) && co.contains(e.dst.index()))
                    || (reach.contains(e.dst.index()) && co.contains(e.src.index()))
            }
        }
    };
    let keep: Vec<usize> = (0..net.edge_count()).filter(|&i| relevant(i)).collect();
    if keep.len() == net.edge_count() {
        return RelevantNetwork {
            net: net.clone(),
            demand,
            edge_origin: keep,
            removed: 0,
        };
    }
    // rebuild over the nodes touched by surviving links plus the terminals
    let mut node_keep = vec![false; net.node_count()];
    node_keep[demand.source.index()] = true;
    node_keep[demand.sink.index()] = true;
    for &i in &keep {
        node_keep[net.edges()[i].src.index()] = true;
        node_keep[net.edges()[i].dst.index()] = true;
    }
    let mut remap = vec![usize::MAX; net.node_count()];
    let mut b = netgraph::NetworkBuilder::new(net.kind());
    for (i, &k) in node_keep.iter().enumerate() {
        if k {
            remap[i] = b.add_node().index();
        }
    }
    for &i in &keep {
        let e = &net.edges()[i];
        let src = NodeId::from(remap[e.src.index()]);
        let dst = NodeId::from(remap[e.dst.index()]);
        match net.spectrum(netgraph::EdgeId::from(i)) {
            Some(sp) => b.add_spectrum_edge(src, dst, sp.states()),
            None => b.add_edge(src, dst, e.capacity, e.fail_prob),
        }
        .unwrap_or_else(|e| unreachable!("probabilities are already validated: {e}"));
    }
    let removed = net.edge_count() - keep.len();
    RelevantNetwork {
        net: b.build(),
        demand: FlowDemand::new(
            NodeId::from(remap[demand.source.index()]),
            NodeId::from(remap[demand.sink.index()]),
            demand.demand,
        ),
        edge_origin: keep,
        removed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::NetworkBuilder;

    #[test]
    fn keeps_everything_on_a_clean_path() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.2).unwrap();
        let net = b.build();
        let red = relevance_reduce(&net, FlowDemand::new(n[0], n[2], 1));
        assert_eq!(red.removed, 0);
        assert_eq!(red.net.edge_count(), 2);
        assert_eq!(red.edge_origin, vec![0, 1]);
    }

    #[test]
    fn drops_dangling_spur_and_wrong_way_edge() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(5);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap(); // s->a relevant
        b.add_edge(n[1], n[2], 1, 0.2).unwrap(); // a->t relevant
        b.add_edge(n[1], n[3], 1, 0.3).unwrap(); // a->spur: spur can't reach t
        b.add_edge(n[2], n[0], 1, 0.4).unwrap(); // t->s back edge (cycle)
        b.add_edge(n[4], n[1], 1, 0.5).unwrap(); // unreachable origin
        let net = b.build();
        let red = relevance_reduce(&net, FlowDemand::new(n[0], n[2], 1));
        // the t->s edge is "relevant" by the reach/coreach test (it closes a
        // cycle through s) but carries no s-t flow; the cheap test keeps it.
        // The spur and the unreachable-origin edge must go.
        assert!(red.removed >= 2);
        assert!(red.net.edge_count() <= 3);
    }

    #[test]
    fn undirected_component_filter() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(5);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.2).unwrap();
        b.add_edge(n[3], n[4], 1, 0.3).unwrap(); // disconnected island
        let net = b.build();
        let red = relevance_reduce(&net, FlowDemand::new(n[0], n[2], 1));
        assert_eq!(red.removed, 1);
        assert_eq!(red.net.edge_count(), 2);
        assert_eq!(red.net.node_count(), 3);
    }

    #[test]
    fn zero_capacity_and_self_loops_removed() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[1], 0, 0.2).unwrap();
        b.add_edge(n[0], n[0], 1, 0.3).unwrap();
        let net = b.build();
        let red = relevance_reduce(&net, FlowDemand::new(n[0], n[1], 1));
        assert_eq!(red.removed, 2);
        assert_eq!(red.edge_origin, vec![0]);
    }

    #[test]
    fn reduction_extends_the_naive_range() {
        use crate::naive::reliability_naive;
        use crate::options::CalcOptions;
        // 3 relevant links plus 38 irrelevant spurs: 41 links total, far over
        // the enumeration bound — but only 3 enter the exponent
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(44);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.2).unwrap();
        b.add_edge(n[0], n[2], 1, 0.3).unwrap();
        for i in 3..41 {
            b.add_edge(n[1], n[i], 1, 0.25).unwrap(); // dead-end spurs
        }
        let net = b.build();
        assert_eq!(net.edge_count(), 41);
        let d = FlowDemand::new(n[0], n[2], 1);
        let r = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let expected = 1.0 - (1.0 - 0.9 * 0.8) * 0.3;
        assert!((r - expected).abs() < 1e-12, "{r} vs {expected}");
    }

    #[test]
    fn always_down_links_are_deleted() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[1], 5, 1.0).unwrap(); // never up
        let net = b.build();
        let red = relevance_reduce(&net, FlowDemand::new(n[0], n[1], 1));
        assert_eq!(red.removed, 1);
        assert_eq!(red.edge_origin, vec![0]);
    }

    #[test]
    fn reduction_carries_spectra() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.25), (1, 0.25), (2, 0.5)])
            .unwrap();
        b.add_edge(n[1], n[2], 2, 0.125).unwrap();
        b.add_edge(n[1], n[3], 1, 0.5).unwrap(); // dead-end spur: dropped
        let net = b.build();
        let red = relevance_reduce(&net, FlowDemand::new(n[0], n[2], 1));
        assert_eq!(red.removed, 1);
        assert!(red.net.has_multistate());
        let sp = red.net.spectrum(netgraph::EdgeId(0)).unwrap();
        assert_eq!(sp.states(), &[(0, 0.25), (1, 0.25), (2, 0.5)]);
    }

    #[test]
    fn disconnected_terminals_reduce_to_nothing() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        let net = b.build();
        let red = relevance_reduce(&net, FlowDemand::new(n[0], n[2], 1));
        assert_eq!(red.net.edge_count(), 0, "no link reaches the sink");
        // terminals survive renumbering
        assert!(red.demand.source.index() < red.net.node_count());
        assert!(red.demand.sink.index() < red.net.node_count());
    }
}
