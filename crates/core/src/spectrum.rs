//! The realization spectrum: a streamed, probability-weighted aggregate of
//! the Section III-C array.
//!
//! The accumulation of Section IV never needs the per-configuration array
//! entries themselves — only, for every subset `X` of the assignment set,
//! the total probability of the configurations whose realization mask
//! relates to `X`. The spectrum therefore aggregates on the fly:
//!
//! `mass[m] = Σ { P(config) : config's realization mask == m }`
//!
//! for every mask `m ⊆ D`. This replaces the `O(2^{|E_c|})` array with an
//! `O(2^{|D|})` vector (`|D| ≤ d^k` is a small constant in the paper's
//! regime) while performing the same `|D| · 2^{|E_c|}` max-flow invocations.
//!
//! The builder is generic over [`Weight`], so the same sweep produces either
//! compensated-`f64` or exact-rational masses.

use crate::certcache::SweepStats;
use crate::error::ReliabilityError;
use crate::oracle::SideOracle;
use crate::sweep::{sweep_spectrum, SweepConfig};
use crate::weight::{EdgeWeights, Weight};

/// Probability mass of each realization mask for one side.
#[derive(Clone, Debug, PartialEq)]
pub struct RealizationSpectrum<W> {
    /// Number of assignments `|D|`.
    pub assign_count: usize,
    /// `mass[m]` = total probability of side configurations whose realization
    /// mask is exactly `m`; indices run over `0..2^assign_count`.
    pub mass: Vec<W>,
}

impl<W: Weight> RealizationSpectrum<W> {
    /// Builds the spectrum for one side with the legacy serial,
    /// certificate-free sweep.
    ///
    /// `weights[i]` is the `(alive, failed)` probability pair of side link
    /// `i` (indexed like the side's own edges).
    pub fn build(
        oracle: &mut SideOracle,
        weights: &EdgeWeights<W>,
        max_side_edges: usize,
        max_assignments: usize,
        prune_infeasible: bool,
    ) -> Result<Self, ReliabilityError> {
        Self::build_with(
            oracle,
            weights,
            max_side_edges,
            max_assignments,
            prune_infeasible,
            &SweepConfig::serial(),
        )
        .map(|(sp, _)| sp)
    }

    /// Builds the spectrum through the shared sweep engine
    /// ([`crate::sweep`]), returning the engine's counters alongside.
    pub fn build_with(
        oracle: &mut SideOracle,
        weights: &EdgeWeights<W>,
        max_side_edges: usize,
        max_assignments: usize,
        prune_infeasible: bool,
        cfg: &SweepConfig,
    ) -> Result<(Self, SweepStats), ReliabilityError> {
        let m = oracle.edge_count();
        let dn = oracle.assignment_count();
        assert_eq!(weights.len(), m, "one weight pair per side link");
        if m > max_side_edges {
            return Err(ReliabilityError::SideTooLarge {
                count: m,
                max: max_side_edges,
            });
        }
        if dn > max_assignments || dn > 31 {
            return Err(ReliabilityError::TooManyAssignments {
                count: dn,
                max: max_assignments.min(31),
            });
        }
        let live: Vec<usize> = (0..dn)
            .filter(|&j| !prune_infeasible || oracle.feasible_at_best(j))
            .collect();
        let (mass, stats) = sweep_spectrum(oracle, &live, weights, dn, cfg);
        Ok((
            RealizationSpectrum {
                assign_count: dn,
                mass,
            },
            stats,
        ))
    }

    /// Total mass (must be 1 up to rounding — the configurations partition
    /// the side's probability space).
    pub fn total(&self) -> W {
        let mut t = W::zero();
        for w in &self.mass {
            t = t.add(w);
        }
        t
    }
}

/// Probability of configuration `c` over `m` links with the given weights
/// (direct product; the engine's split-product table is validated against
/// this in the tests).
#[cfg(test)]
fn config_weight<W: Weight>(weights: &EdgeWeights<W>, c: u64, m: usize) -> W {
    let mut p = W::one();
    for (i, w) in weights.iter().enumerate().take(m) {
        p = p.mul(if c >> i & 1 == 1 { &w.0 } else { &w.1 });
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assign::Assignment;
    use crate::decompose::Side;
    use crate::sweep::SweepConfig;
    use crate::table::RealizationTable;
    use exactmath::BigRational;
    use maxflow::SolverKind;
    use netgraph::{GraphKind, NetworkBuilder};

    fn asg(amounts: &[i64]) -> Assignment {
        Assignment {
            amounts: amounts.to_vec(),
        }
    }

    fn side_with_three_links() -> Side {
        // s -> a (cap 1), s -> a (cap 1), s -> b (cap 2); attach a, b
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[1], 1, 0.3).unwrap();
        b.add_edge(n[0], n[2], 2, 0.2).unwrap();
        Side {
            net: b.build(),
            edge_origin: vec![],
            terminal: n[0],
            attach: vec![n[1], n[2]],
            is_source_side: true,
        }
    }

    fn weights_of(side: &Side) -> EdgeWeights<f64> {
        crate::weight::edge_weights(&side.net)
    }

    #[test]
    fn spectrum_masses_sum_to_one() {
        let side = side_with_three_links();
        let assignments = vec![asg(&[2, 0]), asg(&[1, 1]), asg(&[0, 2])];
        let mut o = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        let sp = RealizationSpectrum::build(&mut o, &weights_of(&side), 26, 20, true).unwrap();
        assert_eq!(sp.mass.len(), 8);
        assert!((sp.total() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn spectrum_agrees_with_table() {
        let side = side_with_three_links();
        let assignments = vec![asg(&[2, 0]), asg(&[1, 1]), asg(&[0, 2])];
        let weights = weights_of(&side);

        let mut o = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        let sp = RealizationSpectrum::build(&mut o, &weights, 26, 20, true).unwrap();

        let mut o2 = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        let table = RealizationTable::build(&mut o2, 26, 20, true).unwrap();
        let mut expected = vec![0.0; 8];
        for (c, &mask) in table.masks.iter().enumerate() {
            expected[mask as usize] += config_weight(&weights, c as u64, 3);
        }
        for (a, b) in sp.mass.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn exact_spectrum_matches_float() {
        let side = side_with_three_links();
        let assignments = vec![asg(&[2, 0]), asg(&[1, 1]), asg(&[0, 2])];
        let wf = weights_of(&side);
        let we = crate::weight::edge_weights_exact(&side.net);

        let mut o = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        let spf = RealizationSpectrum::build(&mut o, &wf, 26, 20, true).unwrap();
        let mut o2 = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        let spe: RealizationSpectrum<BigRational> =
            RealizationSpectrum::build(&mut o2, &we, 26, 20, false).unwrap();
        assert_eq!(spe.total(), BigRational::one());
        for (f, e) in spf.mass.iter().zip(&spe.mass) {
            assert!((f - e.to_f64()).abs() < 1e-12);
        }
    }

    #[test]
    fn certificate_hits_do_not_change_masses() {
        let side = side_with_three_links();
        let assignments = vec![asg(&[2, 0]), asg(&[1, 1]), asg(&[0, 2])];
        let weights = weights_of(&side);
        let mut o = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        let (plain, s0) =
            RealizationSpectrum::build_with(&mut o, &weights, 26, 20, true, &SweepConfig::serial())
                .unwrap();
        let mut o2 = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        let cfg = SweepConfig {
            certificates: true,
            cache_size: 16,
            ..SweepConfig::serial()
        };
        let (cached, s1) =
            RealizationSpectrum::build_with(&mut o2, &weights, 26, 20, true, &cfg).unwrap();
        assert_eq!(plain.mass, cached.mass, "cache hits must not move any mass");
        assert_eq!(s0.solver_calls_avoided(), 0);
        assert!(
            s1.solver_calls_avoided() > 0,
            "8 configs x 3 assignments must yield hits"
        );
        assert_eq!(s1.configs, s0.configs);
    }

    #[test]
    fn block_boundaries_are_exact() {
        // more links than one block would hold if BLOCK_BITS were tiny is
        // impractical here; instead check a side whose edge count is not a
        // multiple of the block size still sums to 1
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        for i in 0..5 {
            b.add_edge(n[0], n[1], 1, 0.1 + 0.05 * i as f64).unwrap();
        }
        let side = Side {
            net: b.build(),
            edge_origin: vec![],
            terminal: n[0],
            attach: vec![n[1]],
            is_source_side: true,
        };
        let assignments = vec![asg(&[1]), asg(&[2])];
        let weights = crate::weight::edge_weights(&side.net);
        let mut o = SideOracle::new(&side, &assignments, SolverKind::Dinic).unwrap();
        let sp = RealizationSpectrum::build(&mut o, &weights, 26, 20, true).unwrap();
        assert!((sp.total() - 1.0).abs() < 1e-12);
        // mask 0b10 alone (realizes (2) but not (1)) is impossible: monotone
        assert_eq!(sp.mass[0b10], 0.0);
    }
}
