//! The end-to-end bottleneck algorithm (Sections III–IV).
//!
//! Pipeline: validate/decompose along the bottleneck set → enumerate the
//! assignment set `D` → build both side spectra (`|D| · 2^{|E_c|}` max-flow
//! calls each) → accumulate over the `2^k` bottleneck configurations with
//! inclusion–exclusion. Total `O(2^{α|E|} · |V||E|)` for constant `d`, `k` —
//! the paper's headline bound.

use exactmath::BigRational;
use netgraph::{EdgeId, Network};

use crate::accumulate::{combine, combine_interval};
use crate::assign::{crossing_ranges, enumerate_assignments, supported_assignment_masks};
use crate::bottleneck::{validate_bottleneck_set, BottleneckSet};
use crate::budget::BudgetSentinel;
use crate::certcache::SweepStats;
use crate::checkpoint::{SideCheckpoint, SweepCursor};
use crate::decompose::{decompose, Side};
use crate::demand::FlowDemand;
use crate::error::ReliabilityError;
use crate::options::CalcOptions;
use crate::oracle::SideOracle;
use crate::spectrum::RealizationSpectrum;
use crate::sweep::{sweep_spectrum_budgeted, PartialSpectrum, SweepConfig};
use crate::weight::{edge_weights, edge_weights_exact, EdgeWeights, Weight};

/// What the bottleneck algorithm did, for reporting and experiments.
#[derive(Clone, Debug)]
pub struct BottleneckReport {
    /// The bottleneck set used.
    pub set: BottleneckSet,
    /// Size of the assignment set `|D|`.
    pub assignment_count: usize,
    /// `α` of the decomposition.
    pub alpha: f64,
    /// Sweep-engine counters, merged over both side spectra (configurations
    /// tested, solver calls, certificate hits).
    pub sweep: SweepStats,
    /// Per-leaf-slot planner accounting (empty for one-level runs): how the
    /// plan interpreter apportioned the budget and what each sweep actually
    /// cost. See [`PlanSlotReport`].
    pub plan_slots: Vec<PlanSlotReport>,
}

/// Budget and cost accounting for one plan leaf slot, in DFS slot order.
#[derive(Clone, Debug)]
pub struct PlanSlotReport {
    /// DFS slot index (matches `leaf #i` / `sweep #i` in the rendered plan).
    pub index: usize,
    /// Leaf kind: `"naive"`, `"cut"`, `"sweep"`, or — in hybrid mode, when
    /// the budget forced this scalar leaf to be estimated statistically —
    /// `"mc"` (in that case `configs`/`explored` count samples).
    pub kind: &'static str,
    /// Configurations the planner predicted this slot still had to
    /// enumerate when the run started (resume-aware).
    pub predicted: f64,
    /// Cost-proportional fraction of the configuration budget the
    /// apportioner grants this slot's subtree (predicted cost over the total
    /// predicted cost; the sentinel fork uses exactly this ratio when the
    /// budget tracks a configuration allowance).
    pub share: f64,
    /// Configurations the sweep actually tested during this run.
    pub configs: u64,
    /// Fraction of this slot's own configuration space explored so far.
    pub explored: f64,
}

/// Projects parent-network weights onto a side's own edge numbering.
fn side_weights<W: Weight>(side: &Side, parent: &EdgeWeights<W>) -> EdgeWeights<W> {
    side.edge_origin
        .iter()
        .map(|&e| parent[e.index()].clone())
        .collect()
}

/// Generic bottleneck reliability over any weight domain.
pub fn reliability_bottleneck_weighted<W: Weight>(
    net: &Network,
    demand: FlowDemand,
    cut: &[EdgeId],
    weights: &EdgeWeights<W>,
    opts: &CalcOptions,
) -> Result<(W, BottleneckReport), ReliabilityError> {
    demand.validate(net)?;
    let set = validate_bottleneck_set(net, demand.source, demand.sink, cut)?;
    reliability_bottleneck_on_set(net, demand, &set, weights, opts)
}

/// As [`reliability_bottleneck_weighted`], with a pre-validated set.
pub fn reliability_bottleneck_on_set<W: Weight>(
    net: &Network,
    demand: FlowDemand,
    set: &BottleneckSet,
    weights: &EdgeWeights<W>,
    opts: &CalcOptions,
) -> Result<(W, BottleneckReport), ReliabilityError> {
    if net.has_multistate() {
        return Err(ReliabilityError::MultiState {
            operation: "the one-level bottleneck decomposition",
        });
    }
    let report = |count: usize, sweep: SweepStats| BottleneckReport {
        set: set.clone(),
        assignment_count: count,
        alpha: set.alpha(net.edge_count()),
        sweep,
        plan_slots: Vec::new(),
    };
    if demand.demand == 0 {
        return Ok((W::one(), report(0, SweepStats::default())));
    }
    // assignment set D (Section III-B)
    let ranges = crossing_ranges(
        net,
        &set.edges,
        &set.forward_oriented,
        demand.demand,
        opts.assignment_model,
    );
    let assignments = enumerate_assignments(demand.demand, &ranges);
    if assignments.is_empty() {
        // the bottleneck cannot carry d at all: reliability is trivially zero
        return Ok((W::zero(), report(0, SweepStats::default())));
    }
    if assignments.len() > opts.max_assignments || assignments.len() > 31 {
        return Err(ReliabilityError::TooManyAssignments {
            count: assignments.len(),
            max: opts.max_assignments.min(31),
        });
    }

    let dec = decompose(net, &demand, set);
    let k = dec.cut.len();

    // side spectra (Section III-C, streamed through the sweep engine)
    let w_s = side_weights(&dec.side_s, weights);
    let w_t = side_weights(&dec.side_t, weights);
    let mut oracle_s = SideOracle::new(&dec.side_s, &assignments, opts.solver)?;
    let mut oracle_t = SideOracle::new(&dec.side_t, &assignments, opts.solver)?;
    let cfg = SweepConfig::from_opts(opts);
    let build_s = |o: &mut SideOracle| {
        RealizationSpectrum::build_with(
            o,
            &w_s,
            opts.max_side_edges,
            opts.max_assignments,
            opts.prune_infeasible_assignments,
            &cfg,
        )
    };
    let build_t = |o: &mut SideOracle| {
        RealizationSpectrum::build_with(
            o,
            &w_t,
            opts.max_side_edges,
            opts.max_assignments,
            opts.prune_infeasible_assignments,
            &cfg,
        )
    };
    let (res_s, res_t) = if opts.parallel {
        // the two sides are independent subproblems: build them concurrently
        rayon::join(|| build_s(&mut oracle_s), || build_t(&mut oracle_t))
    } else {
        (build_s(&mut oracle_s), build_t(&mut oracle_t))
    };
    let (spec_s, stats_s) = res_s?;
    let (spec_t, stats_t) = res_t?;
    let mut sweep = stats_s;
    sweep.merge(&stats_t);

    // accumulation (Section IV)
    let support = supported_assignment_masks(&assignments, k);
    let cut_weights: Vec<(W, W)> = dec
        .cut
        .iter()
        .map(|&e| weights[e.index()].clone())
        .collect();
    let r = combine(
        &cut_weights,
        &support,
        &spec_s.mass,
        &spec_t.mass,
        assignments.len(),
        opts.accumulation,
    );
    Ok((r, report(assignments.len(), sweep)))
}

/// What a budget-aware bottleneck run produced.
#[derive(Clone, Debug)]
pub enum BottleneckOutcome {
    /// The budget sufficed: the exact reliability, identical to what
    /// [`reliability_bottleneck_on_set`] computes on the same instance.
    Complete {
        /// Exact reliability.
        reliability: f64,
        /// Run report.
        report: BottleneckReport,
    },
    /// The budget ran out (or the run was cancelled) mid-sweep.
    Partial {
        /// Sound lower bound on the reliability.
        r_low: f64,
        /// Sound upper bound on the reliability.
        r_high: f64,
        /// Fraction of the joint configuration space covered so far (the
        /// product of the two sides' explored probability mass).
        explored: f64,
        /// Source-side resume state.
        side_s: Box<SideCheckpoint>,
        /// Sink-side resume state.
        side_t: Box<SideCheckpoint>,
        /// Run report for the work done so far.
        report: BottleneckReport,
    },
}

/// Validates a side checkpoint against this decomposition and unpacks it into
/// the sweep engine's resume form. The checkpoint's `live` set is
/// authoritative — it records which assignments the interrupted run swept.
pub(crate) fn side_resume(
    ck: &SideCheckpoint,
    which: &str,
    m: usize,
    dn: usize,
) -> Result<(Vec<usize>, PartialSpectrum<f64>), ReliabilityError> {
    let bad = |reason: String| ReliabilityError::CheckpointMismatch { reason };
    if ck.cursor.total != 1u64 << m {
        return Err(bad(format!(
            "{which} checkpoint enumerates {} configurations, this side {}",
            ck.cursor.total,
            1u64 << m
        )));
    }
    if ck.mass.len() != 1usize << dn {
        return Err(bad(format!(
            "{which} checkpoint carries {} mask masses, this instance needs {}",
            ck.mass.len(),
            1usize << dn
        )));
    }
    if let Some(&j) = ck.live.iter().find(|&&j| j >= dn) {
        return Err(bad(format!(
            "{which} checkpoint marks assignment {j} live, only {dn} exist"
        )));
    }
    Ok((
        ck.live.clone(),
        PartialSpectrum {
            mass: ck.mass.clone(),
            remaining: ck.cursor.remaining.clone(),
            certs: ck.certs.clone(),
        },
    ))
}

/// Budget-aware bottleneck reliability in `f64`, with checkpoint/resume.
///
/// Runs both side sweeps under `opts.budget` (the sweeps share one sentinel,
/// so the limits apply to the whole calculation). When the budget suffices
/// the result is `Complete` and — in serial mode — bit-identical to
/// [`reliability_bottleneck_on_set`]. When it runs out the result is
/// `Partial`: each side's unexplored probability mass is injected at its
/// worst-case (empty) and best-case (all live assignments) realization masks,
/// which by monotonicity of the accumulation brackets the exact reliability
/// in `[r_low, r_high]`. The returned side checkpoints resume the enumeration
/// exactly where it stopped: a resumed serial run reproduces the
/// uninterrupted serial result bit for bit.
pub fn reliability_bottleneck_anytime(
    net: &Network,
    demand: FlowDemand,
    set: &BottleneckSet,
    opts: &CalcOptions,
    resume: Option<(&SideCheckpoint, &SideCheckpoint)>,
) -> Result<BottleneckOutcome, ReliabilityError> {
    let sentinel = opts.budget.start();
    reliability_bottleneck_anytime_on(net, demand, set, opts, &sentinel, resume)
}

/// As [`reliability_bottleneck_anytime`], but drawing from an externally
/// owned [`BudgetSentinel`] instead of starting a fresh one from
/// `opts.budget`, so a plan interpreter can hold several cut sweeps (and
/// naive leaf sweeps) to one shared budget.
pub fn reliability_bottleneck_anytime_on(
    net: &Network,
    demand: FlowDemand,
    set: &BottleneckSet,
    opts: &CalcOptions,
    sentinel: &BudgetSentinel,
    resume: Option<(&SideCheckpoint, &SideCheckpoint)>,
) -> Result<BottleneckOutcome, ReliabilityError> {
    demand.validate(net)?;
    if net.has_multistate() {
        return Err(ReliabilityError::MultiState {
            operation: "the one-level bottleneck decomposition",
        });
    }
    let report = |count: usize, sweep: SweepStats| BottleneckReport {
        set: set.clone(),
        assignment_count: count,
        alpha: set.alpha(net.edge_count()),
        sweep,
        plan_slots: Vec::new(),
    };
    if demand.demand == 0 {
        return Ok(BottleneckOutcome::Complete {
            reliability: 1.0,
            report: report(0, SweepStats::default()),
        });
    }
    let ranges = crossing_ranges(
        net,
        &set.edges,
        &set.forward_oriented,
        demand.demand,
        opts.assignment_model,
    );
    let assignments = enumerate_assignments(demand.demand, &ranges);
    if assignments.is_empty() {
        return Ok(BottleneckOutcome::Complete {
            reliability: 0.0,
            report: report(0, SweepStats::default()),
        });
    }
    if assignments.len() > opts.max_assignments || assignments.len() > 31 {
        return Err(ReliabilityError::TooManyAssignments {
            count: assignments.len(),
            max: opts.max_assignments.min(31),
        });
    }
    let dn = assignments.len();

    let dec = decompose(net, &demand, set);
    let k = dec.cut.len();
    let weights = edge_weights(net);
    let w_s = side_weights(&dec.side_s, &weights);
    let w_t = side_weights(&dec.side_t, &weights);
    let mut oracle_s = SideOracle::new(&dec.side_s, &assignments, opts.solver)?;
    let mut oracle_t = SideOracle::new(&dec.side_t, &assignments, opts.solver)?;
    let (m_s, m_t) = (oracle_s.edge_count(), oracle_t.edge_count());
    for m in [m_s, m_t] {
        if m > opts.max_side_edges {
            return Err(ReliabilityError::SideTooLarge {
                count: m,
                max: opts.max_side_edges,
            });
        }
    }

    let (live_s, res_s, live_t, res_t) = match resume {
        Some((cs, ct)) => {
            let (ls, ps) = side_resume(cs, "source-side", m_s, dn)?;
            let (lt, pt) = side_resume(ct, "sink-side", m_t, dn)?;
            (ls, Some(ps), lt, Some(pt))
        }
        None => {
            let live = |o: &mut SideOracle| -> Vec<usize> {
                (0..dn)
                    .filter(|&j| !opts.prune_infeasible_assignments || o.feasible_at_best(j))
                    .collect()
            };
            (live(&mut oracle_s), None, live(&mut oracle_t), None)
        }
    };

    let cfg = SweepConfig::from_opts(opts);
    let ((part_s, stats_s), (part_t, stats_t)) = if opts.parallel {
        rayon::join(
            || sweep_spectrum_budgeted(&oracle_s, &live_s, &w_s, dn, &cfg, sentinel, res_s),
            || sweep_spectrum_budgeted(&oracle_t, &live_t, &w_t, dn, &cfg, sentinel, res_t),
        )
    } else {
        (
            sweep_spectrum_budgeted(&oracle_s, &live_s, &w_s, dn, &cfg, sentinel, res_s),
            sweep_spectrum_budgeted(&oracle_t, &live_t, &w_t, dn, &cfg, sentinel, res_t),
        )
    };
    let mut sweep = stats_s;
    sweep.merge(&stats_t);

    let support = supported_assignment_masks(&assignments, k);
    let cut_weights: Vec<(f64, f64)> = dec.cut.iter().map(|&e| weights[e.index()]).collect();

    if part_s.is_complete() && part_t.is_complete() {
        let r = combine(
            &cut_weights,
            &support,
            &part_s.mass,
            &part_t.mass,
            dn,
            opts.accumulation,
        );
        return Ok(BottleneckOutcome::Complete {
            reliability: r,
            report: report(dn, sweep),
        });
    }

    let explored_mass = |mass: &[f64]| mass.iter().sum::<f64>().clamp(0.0, 1.0);
    let live_mask = |live: &[usize]| live.iter().fold(0u32, |a, &j| a | 1 << j);
    let (sum_s, sum_t) = (explored_mass(&part_s.mass), explored_mass(&part_t.mass));
    let (lo, hi) = combine_interval(
        &cut_weights,
        &support,
        &part_s.mass,
        &(1.0 - sum_s).max(0.0),
        live_mask(&live_s),
        &part_t.mass,
        &(1.0 - sum_t).max(0.0),
        live_mask(&live_t),
        dn,
        opts.accumulation,
    );
    let r_low = lo.clamp(0.0, 1.0);
    let r_high = hi.clamp(r_low, 1.0);
    let side_ck = |m: usize, live: Vec<usize>, p: PartialSpectrum<f64>| SideCheckpoint {
        cursor: SweepCursor {
            total: 1u64 << m,
            remaining: p.remaining,
        },
        live,
        mass: p.mass,
        certs: p.certs,
    };
    Ok(BottleneckOutcome::Partial {
        r_low,
        r_high,
        explored: (sum_s * sum_t).clamp(0.0, 1.0),
        side_s: Box::new(side_ck(m_s, live_s, part_s)),
        side_t: Box::new(side_ck(m_t, live_t, part_t)),
        report: report(dn, sweep),
    })
}

/// Bottleneck reliability in `f64`.
pub fn reliability_bottleneck(
    net: &Network,
    demand: FlowDemand,
    cut: &[EdgeId],
    opts: &CalcOptions,
) -> Result<f64, ReliabilityError> {
    reliability_bottleneck_weighted(net, demand, cut, &edge_weights(net), opts).map(|(r, _)| r)
}

/// Bottleneck reliability with exact rational arithmetic.
pub fn reliability_bottleneck_exact(
    net: &Network,
    demand: FlowDemand,
    cut: &[EdgeId],
    opts: &CalcOptions,
) -> Result<BigRational, ReliabilityError> {
    reliability_bottleneck_weighted(net, demand, cut, &edge_weights_exact(net), opts)
        .map(|(r, _)| r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{reliability_naive, reliability_naive_exact};
    use netgraph::{GraphKind, NetworkBuilder, NodeId};

    /// Bridge graph: triangle — bridge — triangle.
    fn bridge_net() -> (Network, FlowDemand, Vec<EdgeId>) {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(6);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.15).unwrap();
        b.add_edge(n[2], n[0], 1, 0.2).unwrap();
        let bridge = b.add_edge(n[2], n[3], 2, 0.05).unwrap();
        b.add_edge(n[3], n[4], 1, 0.1).unwrap();
        b.add_edge(n[4], n[5], 1, 0.25).unwrap();
        b.add_edge(n[5], n[3], 1, 0.3).unwrap();
        (b.build(), FlowDemand::new(n[0], n[5], 1), vec![bridge])
    }

    /// Double-diamond with a 2-link bottleneck.
    fn two_cut_net() -> (Network, FlowDemand, Vec<EdgeId>) {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(6);
        b.add_edge(n[0], n[1], 2, 0.1).unwrap();
        b.add_edge(n[0], n[2], 2, 0.2).unwrap();
        let c1 = b.add_edge(n[1], n[3], 2, 0.05).unwrap();
        let c2 = b.add_edge(n[2], n[4], 1, 0.15).unwrap();
        b.add_edge(n[3], n[5], 2, 0.1).unwrap();
        b.add_edge(n[4], n[5], 2, 0.25).unwrap();
        b.add_edge(n[1], n[2], 1, 0.3).unwrap(); // intra-side extra
        (b.build(), FlowDemand::new(n[0], n[5], 2), vec![c1, c2])
    }

    #[test]
    fn bridge_matches_naive() {
        let (net, d, cut) = bridge_net();
        let naive = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let bottleneck = reliability_bottleneck(&net, d, &cut, &CalcOptions::default()).unwrap();
        assert!(
            (naive - bottleneck).abs() < 1e-12,
            "naive {naive} vs bottleneck {bottleneck}"
        );
        assert!(bottleneck > 0.0 && bottleneck < 1.0);
    }

    #[test]
    fn two_cut_matches_naive_all_methods() {
        let (net, d, cut) = two_cut_net();
        let naive = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        for method in [
            crate::accumulate::AccumulationMethod::PaperDirect,
            crate::accumulate::AccumulationMethod::ZetaInclusionExclusion,
            crate::accumulate::AccumulationMethod::Complement,
        ] {
            let opts = CalcOptions {
                accumulation: method,
                ..Default::default()
            };
            let r = reliability_bottleneck(&net, d, &cut, &opts).unwrap();
            assert!(
                (naive - r).abs() < 1e-12,
                "{method:?}: naive {naive} vs {r}"
            );
        }
    }

    #[test]
    fn exact_matches_naive_exact() {
        let (net, d, cut) = two_cut_net();
        let naive = reliability_naive_exact(&net, d, &CalcOptions::default()).unwrap();
        let bn = reliability_bottleneck_exact(&net, d, &cut, &CalcOptions::default()).unwrap();
        assert_eq!(naive, bn, "exact arithmetic must agree bit for bit");
    }

    #[test]
    fn insufficient_cut_capacity_is_zero() {
        let (net, _, cut) = two_cut_net();
        // total cut capacity is 3 < 4
        let d = FlowDemand::new(NodeId(0), NodeId(5), 4);
        let (r, report) = reliability_bottleneck_weighted(
            &net,
            d,
            &cut,
            &edge_weights(&net),
            &CalcOptions::default(),
        )
        .unwrap();
        assert_eq!(r, 0.0);
        assert_eq!(report.assignment_count, 0);
    }

    #[test]
    fn zero_demand_is_one() {
        let (net, _, cut) = bridge_net();
        let d = FlowDemand::new(NodeId(0), NodeId(5), 0);
        let r = reliability_bottleneck(&net, d, &cut, &CalcOptions::default()).unwrap();
        assert_eq!(r, 1.0);
    }

    #[test]
    fn report_carries_geometry() {
        let (net, d, cut) = two_cut_net();
        let (_, report) = reliability_bottleneck_weighted(
            &net,
            d,
            &cut,
            &edge_weights(&net),
            &CalcOptions::default(),
        )
        .unwrap();
        assert_eq!(report.set.k(), 2);
        assert_eq!(
            report.assignment_count, 2,
            "D = {{(2,0)... no: (1,1),(2,0)}}"
        );
        assert!((report.alpha - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_variants_agree_and_report_stats() {
        let (net, d, cut) = two_cut_net();
        let w = edge_weights(&net);
        let plain = CalcOptions {
            certificate_cache: false,
            ..Default::default()
        };
        let (r0, rep0) = reliability_bottleneck_weighted(&net, d, &cut, &w, &plain).unwrap();
        let (r1, rep1) =
            reliability_bottleneck_weighted(&net, d, &cut, &w, &CalcOptions::default()).unwrap();
        let (r2, _) =
            reliability_bottleneck_weighted(&net, d, &cut, &w, &CalcOptions::parallel()).unwrap();
        assert_eq!(r0, r1, "serial cert-cached run must be bit-identical");
        assert!((r0 - r2).abs() < 1e-12);
        assert_eq!(rep0.sweep.solver_calls_avoided(), 0);
        assert!(rep1.sweep.solver_calls_avoided() > 0);
        assert_eq!(rep1.sweep.configs, rep0.sweep.configs);
        assert!(rep0.sweep.configs > 0);
    }

    #[test]
    fn anytime_bounds_bracket_and_resume_is_bit_identical() {
        let (net, d, cut) = two_cut_net();
        let set = validate_bottleneck_set(&net, d.source, d.sink, &cut).unwrap();
        let exact = reliability_bottleneck(&net, d, &cut, &CalcOptions::default()).unwrap();

        // unlimited budget: the anytime path must equal the classic one
        let full =
            reliability_bottleneck_anytime(&net, d, &set, &CalcOptions::default(), None).unwrap();
        match full {
            BottleneckOutcome::Complete { reliability, .. } => {
                assert_eq!(reliability, exact, "anytime complete must be bit-identical")
            }
            BottleneckOutcome::Partial { .. } => panic!("unlimited budget must complete"),
        }

        // tiny budget slices, resumed to completion
        let budget = |n: u64| CalcOptions {
            budget: crate::budget::Budget {
                max_configs: Some(n),
                ..Default::default()
            },
            ..Default::default()
        };
        let mut resume: Option<(Box<SideCheckpoint>, Box<SideCheckpoint>)> = None;
        let mut partials = 0usize;
        let r = loop {
            let out = reliability_bottleneck_anytime(
                &net,
                d,
                &set,
                &budget(3),
                resume.as_ref().map(|(a, b)| (a.as_ref(), b.as_ref())),
            )
            .unwrap();
            match out {
                BottleneckOutcome::Complete { reliability, .. } => break reliability,
                BottleneckOutcome::Partial {
                    r_low,
                    r_high,
                    explored,
                    side_s,
                    side_t,
                    ..
                } => {
                    assert!(
                        r_low <= exact + 1e-12 && exact <= r_high + 1e-12,
                        "[{r_low}, {r_high}] must bracket {exact}"
                    );
                    assert!((0.0..=1.0).contains(&explored));
                    partials += 1;
                    assert!(partials < 10_000, "budgeted loop must make progress");
                    resume = Some((side_s, side_t));
                }
            }
        };
        assert!(partials >= 1, "a 3-config budget must interrupt this sweep");
        assert_eq!(r, exact, "serial resumed run must be bit-identical");
    }

    #[test]
    fn paper_faithful_options_agree() {
        let (net, d, cut) = two_cut_net();
        let default = reliability_bottleneck(&net, d, &cut, &CalcOptions::default()).unwrap();
        let faithful =
            reliability_bottleneck(&net, d, &cut, &CalcOptions::paper_faithful()).unwrap();
        assert!((default - faithful).abs() < 1e-12);
    }
}
