//! Work and time budgets for the anytime sweep engine.
//!
//! Every exact path in this crate is exponential, so a slightly-too-large
//! instance either trips a size bound up front or runs unboundedly. A
//! [`Budget`] turns that cliff into graceful degradation: the sweep engine
//! ([`crate::sweep`]) polls the budget between small batches of
//! configurations and, when the wall-clock deadline passes, the
//! configuration allowance runs out, or the cooperative [`CancelToken`] is
//! tripped (e.g. from a Ctrl-C handler), it stops at a clean cursor and
//! reports a rigorous partial result instead of an answer-or-nothing.
//!
//! The budget is *shared* across everything one calculation does: parallel
//! workers and both sides of a bottleneck decomposition draw configuration
//! grants from the same allowance, so "at most N configurations" means N in
//! total, not N per worker.
//!
//! Sentinels form a *hierarchy*: [`BudgetSentinel::child`] carves a share of
//! the remaining allowance out of a parent into a sentinel with its own
//! atomics, so independent plan subtrees poll disjoint cache lines instead
//! of contending on one global counter. A starved child pulls chunked
//! refills from its ancestors (so allowance released by an early-finishing
//! sibling is rebalanced to the subtrees still running), and
//! [`BudgetSentinel::release`] returns whatever a finished subtree did not
//! spend.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag, cheap to clone and poll.
///
/// Tripping the token is sticky: once tripped it stays tripped. Polling is a
/// single relaxed atomic load, safe to do from signal handlers and hot loops.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent and async-signal-safe (a single
    /// atomic store).
    pub fn trip(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_tripped(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// The shared atomic behind the token, for wiring into subsystems that
    /// take a bare flag (e.g. [`montecarlo::McBudget`]). Tripping the token
    /// and storing `true` into the flag are the same operation.
    pub fn as_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.0)
    }
}

/// Resource limits for one reliability calculation. The default is
/// unlimited — identical behavior to the pre-anytime engine.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Wall-clock limit, measured from [`Budget::start`].
    pub time_limit: Option<Duration>,
    /// Maximum number of configurations (solver questions) to examine,
    /// summed over all workers and both decomposition sides.
    pub max_configs: Option<u64>,
    /// Cooperative cancellation (e.g. tripped by a Ctrl-C handler).
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// No limits at all.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True when no limit of any kind is set.
    pub fn is_unlimited(&self) -> bool {
        self.time_limit.is_none() && self.max_configs.is_none() && self.cancel.is_none()
    }

    /// Arms the budget for one run: the deadline clock starts now.
    pub fn start(&self) -> BudgetSentinel {
        BudgetSentinel {
            core: Arc::new(Core {
                deadline: self.time_limit.map(|d| Instant::now() + d),
                cancel: self.cancel.clone(),
                trivial: self.is_unlimited(),
                limited: self.max_configs.is_some(),
                limit: AtomicU64::new(self.max_configs.unwrap_or(u64::MAX)),
                used: AtomicU64::new(0),
                parent: None,
            }),
        }
    }
}

/// When a child's local allowance runs dry it pulls at least this many
/// configurations from its ancestors in one refill, so rebalancing costs one
/// ancestor round-trip per ~thousand configurations instead of one per batch.
const REFILL: u64 = 1024;

/// Shared accounting state of one sentinel in the hierarchy. `limit` and
/// `used` both only grow (a refill raises `limit`); the spendable allowance
/// is `limit − used`.
#[derive(Debug)]
struct Core {
    deadline: Option<Instant>,
    cancel: Option<CancelToken>,
    /// No limit of any kind: every grant is free and children share this core.
    trivial: bool,
    /// Whether a configuration allowance is being tracked at all.
    limited: bool,
    limit: AtomicU64,
    used: AtomicU64,
    parent: Option<Arc<Core>>,
}

impl Core {
    /// Takes up to `want` configurations, pulling chunked refills from the
    /// ancestor chain when the local allowance is dry. Returns how many were
    /// actually debited (0 when the whole chain is exhausted).
    fn take_upto(&self, want: u64) -> u64 {
        let mut taken = 0u64;
        while taken < want {
            let used = self.used.load(Ordering::Relaxed);
            let limit = self.limit.load(Ordering::Relaxed);
            if used < limit {
                let got = (want - taken).min(limit - used);
                if self
                    .used
                    .compare_exchange_weak(used, used + got, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
                {
                    taken += got;
                }
                continue; // CAS race: retry with fresh counters
            }
            let Some(parent) = &self.parent else {
                break;
            };
            let refill = parent.take_upto((want - taken).max(REFILL));
            if refill == 0 {
                break;
            }
            self.limit.fetch_add(refill, Ordering::Relaxed);
        }
        taken
    }

    /// Current spendable allowance (saturating; racy but only read at fork
    /// points where the subtree is quiescent).
    fn avail(&self) -> u64 {
        let limit = self.limit.load(Ordering::Relaxed);
        let used = self.used.load(Ordering::Relaxed);
        limit.saturating_sub(used)
    }
}

/// The armed form of a [`Budget`], shared by reference across the workers of
/// one calculation (or one plan subtree — see [`BudgetSentinel::child`]).
#[derive(Debug)]
pub struct BudgetSentinel {
    core: Arc<Core>,
}

impl BudgetSentinel {
    /// An always-granting sentinel (for the non-anytime entry points).
    pub fn unlimited() -> Self {
        Budget::unlimited().start()
    }

    /// True when this sentinel can never interrupt (no limit of any kind was
    /// set). The sweep engine uses this to skip the explored-mass bookkeeping
    /// that only a partial result would need.
    pub fn is_unlimited(&self) -> bool {
        self.core.trivial
    }

    /// Whether a stop has been requested by time or cancellation (the
    /// configuration allowance is handled by [`BudgetSentinel::grant`]).
    pub fn interrupted(&self) -> bool {
        if self.core.trivial {
            return false;
        }
        if let Some(c) = &self.core.cancel {
            if c.is_tripped() {
                return true;
            }
        }
        if let Some(d) = self.core.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }

    /// Requests permission to examine up to `max_units` batches of `unit`
    /// configurations each; returns how many whole batches are granted
    /// (possibly 0). Grants are debited exactly from the shared allowance
    /// (the sum of all grants never exceeds `max_configs`), except that
    /// while any allowance remains the grant is at least one batch, even
    /// when `unit` exceeds the leftover — otherwise a caller whose batch
    /// unit is larger than a small `max_configs` (e.g. a side sweep
    /// charging one unit per live assignment) could be refused forever and
    /// a resume loop would spin without progress.
    pub fn grant(&self, unit: u64, max_units: u64) -> u64 {
        if self.core.trivial {
            return max_units;
        }
        if max_units == 0 || self.interrupted() {
            return 0;
        }
        if !self.core.limited {
            return max_units;
        }
        debug_assert!(unit > 0);
        let got = self.core.take_upto(max_units.saturating_mul(unit));
        if got == 0 {
            0
        } else {
            (got / unit).max(1)
        }
    }

    /// Configurations debited from this sentinel so far. For a parent with
    /// forked children this includes shares handed to the children; a
    /// child's [`release`](Self::release) returns its unspent part, so after
    /// every subtree finishes the root's `used()` equals the configurations
    /// actually charged.
    pub fn used(&self) -> u64 {
        if !self.core.limited {
            return 0;
        }
        self.core.used.load(Ordering::Relaxed)
    }

    /// Forks a child sentinel holding `share` configurations debited from
    /// this sentinel's allowance up front (clamped to what remains). The
    /// child polls its own atomics — no contention with siblings on the hot
    /// path — and pulls chunked refills from this sentinel only when its
    /// share runs dry, so allowance released by finished siblings flows to
    /// the subtrees still running. When no configuration allowance is
    /// tracked the child shares this sentinel's state (zero overhead).
    pub fn child(&self, share: u64) -> BudgetSentinel {
        if !self.core.limited {
            return BudgetSentinel {
                core: Arc::clone(&self.core),
            };
        }
        let granted = self.core.take_upto(share);
        BudgetSentinel {
            core: Arc::new(Core {
                deadline: self.core.deadline,
                cancel: self.core.cancel.clone(),
                trivial: false,
                limited: true,
                limit: AtomicU64::new(granted),
                used: AtomicU64::new(0),
                parent: Some(Arc::clone(&self.core)),
            }),
        }
    }

    /// Returns this child's unspent allowance to its parent and pins the
    /// child's limit to what it used, so the rebalanced configurations can
    /// only be granted once. Call after the subtree served by this sentinel
    /// has finished (no concurrent users); a no-op for the root and for
    /// untracked sentinels.
    pub fn release(&self) {
        if !self.core.limited {
            return;
        }
        let Some(parent) = &self.core.parent else {
            return;
        };
        let used = self.core.used.load(Ordering::Relaxed);
        let limit = self.core.limit.load(Ordering::Relaxed);
        let unspent = limit.saturating_sub(used);
        if unspent > 0 {
            self.core.limit.store(used, Ordering::Relaxed);
            parent.used.fetch_sub(unspent, Ordering::Relaxed);
        }
    }

    /// Current spendable configurations (`u64::MAX`-ish when untracked);
    /// meaningful at fork points where the subtree is quiescent.
    pub fn remaining(&self) -> u64 {
        if !self.core.limited {
            return u64::MAX;
        }
        self.core.avail()
    }

    /// Wall-clock time left until this sentinel's deadline, saturating at
    /// zero once the deadline has passed; `None` when the run has no time
    /// limit. Lets a leaf hand its remaining lease to a nested engine (the
    /// hybrid planner's Monte-Carlo leaves) as that engine's own time limit.
    pub fn time_left(&self) -> Option<Duration> {
        self.core
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// True when a configuration allowance is tracked at all. Distinguishes
    /// an untracked sentinel from a tracked one whose limit merely happens
    /// to be enormous — [`remaining`](Self::remaining) alone cannot tell
    /// `max_configs: Some(u64::MAX)` apart from `None`, and fork points must
    /// only apportion shares when shares are actually debited.
    pub fn tracks_configs(&self) -> bool {
        self.core.limited
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_grants() {
        let s = BudgetSentinel::unlimited();
        assert_eq!(s.grant(1, 1 << 40), 1 << 40);
        assert!(!s.interrupted());
    }

    #[test]
    fn max_configs_is_a_shared_allowance() {
        let b = Budget {
            max_configs: Some(100),
            ..Default::default()
        };
        let s = b.start();
        assert_eq!(s.grant(1, 64), 64);
        assert_eq!(s.grant(1, 64), 36, "partial grant up to the allowance");
        assert_eq!(s.grant(1, 64), 0, "exhausted");
    }

    #[test]
    fn grants_are_whole_batches() {
        let b = Budget {
            max_configs: Some(10),
            ..Default::default()
        };
        let s = b.start();
        // unit 3: only 3 whole batches (9 configs) fit in 10
        assert_eq!(s.grant(3, 5), 3);
        assert_eq!(s.grant(3, 5), 0);
    }

    #[test]
    fn tiny_allowance_still_grants_one_batch() {
        let b = Budget {
            max_configs: Some(3),
            ..Default::default()
        };
        let s = b.start();
        assert_eq!(
            s.grant(4, 8),
            1,
            "a unit larger than the allowance must still make progress"
        );
        assert_eq!(s.grant(4, 8), 0, "the overshooting batch exhausts it");
    }

    #[test]
    fn cancel_token_trips_once_and_stays() {
        let t = CancelToken::new();
        let b = Budget {
            cancel: Some(t.clone()),
            ..Default::default()
        };
        let s = b.start();
        assert!(!s.interrupted());
        assert_eq!(s.grant(1, 8), 8);
        t.trip();
        assert!(s.interrupted());
        assert_eq!(s.grant(1, 8), 0);
        assert!(t.is_tripped());
    }

    #[test]
    fn deadline_in_the_past_stops_immediately() {
        let b = Budget {
            time_limit: Some(Duration::from_secs(0)),
            ..Default::default()
        };
        let s = b.start();
        assert!(s.interrupted());
        assert_eq!(s.grant(1, 8), 0);
    }

    #[test]
    fn children_hold_disjoint_shares() {
        let b = Budget {
            max_configs: Some(100),
            ..Default::default()
        };
        let root = b.start();
        let left = root.child(60);
        let right = root.child(40);
        assert_eq!(root.remaining(), 0, "shares debit the parent up front");
        assert_eq!(left.grant(1, 1000), 60, "left is capped at its share");
        assert_eq!(right.grant(1, 1000), 40);
        assert_eq!(left.grant(1, 8), 0);
        assert_eq!(right.grant(1, 8), 0);
    }

    #[test]
    fn release_rebalances_to_the_sibling_still_running() {
        let b = Budget {
            max_configs: Some(100),
            ..Default::default()
        };
        let root = b.start();
        let left = root.child(60);
        let right = root.child(40);
        assert_eq!(left.grant(1, 10), 10, "left spends 10 of its 60");
        left.release();
        assert_eq!(root.remaining(), 50, "unspent share flows back");
        // right's own 40 plus a refill pulled from the released 50
        assert_eq!(right.grant(1, 90), 90);
        assert_eq!(root.used(), 100);
        assert_eq!(right.grant(1, 8), 0, "everything is spent");
    }

    #[test]
    fn a_zero_share_child_still_refills_from_its_parent() {
        let b = Budget {
            max_configs: Some(7),
            ..Default::default()
        };
        let root = b.start();
        let child = root.child(0);
        assert_eq!(child.grant(1, 5), 5, "refill pulls from the parent");
        assert_eq!(child.grant(1, 5), 2);
        assert_eq!(child.grant(1, 5), 0);
    }

    #[test]
    fn untracked_children_share_state_and_honor_cancel() {
        let t = CancelToken::new();
        let b = Budget {
            cancel: Some(t.clone()),
            ..Default::default()
        };
        let root = b.start();
        let child = root.child(1 << 20);
        assert_eq!(child.grant(1, 8), 8, "no config limit: grants pass through");
        t.trip();
        assert!(child.interrupted(), "children see the shared cancel token");
        assert_eq!(child.grant(1, 8), 0);
        child.release(); // no-op, must not panic
    }

    #[test]
    fn grandchildren_refill_through_the_chain() {
        let b = Budget {
            max_configs: Some(64),
            ..Default::default()
        };
        let root = b.start();
        let mid = root.child(16);
        let leaf = mid.child(4);
        assert_eq!(leaf.grant(1, 64), 64, "refills climb mid and root");
        assert_eq!(leaf.grant(1, 1), 0);
        leaf.release();
        mid.release();
        assert_eq!(root.used(), 64);
    }
}
