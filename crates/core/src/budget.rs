//! Work and time budgets for the anytime sweep engine.
//!
//! Every exact path in this crate is exponential, so a slightly-too-large
//! instance either trips a size bound up front or runs unboundedly. A
//! [`Budget`] turns that cliff into graceful degradation: the sweep engine
//! ([`crate::sweep`]) polls the budget between small batches of
//! configurations and, when the wall-clock deadline passes, the
//! configuration allowance runs out, or the cooperative [`CancelToken`] is
//! tripped (e.g. from a Ctrl-C handler), it stops at a clean cursor and
//! reports a rigorous partial result instead of an answer-or-nothing.
//!
//! The budget is *shared* across everything one calculation does: parallel
//! workers and both sides of a bottleneck decomposition draw configuration
//! grants from the same [`BudgetSentinel`], so "at most N configurations"
//! means N in total, not N per worker.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag, cheap to clone and poll.
///
/// Tripping the token is sticky: once tripped it stays tripped. Polling is a
/// single relaxed atomic load, safe to do from signal handlers and hot loops.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent and async-signal-safe (a single
    /// atomic store).
    pub fn trip(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_tripped(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// The shared atomic behind the token, for wiring into subsystems that
    /// take a bare flag (e.g. [`montecarlo::McBudget`]). Tripping the token
    /// and storing `true` into the flag are the same operation.
    pub fn as_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.0)
    }
}

/// Resource limits for one reliability calculation. The default is
/// unlimited — identical behavior to the pre-anytime engine.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Wall-clock limit, measured from [`Budget::start`].
    pub time_limit: Option<Duration>,
    /// Maximum number of configurations (solver questions) to examine,
    /// summed over all workers and both decomposition sides.
    pub max_configs: Option<u64>,
    /// Cooperative cancellation (e.g. tripped by a Ctrl-C handler).
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// No limits at all.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// True when no limit of any kind is set.
    pub fn is_unlimited(&self) -> bool {
        self.time_limit.is_none() && self.max_configs.is_none() && self.cancel.is_none()
    }

    /// Arms the budget for one run: the deadline clock starts now.
    pub fn start(&self) -> BudgetSentinel {
        BudgetSentinel {
            deadline: self.time_limit.map(|d| Instant::now() + d),
            max_configs: self.max_configs,
            used: AtomicU64::new(0),
            cancel: self.cancel.clone(),
            trivial: self.is_unlimited(),
        }
    }
}

/// The armed form of a [`Budget`], shared by reference across the workers of
/// one calculation.
#[derive(Debug)]
pub struct BudgetSentinel {
    deadline: Option<Instant>,
    max_configs: Option<u64>,
    used: AtomicU64,
    cancel: Option<CancelToken>,
    trivial: bool,
}

impl BudgetSentinel {
    /// An always-granting sentinel (for the non-anytime entry points).
    pub fn unlimited() -> Self {
        Budget::unlimited().start()
    }

    /// True when this sentinel can never interrupt (no limit of any kind was
    /// set). The sweep engine uses this to skip the explored-mass bookkeeping
    /// that only a partial result would need.
    pub fn is_unlimited(&self) -> bool {
        self.trivial
    }

    /// Whether a stop has been requested by time or cancellation (the
    /// configuration allowance is handled by [`BudgetSentinel::grant`]).
    pub fn interrupted(&self) -> bool {
        if self.trivial {
            return false;
        }
        if let Some(c) = &self.cancel {
            if c.is_tripped() {
                return true;
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                return true;
            }
        }
        false
    }

    /// Requests permission to examine up to `max_units` batches of `unit`
    /// configurations each; returns how many whole batches are granted
    /// (possibly 0). Grants are debited from the shared allowance, so the
    /// sum of all grants never exceeds `max_configs` by more than a partial
    /// final batch's rounding. While any allowance remains the grant is at
    /// least one batch, even when `unit` exceeds the leftover — otherwise a
    /// caller whose batch unit is larger than a small `max_configs` (e.g. a
    /// side sweep charging one unit per live assignment) could be refused
    /// forever and a resume loop would spin without progress.
    pub fn grant(&self, unit: u64, max_units: u64) -> u64 {
        if self.trivial {
            return max_units;
        }
        if max_units == 0 || self.interrupted() {
            return 0;
        }
        let Some(max) = self.max_configs else {
            return max_units;
        };
        debug_assert!(unit > 0);
        let want = max_units.saturating_mul(unit);
        let prev = self.used.fetch_add(want, Ordering::Relaxed);
        if prev >= max {
            return 0;
        }
        let avail = max - prev;
        if avail >= want {
            max_units
        } else {
            // partial grant: hand back whole batches only, but never refuse
            // outright while allowance remained (liveness)
            (avail / unit).max(1)
        }
    }

    /// Configurations charged so far (may slightly exceed `max_configs`
    /// after the final, refused request).
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_grants() {
        let s = BudgetSentinel::unlimited();
        assert_eq!(s.grant(1, 1 << 40), 1 << 40);
        assert!(!s.interrupted());
    }

    #[test]
    fn max_configs_is_a_shared_allowance() {
        let b = Budget {
            max_configs: Some(100),
            ..Default::default()
        };
        let s = b.start();
        assert_eq!(s.grant(1, 64), 64);
        assert_eq!(s.grant(1, 64), 36, "partial grant up to the allowance");
        assert_eq!(s.grant(1, 64), 0, "exhausted");
    }

    #[test]
    fn grants_are_whole_batches() {
        let b = Budget {
            max_configs: Some(10),
            ..Default::default()
        };
        let s = b.start();
        // unit 3: only 3 whole batches (9 configs) fit in 10
        assert_eq!(s.grant(3, 5), 3);
        assert_eq!(s.grant(3, 5), 0);
    }

    #[test]
    fn tiny_allowance_still_grants_one_batch() {
        let b = Budget {
            max_configs: Some(3),
            ..Default::default()
        };
        let s = b.start();
        assert_eq!(
            s.grant(4, 8),
            1,
            "a unit larger than the allowance must still make progress"
        );
        assert_eq!(s.grant(4, 8), 0, "the overshooting batch exhausts it");
    }

    #[test]
    fn cancel_token_trips_once_and_stays() {
        let t = CancelToken::new();
        let b = Budget {
            cancel: Some(t.clone()),
            ..Default::default()
        };
        let s = b.start();
        assert!(!s.interrupted());
        assert_eq!(s.grant(1, 8), 8);
        t.trip();
        assert!(s.interrupted());
        assert_eq!(s.grant(1, 8), 0);
        assert!(t.is_tripped());
    }

    #[test]
    fn deadline_in_the_past_stops_immediately() {
        let b = Budget {
            time_limit: Some(Duration::from_secs(0)),
            ..Default::default()
        };
        let s = b.start();
        assert!(s.interrupted());
        assert_eq!(s.grant(1, 8), 0);
    }
}
