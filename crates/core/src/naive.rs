//! The naive baseline: enumerate all `2^|E|` failure configurations (Fig. 1).
//!
//! For each configuration of available links `E' ⊆ E`, run a max-flow on the
//! induced subgraph; if it admits the demand, add
//! `Π_{e ∈ E'} (1 − p(e)) · Π_{e ∉ E'} p(e)` to the reliability.
//!
//! The enumeration itself is delegated to the shared sweep engine
//! ([`crate::sweep`]): Gray-code order with O(1) incremental masks and
//! split-product weights, optional rayon parallelism, and optional
//! monotonicity-certificate caching — all exact. Links with `p(e) = 0` never
//! fail, so they are pinned alive instead of enumerated
//! (`factor_perfect_links`).

use exactmath::BigRational;
use netgraph::{EdgeMask, GraphError, Network, StateExpansion};

use crate::budget::BudgetSentinel;
use crate::certcache::SweepStats;
use crate::checkpoint::{NaiveCheckpoint, SweepCursor};
use crate::demand::FlowDemand;
use crate::error::ReliabilityError;
use crate::options::CalcOptions;
use crate::oracle::DemandOracle;
use crate::preprocess::relevance_reduce;
use crate::sweep::{
    sweep_sum, sweep_sum_budgeted, sweep_sum_mixed, sweep_sum_mixed_budgeted, CompensatedAcc,
    MixedGeometry, PartialSum, PlainAcc, SweepAccumulator, SweepConfig, SweepGeometry,
};
use crate::weight::{digit_weights, digit_weights_exact, edge_weights_exact, EdgeWeights, Weight};

/// Splits edge indices into (fallible, pinned-alive) per the options.
fn enumeration_split(net: &Network, opts: &CalcOptions) -> (Vec<usize>, u64) {
    let mut fallible = Vec::new();
    let mut pinned = 0u64;
    for (i, e) in net.edges().iter().enumerate() {
        if opts.factor_perfect_links && e.fail_prob == 0.0 {
            pinned |= 1 << i;
        } else {
            fallible.push(i);
        }
    }
    (fallible, pinned)
}

/// Validates the demand and the enumeration bounds; returns the
/// (fallible, pinned) split so callers enumerate exactly what was checked.
fn check_bounds(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<(Vec<usize>, u64), ReliabilityError> {
    demand.validate(net)?;
    if net.edge_count() > EdgeMask::MAX_EDGES {
        return Err(ReliabilityError::EdgeMaskOverflow {
            count: net.edge_count(),
            max: EdgeMask::MAX_EDGES,
        });
    }
    let (fallible, pinned) = enumeration_split(net, opts);
    if fallible.len() > opts.max_enum_edges {
        return Err(ReliabilityError::TooManyEdges {
            count: fallible.len(),
            max: opts.max_enum_edges,
        });
    }
    Ok((fallible, pinned))
}

/// Naive reliability in `f64` with compensated summation.
///
/// Links on no s→t path are deleted first (exact for every demand — see
/// [`crate::preprocess`]), so only the relevant links enter the `2^|E|`
/// exponent and the `max_enum_edges` bound.
pub fn reliability_naive(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<f64, ReliabilityError> {
    reliability_naive_with_stats(net, demand, opts).map(|(r, _)| r)
}

/// [`reliability_naive`] plus the sweep-engine counters (configurations
/// tested, solver calls, certificate hits).
pub fn reliability_naive_with_stats(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<(f64, SweepStats), ReliabilityError> {
    demand.validate(net)?;
    let reduced = relevance_reduce(net, demand);
    if reduced.removed > 0 {
        return reliability_naive_with_stats(&reduced.net, reduced.demand, opts);
    }
    if net.has_multistate() {
        let sentinel = BudgetSentinel::unlimited();
        return match reliability_naive_mixed_on(net, demand, opts, &sentinel, None)? {
            NaiveOutcome::Complete { reliability, stats } => Ok((reliability, stats)),
            NaiveOutcome::Partial { .. } => unreachable!("unlimited sweeps always finish"),
        };
    }
    let (fallible, pinned) = check_bounds(net, demand, opts)?;
    let mut oracle = DemandOracle::new(net, demand.source, demand.sink, demand.demand, opts.solver);
    // quick exits
    if demand.demand == 0 {
        return Ok((1.0, SweepStats::default()));
    }
    if oracle.max_flow_all_alive() < demand.demand {
        return Ok((0.0, SweepStats::default()));
    }
    let weights: Vec<(f64, f64)> = fallible
        .iter()
        .map(|&i| {
            let p = net.edges()[i].fail_prob;
            (1.0 - p, p)
        })
        .collect();
    let geom = SweepGeometry {
        fallible: &fallible,
        pinned,
        edge_count: net.edge_count(),
    };
    let (r, stats) = sweep_sum::<f64, CompensatedAcc, _>(
        &oracle,
        &geom,
        &weights,
        &SweepConfig::from_opts(opts),
    );
    Ok((r, stats))
}

/// Outcome of a budget-aware naive enumeration.
#[derive(Clone, Debug)]
pub enum NaiveOutcome {
    /// The sweep examined every configuration.
    Complete {
        /// The exact reliability (up to compensated `f64` rounding).
        reliability: f64,
        /// Sweep-engine counters.
        stats: SweepStats,
    },
    /// The budget stopped the sweep; `[r_low, r_high]` is a rigorous
    /// interval around the exact reliability.
    Partial {
        /// Certified lower bound (mass of configurations proven feasible).
        r_low: f64,
        /// Certified upper bound (`r_low` plus all unexplored mass).
        r_high: f64,
        /// Probability mass of the configurations examined so far.
        explored: f64,
        /// Resume state; feed back in (same instance, same
        /// `factor_perfect_links`) to continue the sweep.
        checkpoint: NaiveCheckpoint,
        /// Sweep-engine counters for this slice of work.
        stats: SweepStats,
    },
}

/// Budget-aware naive reliability: runs under `opts.budget` and returns
/// either the exact value or a rigorous `[r_low, r_high]` interval plus a
/// resume checkpoint.
///
/// A serial interrupted run resumed from its checkpoint reproduces the
/// uninterrupted [`reliability_naive`] value bit for bit; a parallel one
/// agrees to accumulation rounding.
pub fn reliability_naive_anytime(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
    resume: Option<&NaiveCheckpoint>,
) -> Result<NaiveOutcome, ReliabilityError> {
    let sentinel = opts.budget.start();
    reliability_naive_anytime_on(net, demand, opts, &sentinel, resume)
}

/// As [`reliability_naive_anytime`], but drawing from an externally owned
/// [`BudgetSentinel`] instead of starting a fresh one from `opts.budget`.
///
/// This is what lets the plan interpreter share a single budget across every
/// leaf sweep of a decomposition tree: each leaf consumes grants from the same
/// sentinel, so time/config limits apply to the whole recursive calculation
/// rather than resetting per leaf.
pub fn reliability_naive_anytime_on(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
    sentinel: &BudgetSentinel,
    resume: Option<&NaiveCheckpoint>,
) -> Result<NaiveOutcome, ReliabilityError> {
    demand.validate(net)?;
    let reduced = relevance_reduce(net, demand);
    if reduced.removed > 0 {
        // The reduction is deterministic, so checkpoint cursors always refer
        // to the same reduced enumeration on both the interrupted and the
        // resuming run.
        return reliability_naive_anytime_on(&reduced.net, reduced.demand, opts, sentinel, resume);
    }
    if net.has_multistate() {
        return reliability_naive_mixed_on(net, demand, opts, sentinel, resume);
    }
    let (fallible, pinned) = check_bounds(net, demand, opts)?;
    let mut oracle = DemandOracle::new(net, demand.source, demand.sink, demand.demand, opts.solver);
    if demand.demand == 0 {
        return Ok(NaiveOutcome::Complete {
            reliability: 1.0,
            stats: SweepStats::default(),
        });
    }
    if oracle.max_flow_all_alive() < demand.demand {
        return Ok(NaiveOutcome::Complete {
            reliability: 0.0,
            stats: SweepStats::default(),
        });
    }
    let total = 1u64 << fallible.len();
    let resume_partial = match resume {
        Some(ck) => {
            if ck.cursor.total != total {
                return Err(ReliabilityError::CheckpointMismatch {
                    reason: format!(
                        "checkpoint enumerates {} configurations, this instance {}",
                        ck.cursor.total, total
                    ),
                });
            }
            Some(PartialSum {
                feasible: CompensatedAcc::from_state(ck.feasible),
                explored: CompensatedAcc::from_state(ck.explored),
                remaining: ck.cursor.remaining.clone(),
                certs: ck.certs.clone(),
            })
        }
        None => None,
    };
    let weights: Vec<(f64, f64)> = fallible
        .iter()
        .map(|&i| {
            let p = net.edges()[i].fail_prob;
            (1.0 - p, p)
        })
        .collect();
    let geom = SweepGeometry {
        fallible: &fallible,
        pinned,
        edge_count: net.edge_count(),
    };
    let (partial, stats) = sweep_sum_budgeted::<f64, CompensatedAcc, _>(
        &oracle,
        &geom,
        &weights,
        &SweepConfig::from_opts(opts),
        sentinel,
        resume_partial,
    );
    if partial.is_complete() {
        return Ok(NaiveOutcome::Complete {
            reliability: partial.feasible.finish(),
            stats,
        });
    }
    let feasible = partial.feasible.state();
    let explored_state = partial.explored.state();
    let explored = (explored_state.0 + explored_state.1).clamp(0.0, 1.0);
    let r_low = (feasible.0 + feasible.1).clamp(0.0, 1.0);
    let r_high = (r_low + (1.0 - explored).max(0.0)).min(1.0);
    Ok(NaiveOutcome::Partial {
        r_low,
        r_high,
        explored,
        checkpoint: NaiveCheckpoint {
            cursor: SweepCursor {
                total,
                remaining: partial.remaining,
            },
            feasible,
            explored: explored_state,
            certs: partial.certs,
        },
        stats,
    })
}

/// Tranche-expands a multi-state network and builds the mixed-radix sweep
/// geometry plus a demand oracle over the expanded binary network.
fn mixed_setup(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<(StateExpansion, MixedGeometry, DemandOracle), ReliabilityError> {
    let x = StateExpansion::build(net).map_err(|e| match e {
        GraphError::ExpansionTooLarge { arcs, max } => {
            ReliabilityError::EdgeMaskOverflow { count: arcs, max }
        }
        other => other.into(),
    })?;
    if x.digits.len() > opts.max_enum_edges {
        return Err(ReliabilityError::TooManyEdges {
            count: x.digits.len(),
            max: opts.max_enum_edges,
        });
    }
    let geom = MixedGeometry::from_expansion(&x)
        .unwrap_or_else(|| unreachable!("≤64 expanded arcs bound Π radices far below 2^63"));
    let oracle = DemandOracle::new(
        &x.net,
        demand.source,
        demand.sink,
        demand.demand,
        opts.solver,
    );
    Ok((x, geom, oracle))
}

/// The multi-state body of [`reliability_naive_anytime_on`]: enumerates the
/// mixed-radix state space of the tranche expansion with the reflected-Gray
/// sweep engine. Same anytime contract as the binary path — checkpoint
/// cursors index mixed-radix configuration ordinals, and `cursor.total` is
/// `Π radices` instead of `2^|fallible|`.
fn reliability_naive_mixed_on(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
    sentinel: &BudgetSentinel,
    resume: Option<&NaiveCheckpoint>,
) -> Result<NaiveOutcome, ReliabilityError> {
    let (x, geom, mut oracle) = mixed_setup(net, demand, opts)?;
    if demand.demand == 0 {
        return Ok(NaiveOutcome::Complete {
            reliability: 1.0,
            stats: SweepStats::default(),
        });
    }
    if oracle.max_flow_all_alive() < demand.demand {
        return Ok(NaiveOutcome::Complete {
            reliability: 0.0,
            stats: SweepStats::default(),
        });
    }
    let total = geom.total();
    let resume_partial = match resume {
        Some(ck) => {
            if ck.cursor.total != total {
                return Err(ReliabilityError::CheckpointMismatch {
                    reason: format!(
                        "checkpoint enumerates {} configurations, this instance {}",
                        ck.cursor.total, total
                    ),
                });
            }
            Some(PartialSum {
                feasible: CompensatedAcc::from_state(ck.feasible),
                explored: CompensatedAcc::from_state(ck.explored),
                remaining: ck.cursor.remaining.clone(),
                certs: ck.certs.clone(),
            })
        }
        None => None,
    };
    let weights = digit_weights(&x);
    let (partial, stats) = sweep_sum_mixed_budgeted::<f64, CompensatedAcc, _>(
        &oracle,
        &geom,
        &weights,
        &SweepConfig::from_opts(opts),
        sentinel,
        resume_partial,
    );
    if partial.is_complete() {
        return Ok(NaiveOutcome::Complete {
            reliability: partial.feasible.finish(),
            stats,
        });
    }
    let feasible = partial.feasible.state();
    let explored_state = partial.explored.state();
    let explored = (explored_state.0 + explored_state.1).clamp(0.0, 1.0);
    let r_low = (feasible.0 + feasible.1).clamp(0.0, 1.0);
    let r_high = (r_low + (1.0 - explored).max(0.0)).min(1.0);
    Ok(NaiveOutcome::Partial {
        r_low,
        r_high,
        explored,
        checkpoint: NaiveCheckpoint {
            cursor: SweepCursor {
                total,
                remaining: partial.remaining,
            },
            feasible,
            explored: explored_state,
            certs: partial.certs,
        },
        stats,
    })
}

/// Naive reliability with exact rational arithmetic (the validation oracle
/// for every other algorithm). Probabilities are taken from the network's
/// `f64` values via exact dyadic conversion.
pub fn reliability_naive_exact(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<BigRational, ReliabilityError> {
    if net.has_multistate() {
        demand.validate(net)?;
        let reduced = relevance_reduce(net, demand);
        if reduced.removed > 0 {
            return reliability_naive_exact(&reduced.net, reduced.demand, opts);
        }
        let (x, geom, mut oracle) = mixed_setup(net, demand, opts)?;
        if demand.demand == 0 {
            return Ok(BigRational::one());
        }
        if oracle.max_flow_all_alive() < demand.demand {
            return Ok(BigRational::zero());
        }
        let weights = digit_weights_exact(&x);
        let cfg = SweepConfig {
            parallel: false,
            ..SweepConfig::from_opts(opts)
        };
        let (r, _) = sweep_sum_mixed::<BigRational, PlainAcc<BigRational>, _>(
            &oracle, &geom, &weights, &cfg,
        );
        return Ok(r);
    }
    reliability_naive_weighted(net, demand, &edge_weights_exact(net), opts)
}

/// Naive reliability over arbitrary weights (shared generic implementation).
///
/// Runs the sweep engine serially regardless of `opts.parallel` so the
/// deterministic exact path stays deterministic; certificate caching is still
/// honored (a cache hit is the verdict the solver would return, and skipping
/// a solve never perturbs exact arithmetic).
pub fn reliability_naive_weighted<W: Weight>(
    net: &Network,
    demand: FlowDemand,
    weights: &EdgeWeights<W>,
    opts: &CalcOptions,
) -> Result<W, ReliabilityError> {
    demand.validate(net)?;
    if weights.len() != net.edge_count() {
        return Err(ReliabilityError::ArityMismatch {
            what: "edge weights",
            got: weights.len(),
            expected: net.edge_count(),
        });
    }
    let reduced = relevance_reduce(net, demand);
    if reduced.removed > 0 {
        let w: EdgeWeights<W> = reduced
            .edge_origin
            .iter()
            .map(|&i| weights[i].clone())
            .collect();
        return reliability_naive_weighted(&reduced.net, reduced.demand, &w, opts);
    }
    if net.has_multistate() {
        // per-edge (alive, failed) pairs cannot express a k-state spectrum
        return Err(ReliabilityError::MultiState {
            operation: "custom per-edge weighting",
        });
    }
    // Perfect-link factoring is keyed on the f64 probabilities; for generic
    // weights enumerate everything to stay self-evidently exact.
    let opts_all = CalcOptions {
        factor_perfect_links: false,
        ..opts.clone()
    };
    let (fallible, pinned) = check_bounds(net, demand, &opts_all)?;
    if demand.demand == 0 {
        return Ok(W::one());
    }
    let mut oracle = DemandOracle::new(net, demand.source, demand.sink, demand.demand, opts.solver);
    if oracle.max_flow_all_alive() < demand.demand {
        return Ok(W::zero());
    }
    let compact: Vec<(W, W)> = fallible
        .iter()
        .map(|&i| (weights[i].0.clone(), weights[i].1.clone()))
        .collect();
    let geom = SweepGeometry {
        fallible: &fallible,
        pinned,
        edge_count: net.edge_count(),
    };
    let cfg = SweepConfig {
        parallel: false,
        ..SweepConfig::from_opts(opts)
    };
    let (r, _) = sweep_sum::<W, PlainAcc<W>, _>(&oracle, &geom, &compact, &cfg);
    Ok(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder, NodeId};

    /// Two parallel links, p = 0.1 each, demand 1:
    /// R = 1 - 0.1 * 0.1 = 0.99.
    fn two_parallel() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.build()
    }

    #[test]
    fn parallel_links_demand_one() {
        let net = two_parallel();
        let r = reliability_naive(
            &net,
            FlowDemand::new(NodeId(0), NodeId(1), 1),
            &CalcOptions::default(),
        )
        .unwrap();
        assert!((r - 0.99).abs() < 1e-12);
    }

    #[test]
    fn parallel_links_demand_two() {
        let net = two_parallel();
        let r = reliability_naive(
            &net,
            FlowDemand::new(NodeId(0), NodeId(1), 2),
            &CalcOptions::default(),
        )
        .unwrap();
        assert!((r - 0.81).abs() < 1e-12, "both links must survive: 0.9^2");
    }

    #[test]
    fn series_links_multiply() {
        // s -e0- a -e1- t, p = 0.2, 0.3 => R = 0.8 * 0.7
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.2).unwrap();
        b.add_edge(n[1], n[2], 1, 0.3).unwrap();
        let net = b.build();
        let r = reliability_naive(
            &net,
            FlowDemand::new(NodeId(0), NodeId(2), 1),
            &CalcOptions::default(),
        )
        .unwrap();
        assert!((r - 0.8 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn insufficient_capacity_is_zero() {
        let net = two_parallel();
        let r = reliability_naive(
            &net,
            FlowDemand::new(NodeId(0), NodeId(1), 3),
            &CalcOptions::default(),
        )
        .unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn zero_demand_is_one() {
        let net = two_parallel();
        let r = reliability_naive(
            &net,
            FlowDemand::new(NodeId(0), NodeId(1), 0),
            &CalcOptions::default(),
        )
        .unwrap();
        assert_eq!(r, 1.0);
    }

    #[test]
    fn perfect_link_factoring_matches_full_enumeration() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 2, 0.0).unwrap(); // perfect
        b.add_edge(n[1], n[2], 1, 0.25).unwrap();
        b.add_edge(n[1], n[2], 1, 0.5).unwrap();
        let net = b.build();
        let d = FlowDemand::new(NodeId(0), NodeId(2), 1);
        let with = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let without = reliability_naive(
            &net,
            d,
            &CalcOptions {
                factor_perfect_links: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((with - without).abs() < 1e-12);
        assert!((with - (1.0 - 0.25 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn exact_matches_float() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 2, 0.125).unwrap();
        b.add_edge(n[0], n[2], 1, 0.25).unwrap();
        b.add_edge(n[1], n[3], 1, 0.5).unwrap();
        b.add_edge(n[2], n[3], 2, 0.0625).unwrap();
        b.add_edge(n[1], n[2], 1, 0.375).unwrap();
        let net = b.build();
        let d = FlowDemand::new(NodeId(0), NodeId(3), 2);
        let float = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let exact = reliability_naive_exact(&net, d, &CalcOptions::default()).unwrap();
        assert!((float - exact.to_f64()).abs() < 1e-12);
    }

    #[test]
    fn too_many_edges_is_rejected() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        for _ in 0..12 {
            b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        }
        let net = b.build();
        let opts = CalcOptions {
            max_enum_edges: 10,
            ..Default::default()
        };
        let err =
            reliability_naive(&net, FlowDemand::new(NodeId(0), NodeId(1), 1), &opts).unwrap_err();
        assert!(matches!(
            err,
            ReliabilityError::TooManyEdges { count: 12, max: 10 }
        ));
    }

    #[test]
    fn parallel_matches_serial() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(5);
        let probs = [
            0.1, 0.2, 0.3, 0.15, 0.25, 0.05, 0.35, 0.4, 0.12, 0.22, 0.18, 0.28,
        ];
        let ends = [
            (0, 1),
            (0, 2),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (3, 4),
            (0, 3),
            (1, 4),
            (0, 4),
            (1, 2),
            (3, 4),
        ];
        for (&p, &(u, v)) in probs.iter().zip(&ends) {
            b.add_edge(n[u], n[v], 1, p).unwrap();
        }
        let net = b.build();
        let d = FlowDemand::new(NodeId(0), NodeId(4), 2);
        let serial = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let par = reliability_naive(&net, d, &CalcOptions::parallel()).unwrap();
        assert!((serial - par).abs() < 1e-12);
    }

    /// s→t: 3-state link {0: 0.2, 1: 0.3, 2: 0.5} ∥ binary (cap 1, p 0.4).
    fn multistate_net() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.2), (1, 0.3), (2, 0.5)])
            .unwrap();
        b.add_edge(n[0], n[1], 1, 0.4).unwrap();
        b.build()
    }

    #[test]
    fn multistate_naive_matches_hand_computation() {
        let net = multistate_net();
        let d = FlowDemand::new(NodeId(0), NodeId(1), 2);
        let r = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        // P(c1 + c2 ≥ 2) = P(c1=2) + P(c1=1)·P(c2 up)
        let expected = 0.5 + 0.3 * 0.6;
        assert!((r - expected).abs() < 1e-12, "{r} vs {expected}");
        let exact = reliability_naive_exact(&net, d, &CalcOptions::default()).unwrap();
        assert!((r - exact.to_f64()).abs() < 1e-12);
    }

    #[test]
    fn two_state_spectrum_is_the_legacy_binary_path_bit_for_bit() {
        let mut b1 = NetworkBuilder::new(GraphKind::Directed);
        let n = b1.add_nodes(2);
        b1.add_spectrum_edge(n[0], n[1], &[(0, 0.25), (2, 0.75)])
            .unwrap();
        b1.add_edge(n[0], n[1], 1, 0.5).unwrap();
        let spec = b1.build();
        assert!(
            !spec.has_multistate(),
            "2-state {{0, c}} collapses to binary"
        );
        let mut b2 = NetworkBuilder::new(GraphKind::Directed);
        let n = b2.add_nodes(2);
        b2.add_edge(n[0], n[1], 2, 0.25).unwrap();
        b2.add_edge(n[0], n[1], 1, 0.5).unwrap();
        let plain = b2.build();
        let d = FlowDemand::new(NodeId(0), NodeId(1), 2);
        let r_spec = reliability_naive(&spec, d, &CalcOptions::default()).unwrap();
        let r_plain = reliability_naive(&plain, d, &CalcOptions::default()).unwrap();
        assert_eq!(r_spec.to_bits(), r_plain.to_bits());
    }

    #[test]
    fn multistate_anytime_resumes_bit_identical() {
        use crate::budget::Budget;
        let net = multistate_net();
        let d = FlowDemand::new(NodeId(0), NodeId(1), 1);
        let full = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let mut ck: Option<NaiveCheckpoint> = None;
        let mut rounds = 0;
        loop {
            let opts = CalcOptions {
                budget: Budget {
                    max_configs: Some(2),
                    ..Default::default()
                },
                ..Default::default()
            };
            match reliability_naive_anytime(&net, d, &opts, ck.as_ref()).unwrap() {
                NaiveOutcome::Complete { reliability, .. } => {
                    assert_eq!(reliability.to_bits(), full.to_bits());
                    break;
                }
                NaiveOutcome::Partial {
                    r_low,
                    r_high,
                    checkpoint,
                    ..
                } => {
                    assert!(r_low <= full + 1e-12 && full <= r_high + 1e-12);
                    assert_eq!(checkpoint.cursor.total, 6, "Π radices = 3 · 2");
                    ck = Some(checkpoint);
                }
            }
            rounds += 1;
            assert!(rounds < 20, "must converge");
        }
        assert!(rounds >= 2);
    }

    #[test]
    fn multistate_rejects_custom_weights() {
        let net = multistate_net();
        let d = FlowDemand::new(NodeId(0), NodeId(1), 1);
        let w: EdgeWeights<f64> = vec![(0.8, 0.2), (0.6, 0.4)];
        let err = reliability_naive_weighted(&net, d, &w, &CalcOptions::default()).unwrap_err();
        assert!(matches!(err, ReliabilityError::MultiState { .. }));
    }

    #[test]
    fn always_down_link_behaves_as_deleted_end_to_end() {
        let mut b1 = NetworkBuilder::new(GraphKind::Directed);
        let n = b1.add_nodes(3);
        b1.add_edge(n[0], n[1], 1, 0.2).unwrap();
        b1.add_edge(n[1], n[2], 1, 0.3).unwrap();
        b1.add_edge(n[0], n[2], 4, 1.0).unwrap(); // always down
        let with = b1.build();
        let mut b2 = NetworkBuilder::new(GraphKind::Directed);
        let n = b2.add_nodes(3);
        b2.add_edge(n[0], n[1], 1, 0.2).unwrap();
        b2.add_edge(n[1], n[2], 1, 0.3).unwrap();
        let without = b2.build();
        let d = FlowDemand::new(NodeId(0), NodeId(2), 1);
        let r_with = reliability_naive(&with, d, &CalcOptions::default()).unwrap();
        let r_without = reliability_naive(&without, d, &CalcOptions::default()).unwrap();
        assert_eq!(r_with.to_bits(), r_without.to_bits());
        assert!((r_with - 0.8 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn certificate_cache_preserves_the_value_and_reports_hits() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[2], 1, 0.2).unwrap();
        b.add_edge(n[1], n[3], 1, 0.3).unwrap();
        b.add_edge(n[2], n[3], 1, 0.4).unwrap();
        b.add_edge(n[1], n[2], 1, 0.25).unwrap();
        let net = b.build();
        let d = FlowDemand::new(NodeId(0), NodeId(3), 1);
        let plain = CalcOptions {
            certificate_cache: false,
            ..Default::default()
        };
        let cached = CalcOptions::default();
        let (r0, s0) = reliability_naive_with_stats(&net, d, &plain).unwrap();
        let (r1, s1) = reliability_naive_with_stats(&net, d, &cached).unwrap();
        assert_eq!(r0, r1, "serial cert-cached sweep must be bit-identical");
        assert_eq!(s0.solver_calls_avoided(), 0);
        assert!(s1.solver_calls_avoided() > 0);
        assert_eq!(s1.configs, s0.configs);
        assert_eq!(s1.solver_calls + s1.solver_calls_avoided(), s1.configs);
    }
}
