//! The naive baseline: enumerate all `2^|E|` failure configurations (Fig. 1).
//!
//! For each configuration of available links `E' ⊆ E`, run a max-flow on the
//! induced subgraph; if it admits the demand, add
//! `Π_{e ∈ E'} (1 − p(e)) · Π_{e ∉ E'} p(e)` to the reliability.
//!
//! Two exact refinements (both optional, both ablated in the benches):
//! * links with `p(e) = 0` never fail, so they are pinned alive instead of
//!   enumerated (`factor_perfect_links`);
//! * configurations are swept in parallel with rayon (`parallel`), each
//!   worker owning a clone of the flow oracle and a compensated partial sum.

use exactmath::{BigRational, NeumaierSum};
use netgraph::{EdgeMask, Network};
use rayon::prelude::*;

use crate::demand::FlowDemand;
use crate::error::ReliabilityError;
use crate::options::CalcOptions;
use crate::oracle::DemandOracle;
use crate::preprocess::relevance_reduce;
use crate::weight::{edge_weights_exact, EdgeWeights, Weight};

/// Splits edge indices into (fallible, pinned-alive) per the options.
fn enumeration_split(net: &Network, opts: &CalcOptions) -> (Vec<usize>, u64) {
    let mut fallible = Vec::new();
    let mut pinned = 0u64;
    for (i, e) in net.edges().iter().enumerate() {
        if opts.factor_perfect_links && e.fail_prob == 0.0 {
            pinned |= 1 << i;
        } else {
            fallible.push(i);
        }
    }
    (fallible, pinned)
}

/// Expands a compact index over fallible edges into a full edge mask.
#[inline]
fn expand_mask(compact: u64, fallible: &[usize], pinned: u64, edge_count: usize) -> EdgeMask {
    let mut bits = pinned;
    let mut rest = compact;
    while rest != 0 {
        let b = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        bits |= 1 << fallible[b];
    }
    EdgeMask::from_bits(bits, edge_count)
}

fn check_bounds(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<Vec<usize>, ReliabilityError> {
    demand.validate(net)?;
    assert!(
        net.edge_count() <= EdgeMask::MAX_EDGES,
        "naive enumeration requires at most {} edges",
        EdgeMask::MAX_EDGES
    );
    let (fallible, _) = enumeration_split(net, opts);
    if fallible.len() > opts.max_enum_edges {
        return Err(ReliabilityError::TooManyEdges {
            count: fallible.len(),
            max: opts.max_enum_edges,
        });
    }
    Ok(fallible)
}

/// Naive reliability in `f64` with compensated summation.
///
/// Links on no s→t path are deleted first (exact for every demand — see
/// [`crate::preprocess`]), so only the relevant links enter the `2^|E|`
/// exponent and the `max_enum_edges` bound.
pub fn reliability_naive(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<f64, ReliabilityError> {
    demand.validate(net)?;
    let reduced = relevance_reduce(net, demand);
    if reduced.removed > 0 {
        return reliability_naive(&reduced.net, reduced.demand, opts);
    }
    let fallible = check_bounds(net, demand, opts)?;
    let (_, pinned) = enumeration_split(net, opts);
    let m = fallible.len();
    let edge_count = net.edge_count();
    let mut oracle =
        DemandOracle::new(net, demand.source, demand.sink, demand.demand, opts.solver);
    // quick exits
    if demand.demand == 0 {
        return Ok(1.0);
    }
    if oracle.max_flow_all_alive() < demand.demand {
        return Ok(0.0);
    }
    let weights: Vec<(f64, f64)> =
        net.edges().iter().map(|e| (1.0 - e.fail_prob, e.fail_prob)).collect();
    let prob_of = |mask: EdgeMask, fallible: &[usize]| -> f64 {
        let mut p = 1.0;
        for &i in fallible {
            p *= if mask.alive(i) { weights[i].0 } else { weights[i].1 };
        }
        p
    };

    let total_configs: u64 = 1u64 << m;
    if opts.parallel && m >= 10 {
        let chunks = (rayon::current_num_threads() * 8).max(1) as u64;
        let chunk_len = total_configs.div_ceil(chunks);
        let sum = (0..chunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * chunk_len;
                let hi = ((c + 1) * chunk_len).min(total_configs);
                let mut local = oracle.clone();
                let mut acc = NeumaierSum::new();
                for compact in lo..hi {
                    let mask = expand_mask(compact, &fallible, pinned, edge_count);
                    if local.admits(mask) {
                        acc.add(prob_of(mask, &fallible));
                    }
                }
                acc
            })
            .reduce(NeumaierSum::new, |mut a, b| {
                a.merge(b);
                a
            });
        Ok(sum.total())
    } else {
        let mut acc = NeumaierSum::new();
        for compact in 0..total_configs {
            let mask = expand_mask(compact, &fallible, pinned, edge_count);
            if oracle.admits(mask) {
                acc.add(prob_of(mask, &fallible));
            }
        }
        Ok(acc.total())
    }
}

/// Naive reliability with exact rational arithmetic (the validation oracle
/// for every other algorithm). Probabilities are taken from the network's
/// `f64` values via exact dyadic conversion.
pub fn reliability_naive_exact(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<BigRational, ReliabilityError> {
    reliability_naive_weighted(net, demand, &edge_weights_exact(net), opts)
}

/// Naive reliability over arbitrary weights (shared generic implementation).
pub fn reliability_naive_weighted<W: Weight>(
    net: &Network,
    demand: FlowDemand,
    weights: &EdgeWeights<W>,
    opts: &CalcOptions,
) -> Result<W, ReliabilityError> {
    demand.validate(net)?;
    assert_eq!(weights.len(), net.edge_count(), "one weight pair per link");
    let reduced = relevance_reduce(net, demand);
    if reduced.removed > 0 {
        let w: EdgeWeights<W> =
            reduced.edge_origin.iter().map(|&i| weights[i].clone()).collect();
        return reliability_naive_weighted(&reduced.net, reduced.demand, &w, opts);
    }
    // Perfect-link factoring is keyed on the f64 probabilities; for generic
    // weights enumerate everything to stay self-evidently exact.
    let opts_all = CalcOptions { factor_perfect_links: false, ..*opts };
    let fallible = check_bounds(net, demand, &opts_all)?;
    let m = fallible.len();
    let edge_count = net.edge_count();
    if demand.demand == 0 {
        return Ok(W::one());
    }
    let mut oracle =
        DemandOracle::new(net, demand.source, demand.sink, demand.demand, opts.solver);
    if oracle.max_flow_all_alive() < demand.demand {
        return Ok(W::zero());
    }
    let mut acc = W::zero();
    for compact in 0..(1u64 << m) {
        let mask = expand_mask(compact, &fallible, 0, edge_count);
        if oracle.admits(mask) {
            let mut p = W::one();
            for &i in &fallible {
                p = p.mul(if mask.alive(i) { &weights[i].0 } else { &weights[i].1 });
            }
            acc = acc.add(&p);
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::{GraphKind, NetworkBuilder, NodeId};

    /// Two parallel links, p = 0.1 each, demand 1:
    /// R = 1 - 0.1 * 0.1 = 0.99.
    fn two_parallel() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.build()
    }

    #[test]
    fn parallel_links_demand_one() {
        let net = two_parallel();
        let r = reliability_naive(&net, FlowDemand::new(NodeId(0), NodeId(1), 1), &CalcOptions::default())
            .unwrap();
        assert!((r - 0.99).abs() < 1e-12);
    }

    #[test]
    fn parallel_links_demand_two() {
        let net = two_parallel();
        let r = reliability_naive(&net, FlowDemand::new(NodeId(0), NodeId(1), 2), &CalcOptions::default())
            .unwrap();
        assert!((r - 0.81).abs() < 1e-12, "both links must survive: 0.9^2");
    }

    #[test]
    fn series_links_multiply() {
        // s -e0- a -e1- t, p = 0.2, 0.3 => R = 0.8 * 0.7
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.2).unwrap();
        b.add_edge(n[1], n[2], 1, 0.3).unwrap();
        let net = b.build();
        let r = reliability_naive(&net, FlowDemand::new(NodeId(0), NodeId(2), 1), &CalcOptions::default())
            .unwrap();
        assert!((r - 0.8 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn insufficient_capacity_is_zero() {
        let net = two_parallel();
        let r = reliability_naive(&net, FlowDemand::new(NodeId(0), NodeId(1), 3), &CalcOptions::default())
            .unwrap();
        assert_eq!(r, 0.0);
    }

    #[test]
    fn zero_demand_is_one() {
        let net = two_parallel();
        let r = reliability_naive(&net, FlowDemand::new(NodeId(0), NodeId(1), 0), &CalcOptions::default())
            .unwrap();
        assert_eq!(r, 1.0);
    }

    #[test]
    fn perfect_link_factoring_matches_full_enumeration() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 2, 0.0).unwrap(); // perfect
        b.add_edge(n[1], n[2], 1, 0.25).unwrap();
        b.add_edge(n[1], n[2], 1, 0.5).unwrap();
        let net = b.build();
        let d = FlowDemand::new(NodeId(0), NodeId(2), 1);
        let with = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let without = reliability_naive(
            &net,
            d,
            &CalcOptions { factor_perfect_links: false, ..Default::default() },
        )
        .unwrap();
        assert!((with - without).abs() < 1e-12);
        assert!((with - (1.0 - 0.25 * 0.5)).abs() < 1e-12);
    }

    #[test]
    fn exact_matches_float() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 2, 0.125).unwrap();
        b.add_edge(n[0], n[2], 1, 0.25).unwrap();
        b.add_edge(n[1], n[3], 1, 0.5).unwrap();
        b.add_edge(n[2], n[3], 2, 0.0625).unwrap();
        b.add_edge(n[1], n[2], 1, 0.375).unwrap();
        let net = b.build();
        let d = FlowDemand::new(NodeId(0), NodeId(3), 2);
        let float = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let exact = reliability_naive_exact(&net, d, &CalcOptions::default()).unwrap();
        assert!((float - exact.to_f64()).abs() < 1e-12);
    }

    #[test]
    fn too_many_edges_is_rejected() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        for _ in 0..12 {
            b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        }
        let net = b.build();
        let opts = CalcOptions { max_enum_edges: 10, ..Default::default() };
        let err = reliability_naive(&net, FlowDemand::new(NodeId(0), NodeId(1), 1), &opts)
            .unwrap_err();
        assert!(matches!(err, ReliabilityError::TooManyEdges { count: 12, max: 10 }));
    }

    #[test]
    fn parallel_matches_serial() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(5);
        let probs = [0.1, 0.2, 0.3, 0.15, 0.25, 0.05, 0.35, 0.4, 0.12, 0.22, 0.18, 0.28];
        let ends = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3), (2, 4), (3, 4), (0, 3), (1, 4), (0, 4), (1, 2), (3, 4)];
        for (&p, &(u, v)) in probs.iter().zip(&ends) {
            b.add_edge(n[u], n[v], 1, p).unwrap();
        }
        let net = b.build();
        let d = FlowDemand::new(NodeId(0), NodeId(4), 2);
        let serial = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let par = reliability_naive(&net, d, &CalcOptions::parallel()).unwrap();
        assert!((serial - par).abs() < 1e-12);
    }
}
