//! Node (peer) failures via node splitting.
//!
//! The paper's model — and everything else in this crate — assumes the
//! *links* fail independently. In a P2P system it is really the *peers* that
//! churn: when peer `v` departs, all of its connections vanish together.
//! The classical reduction maps node failures onto the link model exactly:
//! split each fallible node `v` into `v_in → v_out` joined by an internal
//! link that carries `v`'s failure probability (and its relay capacity);
//! redirect every original link `(u, w)` to `(u_out, w_in)`. Then the
//! link-reliability of the transformed network *is* the node-and-link
//! reliability of the original.
//!
//! Terminal conventions: pose the transformed demand from `entry(s)` to
//! `exit(t)`, so the source's and sink's own failure probabilities are
//! counted (pass probability 0 for terminals you model as reliable).
//!
//! Directed networks only — an undirected link has no well-defined traversal
//! direction through a split node (and every overlay in this workspace is
//! directed).

use netgraph::{EdgeId, GraphKind, Network, NetworkBuilder, NodeId};

use crate::error::ReliabilityError;

/// The node-split transform of a network.
#[derive(Clone, Debug)]
pub struct NodeSplit {
    /// The transformed, link-failure-only network.
    pub net: Network,
    /// For original node `v`, the id of its internal link (`None` when the
    /// node was reliable and not split).
    pub internal_edge: Vec<Option<EdgeId>>,
    entry: Vec<NodeId>,
    exit: Vec<NodeId>,
}

impl NodeSplit {
    /// Where flow *enters* original node `v` in the transformed network.
    pub fn entry(&self, v: NodeId) -> NodeId {
        self.entry[v.index()]
    }

    /// Where flow *leaves* original node `v` in the transformed network.
    pub fn exit(&self, v: NodeId) -> NodeId {
        self.exit[v.index()]
    }
}

/// Splits every node `v` with `node_probs[v] > 0` (probability that the peer
/// departs during the window). `relay_capacity[v]` bounds how much traffic
/// the peer can relay (`u64::MAX` for unbounded).
///
/// # Errors
/// Rejects undirected networks and malformed probabilities.
pub fn split_node_failures(
    net: &Network,
    node_probs: &[f64],
    relay_capacity: &[u64],
) -> Result<NodeSplit, ReliabilityError> {
    if node_probs.len() != net.node_count() {
        return Err(ReliabilityError::ArityMismatch {
            what: "node failure probabilities",
            got: node_probs.len(),
            expected: net.node_count(),
        });
    }
    if relay_capacity.len() != net.node_count() {
        return Err(ReliabilityError::ArityMismatch {
            what: "relay capacities",
            got: relay_capacity.len(),
            expected: net.node_count(),
        });
    }
    if net.kind() != GraphKind::Directed {
        return Err(ReliabilityError::DirectedOnly {
            operation: "node splitting",
        });
    }
    let mut b = NetworkBuilder::new(GraphKind::Directed);
    let n = net.node_count();
    let mut entry = Vec::with_capacity(n);
    let mut exit = Vec::with_capacity(n);
    let mut split_plan: Vec<bool> = Vec::with_capacity(n);
    for v in 0..n {
        let p = node_probs[v];
        if p == 0.0 && relay_capacity[v] == u64::MAX {
            let id = b.add_node();
            entry.push(id);
            exit.push(id);
            split_plan.push(false);
        } else {
            let vin = b.add_node();
            let vout = b.add_node();
            entry.push(vin);
            exit.push(vout);
            split_plan.push(true);
        }
    }
    let mut internal_edge = vec![None; n];
    for v in 0..n {
        if split_plan[v] {
            let id = b
                .add_edge(entry[v], exit[v], relay_capacity[v], node_probs[v])
                .map_err(ReliabilityError::Graph)?;
            internal_edge[v] = Some(id);
        }
    }
    for e in net.edges() {
        b.add_edge(
            exit[e.src.index()],
            entry[e.dst.index()],
            e.capacity,
            e.fail_prob,
        )
        .map_err(ReliabilityError::Graph)?;
    }
    Ok(NodeSplit {
        net: b.build(),
        internal_edge,
        entry,
        exit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::FlowDemand;
    use crate::naive::reliability_naive;
    use crate::options::CalcOptions;
    use netgraph::NetworkBuilder;

    const INF: u64 = u64::MAX;

    /// s → v → t with a fallible relay v.
    #[test]
    fn single_relay_multiplies() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.2).unwrap();
        let net = b.build();
        let split = split_node_failures(&net, &[0.0, 0.25, 0.0], &[INF, INF, INF]).unwrap();
        assert_eq!(split.net.node_count(), 4, "only v is split");
        let d = FlowDemand::new(split.entry(n[0]), split.exit(n[2]), 1);
        let r = reliability_naive(&split.net, d, &CalcOptions::default()).unwrap();
        assert!((r - 0.9 * 0.75 * 0.8).abs() < 1e-12);
    }

    /// Node failure takes out all incident links at once: two parallel paths
    /// through the same fallible relay do not help.
    #[test]
    fn correlated_loss_through_shared_relay() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        // two perfect parallel links into and out of relay v
        b.add_edge(n[0], n[1], 1, 0.0).unwrap();
        b.add_edge(n[0], n[1], 1, 0.0).unwrap();
        b.add_edge(n[1], n[2], 1, 0.0).unwrap();
        b.add_edge(n[1], n[2], 1, 0.0).unwrap();
        let net = b.build();
        let split = split_node_failures(&net, &[0.0, 0.3, 0.0], &[INF, INF, INF]).unwrap();
        let d = FlowDemand::new(split.entry(n[0]), split.exit(n[2]), 1);
        let r = reliability_naive(&split.net, d, &CalcOptions::default()).unwrap();
        assert!((r - 0.7).abs() < 1e-12, "R is exactly the relay's survival");
    }

    /// Brute-force oracle: enumerate node states by hand on a 2-relay
    /// diamond and compare.
    #[test]
    fn matches_manual_node_enumeration() {
        let (pa, pb) = (0.2, 0.3);
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4); // s, a, b, t
        b.add_edge(n[0], n[1], 1, 0.0).unwrap();
        b.add_edge(n[0], n[2], 1, 0.0).unwrap();
        b.add_edge(n[1], n[3], 1, 0.0).unwrap();
        b.add_edge(n[2], n[3], 1, 0.0).unwrap();
        let net = b.build();
        let split = split_node_failures(&net, &[0.0, pa, pb, 0.0], &[INF, INF, INF, INF]).unwrap();
        let d = FlowDemand::new(split.entry(n[0]), split.exit(n[3]), 1);
        let r = reliability_naive(&split.net, d, &CalcOptions::default()).unwrap();
        // works iff a survives or b survives
        let manual = 1.0 - pa * pb;
        assert!((r - manual).abs() < 1e-12);
    }

    /// Relay capacity bounds throughput even for reliable peers.
    #[test]
    fn relay_capacity_limits_flow() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 5, 0.0).unwrap();
        b.add_edge(n[1], n[2], 5, 0.0).unwrap();
        let net = b.build();
        let split = split_node_failures(&net, &[0.0, 0.0, 0.0], &[INF, 2, INF]).unwrap();
        let d2 = FlowDemand::new(split.entry(n[0]), split.exit(n[2]), 2);
        let d3 = FlowDemand::new(split.entry(n[0]), split.exit(n[2]), 3);
        let opts = CalcOptions::default();
        assert_eq!(reliability_naive(&split.net, d2, &opts).unwrap(), 1.0);
        assert_eq!(reliability_naive(&split.net, d3, &opts).unwrap(), 0.0);
    }

    #[test]
    fn fallible_terminals_count() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.0).unwrap();
        let net = b.build();
        let split = split_node_failures(&net, &[0.1, 0.2], &[INF, INF]).unwrap();
        let d = FlowDemand::new(split.entry(n[0]), split.exit(n[1]), 1);
        let r = reliability_naive(&split.net, d, &CalcOptions::default()).unwrap();
        assert!((r - 0.9 * 0.8).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_arity_and_undirected_networks() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.0).unwrap();
        let net = b.build();
        assert!(matches!(
            split_node_failures(&net, &[0.0], &[INF, INF]),
            Err(ReliabilityError::ArityMismatch {
                got: 1,
                expected: 2,
                ..
            })
        ));
        assert!(matches!(
            split_node_failures(&net, &[0.0, 0.0], &[INF]),
            Err(ReliabilityError::ArityMismatch {
                got: 1,
                expected: 2,
                ..
            })
        ));
        let mut u = NetworkBuilder::new(GraphKind::Undirected);
        let m = u.add_nodes(2);
        u.add_edge(m[0], m[1], 1, 0.0).unwrap();
        assert!(matches!(
            split_node_failures(&u.build(), &[0.0, 0.0], &[INF, INF]),
            Err(ReliabilityError::DirectedOnly { .. })
        ));
    }

    #[test]
    fn reliable_nodes_are_not_split() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.05).unwrap();
        b.add_edge(n[1], n[2], 1, 0.05).unwrap();
        let net = b.build();
        let split = split_node_failures(&net, &[0.0, 0.0, 0.0], &[INF, INF, INF]).unwrap();
        assert_eq!(split.net.node_count(), 3);
        assert_eq!(split.net.edge_count(), 2);
        assert!(split.internal_edge.iter().all(Option::is_none));
        assert_eq!(split.entry(n[1]), split.exit(n[1]));
    }
}
