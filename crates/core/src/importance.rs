//! Link importance measures.
//!
//! The Birnbaum importance of link `e` is the sensitivity of the reliability
//! to that link's survival:
//!
//! `I_B(e) = ∂R/∂r_e = R(e pinned up) − R(e pinned down)`
//!
//! where `r_e = 1 − p(e)`. The improvement potential `p(e) · I_B(e)` is the
//! reliability gained by making `e` perfect — the quantity a capacity-planning
//! tool ranks links by (see `examples/capacity_planning.rs`).
//!
//! Computed exactly with two conditioned factoring runs per link (conditioning
//! is just pinning the link's weight pair).

use netgraph::Network;

use crate::demand::FlowDemand;
use crate::error::ReliabilityError;
use crate::factoring::reliability_factoring_weighted;
use crate::options::CalcOptions;
use crate::weight::edge_weights;

/// Per-link importance report.
#[derive(Clone, Debug, PartialEq)]
pub struct LinkImportance {
    /// Birnbaum importance `I_B(e)` of each link, in edge order.
    pub birnbaum: Vec<f64>,
    /// Improvement potential `p(e) · I_B(e)` of each link.
    pub improvement: Vec<f64>,
    /// The unconditioned reliability.
    pub reliability: f64,
}

impl LinkImportance {
    /// Indices of the links sorted by decreasing improvement potential.
    pub fn ranked(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.improvement.len()).collect();
        order.sort_by(|&a, &b| self.improvement[b].total_cmp(&self.improvement[a]));
        order
    }
}

/// Computes Birnbaum importances for every link.
pub fn birnbaum_importance(
    net: &Network,
    demand: FlowDemand,
    opts: &CalcOptions,
) -> Result<LinkImportance, ReliabilityError> {
    demand.validate(net)?;
    let base_weights = edge_weights(net);
    let (reliability, _) = reliability_factoring_weighted(net, demand, &base_weights, opts)?;
    let m = net.edge_count();
    let mut birnbaum = Vec::with_capacity(m);
    let mut improvement = Vec::with_capacity(m);
    for e in 0..m {
        let mut up = base_weights.clone();
        up[e] = (1.0, 0.0); // link e always works
        let (r_up, _) = reliability_factoring_weighted(net, demand, &up, opts)?;
        let mut down = base_weights.clone();
        down[e] = (0.0, 1.0); // link e always failed
        let (r_down, _) = reliability_factoring_weighted(net, demand, &down, opts)?;
        let ib = r_up - r_down;
        birnbaum.push(ib);
        improvement.push(net.edge(netgraph::EdgeId::from(e)).fail_prob * ib);
    }
    Ok(LinkImportance {
        birnbaum,
        improvement,
        reliability,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::reliability_naive;
    use netgraph::{GraphKind, NetworkBuilder};

    #[test]
    fn series_importance_is_product_of_others() {
        // s -0.9- a -0.8- t: I_B(e0) = r1 = 0.8, I_B(e1) = r0 = 0.9
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.2).unwrap();
        let net = b.build();
        let imp = birnbaum_importance(
            &net,
            FlowDemand::new(n[0], n[2], 1),
            &CalcOptions::default(),
        )
        .unwrap();
        assert!((imp.birnbaum[0] - 0.8).abs() < 1e-12);
        assert!((imp.birnbaum[1] - 0.9).abs() < 1e-12);
        assert!((imp.reliability - 0.72).abs() < 1e-12);
    }

    #[test]
    fn parallel_importance_is_other_failing() {
        // two parallel links: I_B(e0) = p1 (matters only when e1 is down)
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[1], 1, 0.2).unwrap();
        let net = b.build();
        let imp = birnbaum_importance(
            &net,
            FlowDemand::new(n[0], n[1], 1),
            &CalcOptions::default(),
        )
        .unwrap();
        assert!((imp.birnbaum[0] - 0.2).abs() < 1e-12);
        assert!((imp.birnbaum[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn improvement_predicts_perfecting_a_link() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 1, 0.2).unwrap();
        b.add_edge(n[1], n[3], 1, 0.3).unwrap();
        b.add_edge(n[0], n[2], 1, 0.1).unwrap();
        b.add_edge(n[2], n[3], 1, 0.25).unwrap();
        let net = b.build();
        let d = FlowDemand::new(n[0], n[3], 1);
        let imp = birnbaum_importance(&net, d, &CalcOptions::default()).unwrap();
        // perfecting link e: new reliability = R + p_e * I_B(e)
        for e in 0..net.edge_count() {
            let mut b2 = NetworkBuilder::new(GraphKind::Undirected);
            let n2 = b2.add_nodes(4);
            for (i, edge) in net.edges().iter().enumerate() {
                let p = if i == e { 0.0 } else { edge.fail_prob };
                b2.add_edge(n2[edge.src.index()], n2[edge.dst.index()], 1, p)
                    .unwrap();
            }
            let perfected = reliability_naive(&b2.build(), d, &CalcOptions::default()).unwrap();
            let predicted = imp.reliability + imp.improvement[e];
            assert!(
                (perfected - predicted).abs() < 1e-12,
                "link {e}: perfected {perfected} vs predicted {predicted}"
            );
        }
    }

    #[test]
    fn ranking_is_descending() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.4).unwrap();
        b.add_edge(n[1], n[2], 1, 0.05).unwrap();
        let net = b.build();
        let imp = birnbaum_importance(
            &net,
            FlowDemand::new(n[0], n[2], 1),
            &CalcOptions::default(),
        )
        .unwrap();
        let order = imp.ranked();
        assert_eq!(order[0], 0, "the flakiest series link dominates");
        assert!(imp.improvement[order[0]] >= imp.improvement[order[1]]);
    }

    #[test]
    fn irrelevant_link_has_zero_importance() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[2], n[2], 1, 0.5).unwrap(); // self loop, never on a path
        let net = b.build();
        let imp = birnbaum_importance(
            &net,
            FlowDemand::new(n[0], n[1], 1),
            &CalcOptions::default(),
        )
        .unwrap();
        assert_eq!(imp.birnbaum[1], 0.0);
        assert_eq!(imp.improvement[1], 0.0);
    }
}
