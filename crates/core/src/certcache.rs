//! Monotonicity certificates for the configuration sweeps.
//!
//! Flow feasibility is monotone in the set of alive links, so every solver
//! verdict generalizes beyond the configuration that produced it:
//!
//! * a **feasible** solve yields the *support* of the routed flow (the edges
//!   carrying nonzero flow); every configuration whose alive set contains the
//!   support is feasible;
//! * an **infeasible** (exhausted) solve yields a saturated s–t cut with
//!   crossing-edge set `C`; flow is bounded by the capacity of any cut, so
//!   *every* configuration whose alive edges in `C` have total capacity
//!   below the cut's residual requirement (the demanded flow minus the cut's
//!   unfailable super-terminal capacity) is infeasible — one witnessed cut
//!   instantly classifies every configuration that under-provisions it.
//!
//! [`CertCache`] keeps a bounded working set of both kinds and answers
//! membership in a few word operations per entry, letting the sweep engine
//! skip the max-flow solver for the (large) certifiable fraction of the
//! `2^m` configuration space. All checks are exact — a cache hit returns the
//! same verdict the solver would.

/// What one solver call certified, if anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveCert {
    /// The configuration is feasible and any superset of `support` is too.
    Feasible {
        /// Edges carrying nonzero flow in the witness.
        support: u64,
    },
    /// The configuration is infeasible; so is any configuration whose alive
    /// edges within `crossing` have total capacity below `needed`.
    Infeasible {
        /// All edges crossing the witnessed saturated cut (s-side to t-side).
        crossing: u64,
        /// Alive crossing capacity a feasible configuration must reach: the
        /// required flow minus the cut's fixed (unfailable) capacity.
        needed: u64,
    },
    /// No certificate was extracted (extraction disabled or unavailable).
    None,
}

/// Bounded store of monotonicity certificates with pseudo-LRU behavior:
/// hits are swapped toward the front, insertions overwrite round-robin once
/// the per-kind capacity is reached.
#[derive(Clone, Debug)]
pub struct CertCache {
    feasible: Vec<u64>,
    infeasible: Vec<(u64, u64)>,
    cap: usize,
    next_feasible: usize,
    next_infeasible: usize,
    /// Scan the infeasible certificates first. Adaptive: set to whichever
    /// kind hit last, so a sweep dominated by one verdict (e.g. the mostly
    /// infeasible tail of a tight instance) pays one short scan per config
    /// instead of exhausting the other kind's list first. A correct
    /// certificate pair can never match the same configuration both ways, so
    /// the order changes cost only, never the verdict.
    infeasible_first: bool,
    /// Bitmask of unit-capacity edges, derived from the first `classify`
    /// call's `caps` (capacities never change within a cache's lifetime). A
    /// cut certificate whose crossing edges are all unit-capacity is checked
    /// with one popcount instead of the per-edge capacity-sum walk.
    unit_caps: Option<u64>,
}

impl CertCache {
    /// A cache holding up to `cap` certificates of each kind.
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        CertCache {
            feasible: Vec::with_capacity(cap.min(64)),
            infeasible: Vec::with_capacity(cap.min(64)),
            cap,
            next_feasible: 0,
            next_infeasible: 0,
            infeasible_first: false,
            unit_caps: None,
        }
    }

    /// Classifies configuration `bits`: `Some(true)` feasible, `Some(false)`
    /// infeasible, `None` unknown (the solver must run). `caps[i]` is the
    /// capacity of edge `i` — cut certificates refute any configuration whose
    /// alive crossing edges cannot carry the certificate's `needed` flow.
    pub fn classify(&mut self, bits: u64, caps: &[u64]) -> Option<bool> {
        if self.infeasible_first {
            self.classify_infeasible(bits, caps)
                .or_else(|| self.classify_feasible(bits))
        } else {
            self.classify_feasible(bits)
                .or_else(|| self.classify_infeasible(bits, caps))
        }
    }

    fn classify_feasible(&mut self, bits: u64) -> Option<bool> {
        for i in 0..self.feasible.len() {
            if self.feasible[i] & !bits == 0 {
                self.feasible.swap(0, i);
                self.infeasible_first = false;
                return Some(true);
            }
        }
        None
    }

    fn classify_infeasible(&mut self, bits: u64, caps: &[u64]) -> Option<bool> {
        let unit = *self.unit_caps.get_or_insert_with(|| {
            caps.iter()
                .enumerate()
                .filter(|&(_, &c)| c == 1)
                .fold(0u64, |m, (i, _)| m | (1u64 << i))
        });
        for i in 0..self.infeasible.len() {
            let (crossing, needed) = self.infeasible[i];
            let refuted = if crossing & !unit == 0 {
                u64::from((bits & crossing).count_ones()) < needed
            } else {
                let mut alive = bits & crossing;
                let mut capacity = 0u64;
                while alive != 0 && capacity < needed {
                    let e = alive.trailing_zeros() as usize;
                    alive &= alive - 1;
                    capacity += caps[e];
                }
                capacity < needed
            };
            if refuted {
                self.infeasible.swap(0, i);
                self.infeasible_first = true;
                return Some(false);
            }
        }
        None
    }

    /// Records a certificate extracted from a solver call.
    pub fn record(&mut self, cert: SolveCert) {
        match cert {
            SolveCert::Feasible { support } => {
                // an existing subset support already covers this one
                if self.feasible.iter().any(|&s| s & !support == 0) {
                    return;
                }
                if self.feasible.len() < self.cap {
                    self.feasible.push(support);
                } else {
                    self.feasible[self.next_feasible] = support;
                    self.next_feasible = (self.next_feasible + 1) % self.cap;
                }
            }
            SolveCert::Infeasible { crossing, needed } => {
                // an existing cert on the same cut with an equal-or-higher
                // threshold already refutes everything this one would
                if self
                    .infeasible
                    .iter()
                    .any(|&(c, n)| c == crossing && n >= needed)
                {
                    return;
                }
                if self.infeasible.len() < self.cap {
                    self.infeasible.push((crossing, needed));
                } else {
                    self.infeasible[self.next_infeasible] = (crossing, needed);
                    self.next_infeasible = (self.next_infeasible + 1) % self.cap;
                }
            }
            SolveCert::None => {}
        }
    }

    /// Exports every stored certificate, e.g. to warm-start the cache of a
    /// resumed sweep. Certificates are exact and instance-bound but
    /// advisory: dropping them only costs cold-cache solver calls.
    pub fn export(&self) -> Vec<SolveCert> {
        self.feasible
            .iter()
            .map(|&support| SolveCert::Feasible { support })
            .chain(
                self.infeasible
                    .iter()
                    .map(|&(crossing, needed)| SolveCert::Infeasible { crossing, needed }),
            )
            .collect()
    }

    /// Number of stored certificates (both kinds).
    pub fn len(&self) -> usize {
        self.feasible.len() + self.infeasible.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.feasible.is_empty() && self.infeasible.is_empty()
    }
}

/// Counters describing one configuration sweep; merged across workers and
/// across the two sides of a bottleneck decomposition.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Configurations tested (for side sweeps: configuration × assignment
    /// pairs — the solver-call space).
    pub configs: u64,
    /// Max-flow solver invocations actually performed.
    pub solver_calls: u64,
    /// Configurations classified feasible by a cached certificate.
    pub feasible_hits: u64,
    /// Configurations classified infeasible by a cached certificate.
    pub infeasible_hits: u64,
    /// Link flips applied to a warm flow by the incremental oracle.
    pub flips: u64,
    /// Warm verdicts answered by repairing the carried flow in place.
    pub repairs: u64,
    /// Warm verdicts that fell back to a from-scratch re-solve (cold starts,
    /// range boundaries, wide flip jumps, repair failures).
    pub full_resolves: u64,
}

impl SweepStats {
    /// Solver calls avoided via certificates.
    pub fn solver_calls_avoided(&self) -> u64 {
        self.feasible_hits + self.infeasible_hits
    }

    /// Fraction of tested configurations answered from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.configs == 0 {
            0.0
        } else {
            self.solver_calls_avoided() as f64 / self.configs as f64
        }
    }

    /// Accumulates another worker's counters.
    pub fn merge(&mut self, other: &SweepStats) {
        self.configs += other.configs;
        self.solver_calls += other.solver_calls;
        self.feasible_hits += other.feasible_hits;
        self.infeasible_hits += other.infeasible_hits;
        self.flips += other.flips;
        self.repairs += other.repairs;
        self.full_resolves += other.full_resolves;
    }

    /// Folds in the incremental-repair counters taken from an oracle (see
    /// [`maxflow::incremental::RepairStats`]).
    pub fn absorb_repairs(&mut self, r: &maxflow::RepairStats) {
        self.flips += r.flips;
        self.repairs += r.repairs;
        self.full_resolves += r.full_resolves;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIT_CAPS: [u64; 4] = [1, 1, 1, 1];

    #[test]
    fn feasible_certificates_match_supersets_only() {
        let mut c = CertCache::new(4);
        c.record(SolveCert::Feasible { support: 0b0101 });
        assert_eq!(c.classify(0b0101, &UNIT_CAPS), Some(true));
        assert_eq!(c.classify(0b1111, &UNIT_CAPS), Some(true));
        assert_eq!(
            c.classify(0b0100, &UNIT_CAPS),
            None,
            "missing support bit 0"
        );
    }

    #[test]
    fn infeasible_certificates_match_under_provisioned_cuts_only() {
        // cut crosses unit-capacity edges {0,1}; feasibility needs both alive
        let mut c = CertCache::new(4);
        c.record(SolveCert::Infeasible {
            crossing: 0b011,
            needed: 2,
        });
        assert_eq!(c.classify(0b001, &UNIT_CAPS), Some(false));
        assert_eq!(
            c.classify(0b100, &UNIT_CAPS),
            Some(false),
            "no crossing edge alive"
        );
        assert_eq!(c.classify(0b010, &UNIT_CAPS), Some(false), "capacity 1 < 2");
        assert_eq!(c.classify(0b011, &UNIT_CAPS), None, "cut fully provisioned");
    }

    #[test]
    fn infeasible_certificates_sum_heterogeneous_capacities() {
        let caps = [3u64, 1, 2, 5];
        let mut c = CertCache::new(4);
        c.record(SolveCert::Infeasible {
            crossing: 0b0111,
            needed: 5,
        });
        assert_eq!(c.classify(0b0011, &caps), Some(false), "3+1 < 5");
        assert_eq!(c.classify(0b0110, &caps), Some(false), "1+2 < 5");
        assert_eq!(c.classify(0b0111, &caps), None, "3+1+2 >= 5");
        assert_eq!(
            c.classify(0b1001, &caps),
            Some(false),
            "edge 3 is not in the cut"
        );
    }

    #[test]
    fn infeasible_beats_nothing_but_feasible_wins_first() {
        let mut c = CertCache::new(4);
        c.record(SolveCert::Feasible { support: 0b10 });
        c.record(SolveCert::Infeasible {
            crossing: 0b01,
            needed: 1,
        });
        // feasible list is scanned first; a mask matching both kinds cannot
        // exist for *correct* certificates, so order is a non-issue — here we
        // only check both kinds are live simultaneously
        assert_eq!(c.classify(0b10, &UNIT_CAPS), Some(true));
        assert_eq!(c.classify(0b100, &UNIT_CAPS), Some(false));
    }

    #[test]
    fn capacity_is_bounded_round_robin() {
        let mut c = CertCache::new(2);
        c.record(SolveCert::Feasible { support: 0b001 });
        c.record(SolveCert::Feasible { support: 0b010 });
        c.record(SolveCert::Feasible { support: 0b100 }); // evicts slot 0
        assert!(c.len() <= 4);
        assert_eq!(c.classify(0b110, &UNIT_CAPS), Some(true));
        assert_eq!(c.classify(0b001, &UNIT_CAPS), None, "evicted");
    }

    #[test]
    fn dominated_certificates_are_skipped() {
        let mut c = CertCache::new(4);
        c.record(SolveCert::Feasible { support: 0b001 });
        c.record(SolveCert::Feasible { support: 0b011 }); // superset: useless
        assert_eq!(c.len(), 1);
        c.record(SolveCert::Infeasible {
            crossing: 0b110,
            needed: 3,
        });
        c.record(SolveCert::Infeasible {
            crossing: 0b110,
            needed: 2,
        }); // weaker
        assert_eq!(c.len(), 2);
        c.record(SolveCert::Infeasible {
            crossing: 0b110,
            needed: 4,
        }); // stronger
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn stats_merge_and_rates() {
        let mut a = SweepStats {
            configs: 8,
            solver_calls: 2,
            feasible_hits: 4,
            infeasible_hits: 2,
            ..Default::default()
        };
        let b = SweepStats {
            configs: 8,
            solver_calls: 8,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.configs, 16);
        assert_eq!(a.solver_calls_avoided(), 6);
        assert!((a.hit_rate() - 6.0 / 16.0).abs() < 1e-15);
        assert_eq!(SweepStats::default().hit_rate(), 0.0);
    }
}
