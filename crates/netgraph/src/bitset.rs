//! A compact fixed-capacity bit set backed by `u64` words.
//!
//! Used for alive-link masks over networks whose edge count exceeds the 64-bit
//! fast path, for visited sets in traversals, and for component membership.

/// A fixed-capacity set of small integers, stored one bit per element.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set able to hold values `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set holding every value in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    /// Clears bits beyond `capacity` (invariant after whole-word operations).
    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.capacity;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }

    /// The number of values this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `i`. Panics if `i >= capacity`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Removes `i`. Panics if `i >= capacity`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(
            i < self.capacity,
            "bit {i} out of capacity {}",
            self.capacity
        );
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Tests membership of `i`. Out-of-range values are reported absent.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        i < self.capacity && self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of elements present.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no element is present.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements, keeping the capacity.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Iterates over the present elements in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }

    /// In-place union with `other`. Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place intersection with `other`. Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place difference (`self \ other`). Panics if capacities differ.
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// True when `self` and `other` share no element.
    pub fn is_disjoint(&self, other: &BitSet) -> bool {
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// True when every element of `self` is in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }
}

impl FromIterator<usize> for BitSet {
    /// Builds a set sized to the maximum element (+1).
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().max().map_or(0, |&m| m + 1);
        let mut s = BitSet::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert_eq!(s.len(), 4);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn full_has_exact_len() {
        for cap in [0, 1, 63, 64, 65, 127, 128, 200] {
            let s = BitSet::full(cap);
            assert_eq!(s.len(), cap, "cap={cap}");
            assert_eq!(s.iter().count(), cap);
        }
    }

    #[test]
    fn iter_is_sorted() {
        let s: BitSet = [5usize, 2, 99, 64, 63].into_iter().collect();
        let v: Vec<usize> = s.iter().collect();
        assert_eq!(v, vec![2, 5, 63, 64, 99]);
    }

    #[test]
    fn set_algebra() {
        let a: BitSet = [1usize, 2, 3, 70].into_iter().collect();
        let mut a = {
            // normalize capacities
            let mut x = BitSet::new(100);
            for i in a.iter() {
                x.insert(i);
            }
            x
        };
        let mut b = BitSet::new(100);
        for i in [2usize, 3, 4] {
            b.insert(i);
        }
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 70]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![2, 3]);
        a.difference_with(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![1, 70]);
    }

    #[test]
    fn subset_and_disjoint() {
        let mut a = BitSet::new(80);
        let mut b = BitSet::new(80);
        a.insert(3);
        a.insert(77);
        b.insert(3);
        b.insert(77);
        b.insert(10);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        let mut c = BitSet::new(80);
        c.insert(11);
        assert!(a.is_disjoint(&c));
        assert!(!b.is_disjoint(&a));
    }

    #[test]
    #[should_panic(expected = "out of capacity")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::new(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = BitSet::full(70);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.capacity(), 70);
        s.insert(69);
        assert!(s.contains(69));
    }

    proptest! {
        #[test]
        fn prop_matches_hashset(ops in proptest::collection::vec((0usize..200, any::<bool>()), 0..100)) {
            let mut bs = BitSet::new(200);
            let mut hs = std::collections::HashSet::new();
            for (i, add) in ops {
                if add {
                    bs.insert(i);
                    hs.insert(i);
                } else {
                    bs.remove(i);
                    hs.remove(&i);
                }
            }
            prop_assert_eq!(bs.len(), hs.len());
            let mut expected: Vec<usize> = hs.into_iter().collect();
            expected.sort_unstable();
            prop_assert_eq!(bs.iter().collect::<Vec<_>>(), expected);
        }

        #[test]
        fn prop_union_is_commutative(
            xs in proptest::collection::hash_set(0usize..150, 0..50),
            ys in proptest::collection::hash_set(0usize..150, 0..50),
        ) {
            let mut a = BitSet::new(150);
            let mut b = BitSet::new(150);
            for &x in &xs { a.insert(x); }
            for &y in &ys { b.insert(y); }
            let mut ab = a.clone();
            ab.union_with(&b);
            let mut ba = b.clone();
            ba.union_with(&a);
            prop_assert_eq!(ab, ba);
        }
    }
}
