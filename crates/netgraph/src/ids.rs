//! Strongly-typed node and edge identifiers.
//!
//! Indices are `u32` internally (networks in this workspace are far below the
//! 4-billion-node range; smaller indices keep hot structures compact, per the
//! Rust Performance Book's type-size guidance) and convert to `usize` at use
//! sites.

use std::fmt;

/// Identifier of a node (peer) in a [`crate::Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

/// Identifier of an edge (link) in a [`crate::Network`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    #[inline]
    fn from(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "node index overflows u32");
        NodeId(i as u32)
    }
}

impl From<usize> for EdgeId {
    #[inline]
    fn from(i: usize) -> Self {
        debug_assert!(i <= u32::MAX as usize, "edge index overflows u32");
        EdgeId(i as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let n = NodeId::from(7usize);
        assert_eq!(n.index(), 7);
        assert_eq!(format!("{n}"), "n7");
        assert_eq!(format!("{n:?}"), "n7");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from(42usize);
        assert_eq!(e.index(), 42);
        assert_eq!(format!("{e}"), "e42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert!(EdgeId(0) < EdgeId(10));
    }

    #[test]
    fn ids_are_compact() {
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
    }
}
