//! Connected components in the undirected sense, under an edge mask.
//!
//! The bottleneck decomposition of the paper removes the bottleneck links and
//! inspects the connected components that remain (Section III-A). Components
//! are always taken in the undirected sense, matching the paper's usage.

use crate::adjacency::Adjacency;
use crate::ids::NodeId;
use crate::network::Network;

/// Component labelling of every node: nodes with the same label are connected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentLabels {
    labels: Vec<u32>,
    count: usize,
}

impl ComponentLabels {
    /// Number of connected components.
    #[inline]
    pub fn count(&self) -> usize {
        self.count
    }

    /// The component label of `n` (in `0..count`).
    #[inline]
    pub fn label(&self, n: NodeId) -> u32 {
        self.labels[n.index()]
    }

    /// True when `a` and `b` lie in the same component.
    #[inline]
    pub fn same(&self, a: NodeId, b: NodeId) -> bool {
        self.labels[a.index()] == self.labels[b.index()]
    }

    /// Nodes of component `c` in increasing order.
    pub fn members(&self, c: u32) -> Vec<NodeId> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(i, _)| NodeId::from(i))
            .collect()
    }

    /// Sizes of every component, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }
}

/// Labels the connected components of `net` (undirected sense), treating the
/// edges for which `edge_removed` returns true as deleted.
pub fn connected_components(
    net: &Network,
    mut edge_removed: impl FnMut(usize) -> bool,
) -> ComponentLabels {
    let adj = Adjacency::undirected(net);
    let n = net.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for start in 0..n {
        if labels[start] != u32::MAX {
            continue;
        }
        labels[start] = count;
        stack.push(NodeId::from(start));
        while let Some(u) = stack.pop() {
            for &(e, v) in adj.out_edges(u) {
                if labels[v.index()] == u32::MAX && !edge_removed(e.index()) {
                    labels[v.index()] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    ComponentLabels {
        labels,
        count: count as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{GraphKind, NetworkBuilder};

    fn two_triangles_with_bridge() -> Network {
        // triangle 0-1-2, triangle 3-4-5, bridge 2-3 (edge 6)
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(6);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.1).unwrap();
        b.add_edge(n[2], n[0], 1, 0.1).unwrap();
        b.add_edge(n[3], n[4], 1, 0.1).unwrap();
        b.add_edge(n[4], n[5], 1, 0.1).unwrap();
        b.add_edge(n[5], n[3], 1, 0.1).unwrap();
        b.add_edge(n[2], n[3], 1, 0.1).unwrap();
        b.build()
    }

    #[test]
    fn single_component_when_all_alive() {
        let net = two_triangles_with_bridge();
        let c = connected_components(&net, |_| false);
        assert_eq!(c.count(), 1);
        assert!(c.same(NodeId(0), NodeId(5)));
    }

    #[test]
    fn removing_bridge_splits_in_two() {
        let net = two_triangles_with_bridge();
        let c = connected_components(&net, |e| e == 6);
        assert_eq!(c.count(), 2);
        assert!(c.same(NodeId(0), NodeId(2)));
        assert!(c.same(NodeId(3), NodeId(5)));
        assert!(!c.same(NodeId(2), NodeId(3)));
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![3, 3]);
    }

    #[test]
    fn members_are_sorted() {
        let net = two_triangles_with_bridge();
        let c = connected_components(&net, |e| e == 6);
        let side = c.members(c.label(NodeId(3)));
        assert_eq!(side, vec![NodeId(3), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn isolated_nodes_are_own_components() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        b.add_nodes(3);
        let net = b.build();
        let c = connected_components(&net, |_| false);
        assert_eq!(c.count(), 3);
    }

    #[test]
    fn directed_edges_count_as_undirected() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[1], n[0], 1, 0.1).unwrap();
        let net = b.build();
        let c = connected_components(&net, |_| false);
        assert_eq!(c.count(), 1);
    }
}
