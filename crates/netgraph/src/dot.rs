//! Graphviz DOT export, for debugging and documentation figures.

use std::fmt::Write as _;

use crate::network::{GraphKind, Network};

/// Renders `net` in Graphviz DOT format. Each link is labelled
/// `e<i> c=<capacity> p=<fail_prob>`; `highlight` edges (e.g. a bottleneck
/// set) are drawn red.
pub fn to_dot(net: &Network, highlight: &[crate::ids::EdgeId]) -> String {
    let (gtype, arrow) = match net.kind() {
        GraphKind::Directed => ("digraph", "->"),
        GraphKind::Undirected => ("graph", "--"),
    };
    let mut out = String::new();
    let _ = writeln!(out, "{gtype} G {{");
    for i in 0..net.node_count() {
        let _ = writeln!(out, "  n{i};");
    }
    for (id, e) in net.edge_refs() {
        let color = if highlight.contains(&id) {
            ", color=red"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  n{} {arrow} n{} [label=\"{id} c={} p={}\"{color}];",
            e.src.0, e.dst.0, e.capacity, e.fail_prob
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EdgeId;
    use crate::network::NetworkBuilder;

    #[test]
    fn directed_dot_contains_edges() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 3, 0.25).unwrap();
        let dot = to_dot(&b.build(), &[]);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("c=3"));
        assert!(dot.contains("p=0.25"));
    }

    #[test]
    fn undirected_dot_and_highlight() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        let dot = to_dot(&b.build(), &[EdgeId(0)]);
        assert!(dot.starts_with("graph"));
        assert!(dot.contains("n0 -- n1"));
        assert!(dot.contains("color=red"));
    }
}
