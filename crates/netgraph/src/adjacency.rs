//! Incidence structure for traversal.

use crate::ids::{EdgeId, NodeId};
use crate::network::{GraphKind, Network};

/// Per-node incidence lists built once from a [`Network`].
///
/// For directed networks, `out` holds out-edges and `inc` holds in-edges; for
/// undirected networks both directions of every edge appear in `out` (and
/// `inc` mirrors it), so traversals can treat `out` uniformly.
#[derive(Clone, Debug)]
pub struct Adjacency {
    out: Vec<Vec<(EdgeId, NodeId)>>,
    inc: Vec<Vec<(EdgeId, NodeId)>>,
}

impl Adjacency {
    /// Builds incidence lists for `net`.
    pub fn new(net: &Network) -> Self {
        let n = net.node_count();
        let mut out = vec![Vec::new(); n];
        let mut inc = vec![Vec::new(); n];
        for (id, e) in net.edge_refs() {
            if e.src == e.dst {
                continue; // self-loops never carry useful s-t flow
            }
            match net.kind() {
                GraphKind::Directed => {
                    out[e.src.index()].push((id, e.dst));
                    inc[e.dst.index()].push((id, e.src));
                }
                GraphKind::Undirected => {
                    out[e.src.index()].push((id, e.dst));
                    out[e.dst.index()].push((id, e.src));
                    inc[e.src.index()].push((id, e.dst));
                    inc[e.dst.index()].push((id, e.src));
                }
            }
        }
        Adjacency { out, inc }
    }

    /// Builds incidence lists ignoring edge direction even on directed
    /// networks (used for component analysis, which per the paper is in the
    /// undirected sense).
    pub fn undirected(net: &Network) -> Self {
        let n = net.node_count();
        let mut out = vec![Vec::new(); n];
        for (id, e) in net.edge_refs() {
            if e.src == e.dst {
                continue;
            }
            out[e.src.index()].push((id, e.dst));
            out[e.dst.index()].push((id, e.src));
        }
        Adjacency {
            inc: out.clone(),
            out,
        }
    }

    /// Edges leaving `n` as `(edge, neighbour)` pairs.
    #[inline]
    pub fn out_edges(&self, n: NodeId) -> &[(EdgeId, NodeId)] {
        &self.out[n.index()]
    }

    /// Edges entering `n` as `(edge, neighbour)` pairs.
    #[inline]
    pub fn in_edges(&self, n: NodeId) -> &[(EdgeId, NodeId)] {
        &self.inc[n.index()]
    }

    /// Number of nodes covered.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Out-degree of `n`.
    #[inline]
    pub fn out_degree(&self, n: NodeId) -> usize {
        self.out[n.index()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::NetworkBuilder;

    fn diamond(kind: GraphKind) -> Network {
        // s -> a -> t, s -> b -> t
        let mut b = NetworkBuilder::new(kind);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[2], 1, 0.1).unwrap();
        b.add_edge(n[1], n[3], 1, 0.1).unwrap();
        b.add_edge(n[2], n[3], 1, 0.1).unwrap();
        b.build()
    }

    #[test]
    fn directed_adjacency() {
        let net = diamond(GraphKind::Directed);
        let adj = Adjacency::new(&net);
        assert_eq!(adj.out_degree(NodeId(0)), 2);
        assert_eq!(adj.out_degree(NodeId(3)), 0);
        assert_eq!(adj.in_edges(NodeId(3)).len(), 2);
        assert_eq!(adj.out_edges(NodeId(1)), &[(EdgeId(2), NodeId(3))]);
    }

    #[test]
    fn undirected_adjacency_mirrors() {
        let net = diamond(GraphKind::Undirected);
        let adj = Adjacency::new(&net);
        assert_eq!(adj.out_degree(NodeId(0)), 2);
        assert_eq!(adj.out_degree(NodeId(3)), 2);
        // in == out for undirected
        assert_eq!(adj.in_edges(NodeId(3)), adj.out_edges(NodeId(3)));
    }

    #[test]
    fn undirected_view_of_directed_graph() {
        let net = diamond(GraphKind::Directed);
        let adj = Adjacency::undirected(&net);
        assert_eq!(adj.out_degree(NodeId(3)), 2);
    }

    #[test]
    fn self_loops_skipped() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_node();
        b.add_edge(n, n, 5, 0.1).unwrap();
        let net = b.build();
        let adj = Adjacency::new(&net);
        assert_eq!(adj.out_degree(n), 0);
    }
}
