//! BFS reachability under an alive-edge mask.

use std::collections::VecDeque;

use crate::adjacency::Adjacency;
use crate::bitset::BitSet;
use crate::ids::NodeId;
use crate::network::Network;

/// Returns the set of nodes reachable from `start` using only edges for which
/// `edge_alive` returns true, following directions per the adjacency given.
pub fn bfs_reachable(
    adj: &Adjacency,
    start: NodeId,
    mut edge_alive: impl FnMut(usize) -> bool,
) -> BitSet {
    let mut seen = BitSet::new(adj.node_count());
    let mut queue = VecDeque::new();
    seen.insert(start.index());
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        for &(e, v) in adj.out_edges(u) {
            if !seen.contains(v.index()) && edge_alive(e.index()) {
                seen.insert(v.index());
                queue.push_back(v);
            }
        }
    }
    seen
}

/// True when `t` is reachable from `s` in `net` using only edges alive in
/// `alive` (`None` means every edge is alive). Directionality follows the
/// network kind.
pub fn is_connected_st(net: &Network, s: NodeId, t: NodeId, alive: Option<&BitSet>) -> bool {
    if s == t {
        return true;
    }
    let adj = Adjacency::new(net);
    let reach = bfs_reachable(&adj, s, |e| alive.is_none_or(|a| a.contains(e)));
    reach.contains(t.index())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{GraphKind, NetworkBuilder};

    fn path3() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[1], n[2], 1, 0.1).unwrap();
        b.build()
    }

    #[test]
    fn reaches_along_path() {
        let net = path3();
        assert!(is_connected_st(&net, NodeId(0), NodeId(2), None));
        assert!(!is_connected_st(&net, NodeId(2), NodeId(0), None));
    }

    #[test]
    fn respects_alive_mask() {
        let net = path3();
        let mut alive = BitSet::new(2);
        alive.insert(0);
        assert!(!is_connected_st(&net, NodeId(0), NodeId(2), Some(&alive)));
        alive.insert(1);
        assert!(is_connected_st(&net, NodeId(0), NodeId(2), Some(&alive)));
    }

    #[test]
    fn undirected_reaches_backwards() {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        let net = b.build();
        assert!(is_connected_st(&net, NodeId(1), NodeId(0), None));
    }

    #[test]
    fn source_equals_sink() {
        let net = path3();
        assert!(is_connected_st(&net, NodeId(1), NodeId(1), None));
    }

    #[test]
    fn bfs_visits_all_reachable() {
        let net = path3();
        let adj = Adjacency::new(&net);
        let seen = bfs_reachable(&adj, NodeId(0), |_| true);
        assert_eq!(seen.iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        let seen = bfs_reachable(&adj, NodeId(1), |_| true);
        assert_eq!(seen.iter().collect::<Vec<_>>(), vec![1, 2]);
    }
}
