//! Multi-state link capacities: discrete capacity spectra and their
//! expansion onto a binary *tranche* network.
//!
//! The paper's model is binary: a link is either up (capacity `c`) or down
//! (capacity 0). Following Botev–L'Ecuyer–Tuffin ("Reliability Estimation for
//! Networks with Minimal Flow Demand and Random Link Capacities"), a link may
//! instead draw its capacity from a discrete distribution
//! `[(c_0, p_0), …, (c_{k−1}, p_{k−1})]` with `Σ p_i = 1` — a *capacity
//! spectrum*. Binary links are exactly the 2-state special case
//! `[(0, p), (c, 1−p)]`.
//!
//! ## Tranche expansion
//!
//! Every algorithm in the workspace enumerates binary edge masks. A k-state
//! link maps onto that machinery exactly via its **tranches**: sort the
//! states ascending by capacity, pin a base arc of capacity `c_0` (always
//! alive; omitted when `c_0 = 0`), and add one arc of capacity
//! `c_{i} − c_{i−1}` per higher state (its *tranche*). The link being in
//! state `d` corresponds to tranches `1..=d` alive — total capacity exactly
//! `c_d` — and a one-step state change flips exactly one tranche arc, which
//! is what keeps Gray-code sweeps, monotonicity certificates, and warm-start
//! flow repair sound on the expanded network. Only the `k` *prefix* patterns
//! of each link's tranches are ever enumerated (the spectrum need not be a
//! product distribution over its tranches), so the expansion is a change of
//! coordinates, not an independent-gadget rewrite.

use crate::error::GraphError;
use crate::ids::EdgeId;
use crate::network::Network;

/// Tolerance for "state probabilities sum to 1" validation. Spectra are
/// user input (often decimal literals), so exact dyadic equality would be
/// hostile; anything within this slack is accepted and used as given.
pub const SPECTRUM_SUM_EPS: f64 = 1e-9;

/// A validated, normalized capacity distribution of a multi-state link.
///
/// Invariants (enforced by [`classify_spectrum`], the only constructor):
/// states are sorted ascending by capacity, capacities are distinct,
/// probabilities are in `(0, 1]` and sum to 1 within [`SPECTRUM_SUM_EPS`],
/// and there are at least two states with the lowest capacity nonzero —
/// anything simpler normalizes to a plain binary or deterministic link and
/// is stored as such, never as a spectrum.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CapacitySpectrum {
    states: Vec<(u64, f64)>,
}

impl CapacitySpectrum {
    /// The states `(capacity, probability)`, ascending by capacity.
    #[inline]
    pub fn states(&self) -> &[(u64, f64)] {
        &self.states
    }

    /// Number of states `k ≥ 2`.
    #[inline]
    pub fn k(&self) -> usize {
        self.states.len()
    }

    /// The largest capacity (the best state).
    #[inline]
    pub fn max_capacity(&self) -> u64 {
        self.states.last().map(|&(c, _)| c).unwrap_or(0)
    }

    /// The smallest capacity (the worst state).
    #[inline]
    pub fn min_capacity(&self) -> u64 {
        self.states.first().map(|&(c, _)| c).unwrap_or(0)
    }

    /// Probability of delivering zero capacity (0 when the worst state still
    /// has positive capacity).
    pub fn down_prob(&self) -> f64 {
        match self.states.first() {
            Some(&(0, p)) => p,
            _ => 0.0,
        }
    }

    /// Tail probability `P(capacity ≥ states[i].0)`: the sum of the state
    /// probabilities from index `i` up.
    pub fn survival(&self, i: usize) -> f64 {
        self.states.iter().skip(i).map(|&(_, p)| p).sum()
    }
}

/// The normal form of a state list: what a spectrum *is* once degenerate
/// shapes collapse.
///
/// [`classify_spectrum`] returns this so every layer (builder, parser,
/// reduction passes) normalizes identically: 1-state lists become
/// deterministic links, `{0, c}` 2-state lists reconstruct the legacy
/// `capacity`/`fail_prob` pair exactly, and only genuinely multi-state
/// shapes are stored as spectra.
#[derive(Clone, Debug, PartialEq)]
pub enum SpectrumForm {
    /// A single state: the link always has this capacity (possibly 0).
    Deterministic {
        /// The sole capacity value.
        capacity: u64,
    },
    /// Exactly `{(0, p), (c, 1−p)}`: today's binary link, bit for bit.
    Binary {
        /// The up-state capacity `c`.
        capacity: u64,
        /// The down-state probability `p`.
        fail_prob: f64,
    },
    /// A genuine multi-state spectrum (3+ states, or 2 states with a
    /// nonzero floor).
    Multi(CapacitySpectrum),
}

/// Validates and normalizes a state list into its [`SpectrumForm`].
///
/// Rules: probabilities must be finite, non-negative, and sum to 1 within
/// [`SPECTRUM_SUM_EPS`]; duplicate capacities merge (their probabilities
/// add); zero-probability states are dropped; the result must retain at
/// least one state. Returns a human-readable reason on rejection.
pub fn classify_spectrum(states: &[(u64, f64)]) -> Result<SpectrumForm, String> {
    if states.is_empty() {
        return Err("a capacity spectrum needs at least one state".into());
    }
    let mut sum = 0.0;
    for &(c, p) in states {
        if !p.is_finite() || !(0.0..=1.0 + SPECTRUM_SUM_EPS).contains(&p) {
            return Err(format!("state ({c}, {p}) has a probability outside [0, 1]"));
        }
        sum += p;
    }
    if (sum - 1.0).abs() > SPECTRUM_SUM_EPS {
        return Err(format!("state probabilities sum to {sum}, expected 1"));
    }
    let mut sorted: Vec<(u64, f64)> = states.to_vec();
    sorted.sort_by_key(|&(c, _)| c);
    let mut merged: Vec<(u64, f64)> = Vec::with_capacity(sorted.len());
    for (c, p) in sorted {
        match merged.last_mut() {
            Some(last) if last.0 == c => last.1 += p,
            _ => merged.push((c, p)),
        }
    }
    merged.retain(|&(_, p)| p > 0.0);
    match merged.as_slice() {
        [] => Err("every state has probability zero".into()),
        [(c, _)] => Ok(SpectrumForm::Deterministic { capacity: *c }),
        [(0, p), (c, _)] => Ok(SpectrumForm::Binary {
            capacity: *c,
            fail_prob: *p,
        }),
        _ => Ok(SpectrumForm::Multi(CapacitySpectrum { states: merged })),
    }
}

/// One enumeration digit of a [`StateExpansion`]: a fallible link, with its
/// per-state probabilities and the expanded tranche arcs its digit value
/// controls.
#[derive(Clone, Debug)]
pub struct StateDigit {
    /// The original edge this digit enumerates.
    pub edge: EdgeId,
    /// Number of states (the digit's radix, ≥ 2). Plain fallible binary
    /// links have radix 2.
    pub radix: usize,
    /// `probs[v]` is the probability of state `v` (states ascending by
    /// capacity, so `v = 0` is the worst state).
    pub probs: Vec<f64>,
    /// `tranche_arcs[i]` is the expanded-arc index of tranche `i + 1`: the
    /// arc alive exactly when the digit value is `> i`. Length `radix − 1`.
    pub tranche_arcs: Vec<usize>,
}

impl StateDigit {
    /// Bits over the expanded arcs contributed by digit value `v`
    /// (tranches `1..=v` alive).
    pub fn value_bits(&self, v: usize) -> u64 {
        self.tranche_arcs
            .iter()
            .take(v)
            .fold(0u64, |b, &a| b | 1u64 << a)
    }
}

/// The tranche expansion of a network: a plain *binary* network whose edge
/// masks encode mixed-radix state configurations of the original.
///
/// Perfect links (`p = 0`) and spectrum base capacities become pinned-alive
/// arcs; links with `p ≥ 1` are omitted entirely (they never carry flow);
/// every other link becomes one [`StateDigit`]. The digit order follows the
/// original edge order, which fixes the mixed-radix configuration numbering
/// used by sweeps and checkpoints.
#[derive(Clone, Debug)]
pub struct StateExpansion {
    /// The expanded binary network (carries no spectra).
    pub net: Network,
    /// The enumeration digits, in original edge order.
    pub digits: Vec<StateDigit>,
    /// Expanded-arc bits pinned alive in every configuration.
    pub pinned: u64,
    /// For each expanded arc, the original edge it belongs to.
    pub arc_origin: Vec<EdgeId>,
}

impl StateExpansion {
    /// Builds the tranche expansion of `net`.
    ///
    /// Fails with [`GraphError::ExpansionTooLarge`] when the expanded
    /// network would exceed the 64-arc edge-mask capacity.
    pub fn build(net: &Network) -> Result<StateExpansion, GraphError> {
        let mut b = crate::network::NetworkBuilder::with_nodes(net.kind(), net.node_count());
        let mut digits = Vec::new();
        let mut pinned = 0u64;
        let mut arc_origin = Vec::new();
        let push_arc = |b: &mut crate::network::NetworkBuilder,
                        arc_origin: &mut Vec<EdgeId>,
                        src,
                        dst,
                        capacity,
                        fail_prob,
                        origin: EdgeId|
         -> Result<usize, GraphError> {
            let id = b.add_edge(src, dst, capacity, fail_prob)?;
            if id.index() >= crate::network::EdgeMask::MAX_EDGES {
                return Err(GraphError::ExpansionTooLarge {
                    arcs: id.index() + 1,
                    max: crate::network::EdgeMask::MAX_EDGES,
                });
            }
            arc_origin.push(origin);
            Ok(id.index())
        };
        for (id, e) in net.edge_refs() {
            match net.spectrum(id) {
                Some(sp) => {
                    let states = sp.states();
                    let floor = states[0].0;
                    if floor > 0 {
                        let arc = push_arc(&mut b, &mut arc_origin, e.src, e.dst, floor, 0.0, id)?;
                        pinned |= 1u64 << arc;
                    }
                    let mut tranche_arcs = Vec::with_capacity(states.len() - 1);
                    for w in states.windows(2) {
                        let delta = w[1].0 - w[0].0;
                        let arc = push_arc(&mut b, &mut arc_origin, e.src, e.dst, delta, 0.0, id)?;
                        tranche_arcs.push(arc);
                    }
                    digits.push(StateDigit {
                        edge: id,
                        radix: states.len(),
                        probs: states.iter().map(|&(_, p)| p).collect(),
                        tranche_arcs,
                    });
                }
                None => {
                    if e.fail_prob >= 1.0 {
                        continue; // never up: behaves as a deleted link
                    }
                    let arc = push_arc(
                        &mut b,
                        &mut arc_origin,
                        e.src,
                        e.dst,
                        e.capacity,
                        e.fail_prob,
                        id,
                    )?;
                    if e.fail_prob == 0.0 {
                        pinned |= 1u64 << arc;
                    } else {
                        digits.push(StateDigit {
                            edge: id,
                            radix: 2,
                            probs: vec![e.fail_prob, 1.0 - e.fail_prob],
                            tranche_arcs: vec![arc],
                        });
                    }
                }
            }
        }
        Ok(StateExpansion {
            net: b.build(),
            digits,
            pinned,
            arc_origin,
        })
    }

    /// The per-digit radices, in digit order.
    pub fn radices(&self) -> Vec<u32> {
        self.digits.iter().map(|d| d.radix as u32).collect()
    }

    /// Total number of mixed-radix configurations `Π radices`, or `None` on
    /// overflow past `2^63` (far beyond any enumerable sweep).
    pub fn config_total(&self) -> Option<u64> {
        let mut total: u64 = 1;
        for d in &self.digits {
            total = total.checked_mul(d.radix as u64)?;
            if total > 1u64 << 63 {
                return None;
            }
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{GraphKind, NetworkBuilder};

    #[test]
    fn classify_rejects_bad_probabilities() {
        assert!(classify_spectrum(&[]).is_err());
        assert!(classify_spectrum(&[(1, 0.5), (2, 0.6)]).is_err());
        assert!(classify_spectrum(&[(1, -0.1), (2, 1.1)]).is_err());
        assert!(classify_spectrum(&[(1, f64::NAN), (2, 0.5)]).is_err());
    }

    #[test]
    fn classify_normal_forms() {
        assert_eq!(
            classify_spectrum(&[(3, 1.0)]),
            Ok(SpectrumForm::Deterministic { capacity: 3 })
        );
        // duplicate capacities merge, zero-probability states drop
        assert_eq!(
            classify_spectrum(&[(2, 0.5), (2, 0.5), (7, 0.0)]),
            Ok(SpectrumForm::Deterministic { capacity: 2 })
        );
        assert_eq!(
            classify_spectrum(&[(4, 0.75), (0, 0.25)]),
            Ok(SpectrumForm::Binary {
                capacity: 4,
                fail_prob: 0.25
            })
        );
        // 2 states with a nonzero floor stay multi-state
        match classify_spectrum(&[(2, 0.5), (4, 0.5)]) {
            Ok(SpectrumForm::Multi(sp)) => {
                assert_eq!(sp.k(), 2);
                assert_eq!(sp.min_capacity(), 2);
                assert_eq!(sp.down_prob(), 0.0);
            }
            other => panic!("expected Multi, got {other:?}"),
        }
    }

    #[test]
    fn classify_sorts_and_keeps_three_states() {
        match classify_spectrum(&[(4, 0.5), (0, 0.25), (2, 0.25)]) {
            Ok(SpectrumForm::Multi(sp)) => {
                assert_eq!(sp.states(), &[(0, 0.25), (2, 0.25), (4, 0.5)]);
                assert_eq!(sp.max_capacity(), 4);
                assert!((sp.down_prob() - 0.25).abs() < 1e-15);
                assert!((sp.survival(1) - 0.75).abs() < 1e-15);
            }
            other => panic!("expected Multi, got {other:?}"),
        }
    }

    #[test]
    fn expansion_of_binary_network_is_identity_shaped() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 2, 0.25).unwrap();
        b.add_edge(n[1], n[2], 1, 0.0).unwrap(); // perfect: pinned
        let net = b.build();
        let x = StateExpansion::build(&net).unwrap();
        assert_eq!(x.net.edge_count(), 2);
        assert_eq!(x.digits.len(), 1);
        assert_eq!(x.digits[0].radix, 2);
        assert_eq!(x.pinned, 0b10);
        assert_eq!(x.config_total(), Some(2));
    }

    #[test]
    fn expansion_of_three_state_link() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.2), (1, 0.3), (3, 0.5)])
            .unwrap();
        let net = b.build();
        let x = StateExpansion::build(&net).unwrap();
        // floor 0: no base arc; two tranches of capacity 1 and 2
        assert_eq!(x.net.edge_count(), 2);
        assert_eq!(x.net.edges()[0].capacity, 1);
        assert_eq!(x.net.edges()[1].capacity, 2);
        assert_eq!(x.pinned, 0);
        let d = &x.digits[0];
        assert_eq!(d.radix, 3);
        assert_eq!(d.value_bits(0), 0b00);
        assert_eq!(d.value_bits(1), 0b01);
        assert_eq!(d.value_bits(2), 0b11);
        assert_eq!(x.config_total(), Some(3));
    }

    #[test]
    fn expansion_pins_nonzero_floor_and_skips_dead_links() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_spectrum_edge(n[0], n[1], &[(1, 0.5), (4, 0.5)])
            .unwrap();
        b.add_edge(n[0], n[1], 9, 1.0).unwrap(); // always down: no arc
        let net = b.build();
        let x = StateExpansion::build(&net).unwrap();
        assert_eq!(x.net.edge_count(), 2, "base arc + one tranche");
        assert_eq!(x.net.edges()[0].capacity, 1);
        assert_eq!(x.net.edges()[1].capacity, 3);
        assert_eq!(x.pinned, 0b01);
        assert_eq!(x.digits.len(), 1);
        assert_eq!(x.arc_origin, vec![EdgeId(0), EdgeId(0)]);
    }
}
