//! # netgraph — flow-network graph substrate
//!
//! This crate provides the graph model used throughout the `flowrel` workspace:
//! a [`Network`] of nodes connected by capacitated, failure-prone links, together
//! with the graph algorithms the reliability calculation needs as a substrate:
//!
//! * [`Network`] / [`NetworkBuilder`] — the network `G = (V, E)` with per-link
//!   capacity `c(e)` and failure probability `p(e)`, as defined in Section I of
//!   the paper;
//! * [`BitSet`] and [`EdgeMask`] — failure-configuration masks (which links are
//!   alive) used to enumerate the `2^|E|` configurations;
//! * [`Adjacency`] — incidence structure for traversal;
//! * [`traverse`] — BFS/DFS reachability under an edge mask;
//! * [`components`] — connected components under an edge mask;
//! * [`bridges`] — Tarjan bridge detection (the `k = 1` bottleneck fast path);
//! * [`spectrum`] — multi-state link capacities: validated capacity spectra
//!   `[(capacity, prob); k]` and their tranche expansion onto a binary
//!   network, so mixed-radix state configurations map onto edge masks;
//! * [`dot`] — Graphviz export for debugging and documentation.
//!
//! The graph is a multigraph: parallel links and self-loops are allowed (self
//! loops are ignored by flow and connectivity algorithms). Networks are either
//! [`GraphKind::Directed`] or [`GraphKind::Undirected`]; an undirected link can
//! carry up to its capacity in either direction (but not both simultaneously),
//! which is the standard undirected max-flow semantics.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adjacency;
pub mod bitset;
pub mod bridges;
pub mod components;
pub mod dot;
pub mod error;
pub mod ids;
pub mod network;
pub mod spectrum;
pub mod traverse;

pub use adjacency::Adjacency;
pub use bitset::BitSet;
pub use bridges::find_bridges;
pub use components::{connected_components, ComponentLabels};
pub use error::GraphError;
pub use ids::{EdgeId, NodeId};
pub use network::{Edge, EdgeMask, GraphKind, Network, NetworkBuilder};
pub use spectrum::{
    classify_spectrum, CapacitySpectrum, SpectrumForm, StateDigit, StateExpansion, SPECTRUM_SUM_EPS,
};
pub use traverse::{bfs_reachable, is_connected_st};
