//! The flow network `G = (V, E)` with capacities and failure probabilities.

use crate::error::GraphError;
use crate::ids::{EdgeId, NodeId};
use crate::spectrum::{classify_spectrum, CapacitySpectrum, SpectrumForm};

/// Whether links are one-way (directed) or two-way (undirected).
///
/// An undirected link of capacity `c` can carry up to `c` units in either
/// direction (standard undirected max-flow semantics). P2P overlay links are
/// typically modelled as directed (upload direction), while physical network
/// reliability literature often uses undirected links; both are supported.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GraphKind {
    /// Links carry flow only from `src` to `dst`.
    Directed,
    /// Links carry flow in either direction.
    Undirected,
}

/// A link `e ∈ E` with capacity `c(e)` and failure probability `p(e)`.
#[derive(Clone, Copy, PartialEq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Edge {
    /// Tail node (source endpoint for directed links).
    pub src: NodeId,
    /// Head node (sink endpoint for directed links).
    pub dst: NodeId,
    /// Integral capacity `c(e)` in unit sub-streams.
    pub capacity: u64,
    /// Failure probability `p(e) ∈ [0, 1]`; the link is *up* with
    /// probability `1 − p(e)`, independently of every other link.
    pub fail_prob: f64,
}

/// An alive-link configuration over the first `len ≤ 64` edges of a network.
///
/// Bit `i` set means edge `i` is alive (did **not** fail). This is the compact
/// representation used when enumerating the `2^|E|` failure configurations of
/// the naive algorithm (Fig. 1) and the `2^{|E_c|}` per-component
/// configurations of Section III-C. Enumeration deliberately refuses networks
/// with more than 64 enumerable edges — long before that bound the running
/// time, not the representation, is the binding constraint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EdgeMask {
    bits: u64,
    len: u32,
}

impl EdgeMask {
    /// Maximum number of edges an `EdgeMask` can describe.
    pub const MAX_EDGES: usize = 64;

    /// Creates a mask over `len` edges from raw bits (extra bits are cleared).
    ///
    /// # Panics
    /// Panics if `len > 64`.
    #[inline]
    pub fn from_bits(bits: u64, len: usize) -> Self {
        assert!(
            len <= Self::MAX_EDGES,
            "EdgeMask supports at most 64 edges, got {len}"
        );
        let keep = if len == 64 {
            u64::MAX
        } else {
            (1u64 << len) - 1
        };
        EdgeMask {
            bits: bits & keep,
            len: len as u32,
        }
    }

    /// A mask in which every one of the `len` edges is alive.
    #[inline]
    pub fn all_alive(len: usize) -> Self {
        Self::from_bits(u64::MAX, len)
    }

    /// A mask in which every one of the `len` edges has failed.
    #[inline]
    pub fn all_failed(len: usize) -> Self {
        Self::from_bits(0, len)
    }

    /// Raw bit representation.
    #[inline]
    pub fn bits(self) -> u64 {
        self.bits
    }

    /// Number of edges described by this mask.
    #[inline]
    pub fn len(self) -> usize {
        self.len as usize
    }

    /// True when the mask describes zero edges.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// Is edge `i` alive?
    #[inline]
    pub fn alive(self, i: usize) -> bool {
        debug_assert!(i < self.len as usize);
        self.bits >> i & 1 == 1
    }

    /// Returns the mask with edge `i` forced alive.
    #[inline]
    pub fn with_alive(self, i: usize) -> Self {
        debug_assert!(i < self.len as usize);
        EdgeMask {
            bits: self.bits | 1 << i,
            len: self.len,
        }
    }

    /// Returns the mask with edge `i` forced failed.
    #[inline]
    pub fn with_failed(self, i: usize) -> Self {
        debug_assert!(i < self.len as usize);
        EdgeMask {
            bits: self.bits & !(1 << i),
            len: self.len,
        }
    }

    /// Number of alive edges.
    #[inline]
    pub fn alive_count(self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Iterates over the indices of alive edges in increasing order.
    pub fn iter_alive(self) -> impl Iterator<Item = usize> {
        let mut bits = self.bits;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let b = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(b)
        })
    }

    /// True when every edge alive in `self` is also alive in `other`.
    #[inline]
    pub fn is_subset(self, other: EdgeMask) -> bool {
        self.bits & !other.bits == 0
    }
}

/// The flow network `G = (V, E)`.
///
/// Nodes are implicit (`0..node_count`); edges are stored in insertion order,
/// which fixes the failure-configuration numbering used throughout the
/// reliability algorithms.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Network {
    kind: GraphKind,
    node_count: usize,
    edges: Vec<Edge>,
    /// Per-edge capacity spectra, aligned with `edges`. `None` (or a vector
    /// shorter than `edges`, for payloads serialized before this field
    /// existed) means the edge is a plain binary link described entirely by
    /// its `capacity`/`fail_prob` pair.
    #[cfg_attr(feature = "serde", serde(default))]
    spectra: Vec<Option<CapacitySpectrum>>,
}

impl Network {
    /// Directionality of the network's links.
    #[inline]
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// All edges in insertion order.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with identifier `e`.
    ///
    /// # Panics
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &Edge {
        &self.edges[e.index()]
    }

    /// Iterates over `(EdgeId, &Edge)` pairs.
    pub fn edge_refs(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::from(i), e))
    }

    /// The capacity spectrum of edge `e`, or `None` for a plain binary link.
    ///
    /// When present, the edge's `capacity` field holds the spectrum's best
    /// state and `fail_prob` its zero-capacity probability, so capacity
    /// bounds and quick feasibility checks stay conservative without
    /// consulting the spectrum.
    #[inline]
    pub fn spectrum(&self, e: EdgeId) -> Option<&CapacitySpectrum> {
        self.spectra.get(e.index()).and_then(|s| s.as_ref())
    }

    /// True when any edge carries a (genuinely) multi-state spectrum.
    pub fn has_multistate(&self) -> bool {
        self.spectra.iter().any(|s| s.is_some())
    }

    /// Number of edges with a multi-state spectrum.
    pub fn multistate_count(&self) -> usize {
        self.spectra.iter().filter(|s| s.is_some()).count()
    }

    /// Checks that `n` names an existing node.
    pub fn check_node(&self, n: NodeId) -> Result<(), GraphError> {
        if n.index() < self.node_count {
            Ok(())
        } else {
            Err(GraphError::NodeOutOfRange {
                node: n,
                node_count: self.node_count,
            })
        }
    }

    /// The probability of the failure configuration `mask` over this
    /// network's edges: `Π_{alive} (1 − p(e)) · Π_{failed} p(e)`.
    ///
    /// # Panics
    /// Panics if `mask.len() != self.edge_count()`.
    pub fn config_probability(&self, mask: EdgeMask) -> f64 {
        assert_eq!(
            mask.len(),
            self.edges.len(),
            "mask length must equal edge count"
        );
        let mut p = 1.0;
        for (i, e) in self.edges.iter().enumerate() {
            p *= if mask.alive(i) {
                1.0 - e.fail_prob
            } else {
                e.fail_prob
            };
        }
        p
    }

    /// Sum of all edge capacities incident to `n` (an upper bound on the flow
    /// through `n`, used for quick infeasibility checks).
    pub fn incident_capacity(&self, n: NodeId) -> u64 {
        self.edges
            .iter()
            .filter(|e| e.src == n || e.dst == n)
            .map(|e| e.capacity)
            .sum()
    }

    /// Extracts the subnetwork induced by `nodes` (a sorted, deduplicated node
    /// list), keeping every edge whose **both** endpoints are in `nodes` and
    /// that is alive in `edge_filter` (pass `None` to keep all such edges).
    ///
    /// Returns the subnetwork together with the node mapping
    /// (`old NodeId → new NodeId`) and, for each new edge, its old `EdgeId`.
    pub fn induced(
        &self,
        nodes: &[NodeId],
        edge_filter: Option<&crate::bitset::BitSet>,
    ) -> (Network, NodeMap, Vec<EdgeId>) {
        let mut to_new = vec![None; self.node_count];
        for (new, &old) in nodes.iter().enumerate() {
            to_new[old.index()] = Some(NodeId::from(new));
        }
        let mut edges = Vec::new();
        let mut spectra = Vec::new();
        let mut edge_origin = Vec::new();
        for (i, e) in self.edges.iter().enumerate() {
            if let Some(f) = edge_filter {
                if !f.contains(i) {
                    continue;
                }
            }
            if let (Some(ns), Some(nd)) = (to_new[e.src.index()], to_new[e.dst.index()]) {
                edges.push(Edge {
                    src: ns,
                    dst: nd,
                    ..*e
                });
                spectra.push(self.spectrum(EdgeId::from(i)).cloned());
                edge_origin.push(EdgeId::from(i));
            }
        }
        let net = Network {
            kind: self.kind,
            node_count: nodes.len(),
            edges,
            spectra,
        };
        (net, NodeMap { to_new }, edge_origin)
    }
}

/// Mapping from the node ids of a parent network to an induced subnetwork.
#[derive(Clone, Debug)]
pub struct NodeMap {
    to_new: Vec<Option<NodeId>>,
}

impl NodeMap {
    /// The new id of `old`, or `None` if it was not kept.
    #[inline]
    pub fn get(&self, old: NodeId) -> Option<NodeId> {
        self.to_new.get(old.index()).copied().flatten()
    }
}

/// Incremental builder for [`Network`].
///
/// ```
/// use netgraph::{NetworkBuilder, GraphKind, NodeId};
/// let mut b = NetworkBuilder::new(GraphKind::Directed);
/// let s = b.add_node();
/// let t = b.add_node();
/// b.add_edge(s, t, 3, 0.1).unwrap();
/// let net = b.build();
/// assert_eq!(net.node_count(), 2);
/// assert_eq!(net.edge_count(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct NetworkBuilder {
    kind: GraphKind,
    node_count: usize,
    edges: Vec<Edge>,
    spectra: Vec<Option<CapacitySpectrum>>,
}

impl NetworkBuilder {
    /// Starts an empty network of the given directionality.
    pub fn new(kind: GraphKind) -> Self {
        NetworkBuilder {
            kind,
            node_count: 0,
            edges: Vec::new(),
            spectra: Vec::new(),
        }
    }

    /// Starts a network with `n` pre-allocated nodes.
    pub fn with_nodes(kind: GraphKind, n: usize) -> Self {
        NetworkBuilder {
            kind,
            node_count: n,
            edges: Vec::new(),
            spectra: Vec::new(),
        }
    }

    /// Adds one node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::from(self.node_count);
        self.node_count += 1;
        id
    }

    /// Adds `n` nodes and returns their ids.
    pub fn add_nodes(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_node()).collect()
    }

    /// Current number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Current number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds a link from `src` to `dst` with capacity `capacity` and failure
    /// probability `fail_prob ∈ [0, 1]`; returns its id.
    ///
    /// `fail_prob = 1` is accepted: an always-down link, which behaves
    /// exactly like a deleted one in every calculation.
    pub fn add_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: u64,
        fail_prob: f64,
    ) -> Result<EdgeId, GraphError> {
        if src.index() >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: src,
                node_count: self.node_count,
            });
        }
        if dst.index() >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: dst,
                node_count: self.node_count,
            });
        }
        if !(0.0..=1.0).contains(&fail_prob) {
            return Err(GraphError::InvalidProbability {
                edge: EdgeId::from(self.edges.len()),
                prob: fail_prob,
            });
        }
        let id = EdgeId::from(self.edges.len());
        self.edges.push(Edge {
            src,
            dst,
            capacity,
            fail_prob,
        });
        self.spectra.push(None);
        Ok(id)
    }

    /// Adds a link whose capacity is drawn from the discrete distribution
    /// `states = [(capacity, prob); k]`; returns its id.
    ///
    /// The state list is validated and normalized (sorted ascending,
    /// duplicate capacities merged, zero-probability states dropped,
    /// probabilities summing to 1 within [`crate::SPECTRUM_SUM_EPS`]).
    /// Degenerate shapes collapse to what they are: a single state becomes
    /// a deterministic link, and a `{0, c}` pair becomes a plain binary
    /// link — bit-identical to `add_edge(src, dst, c, p)`. Only genuinely
    /// multi-state spectra are stored as such.
    pub fn add_spectrum_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        states: &[(u64, f64)],
    ) -> Result<EdgeId, GraphError> {
        let form = classify_spectrum(states).map_err(|reason| GraphError::InvalidSpectrum {
            edge: EdgeId::from(self.edges.len()),
            reason,
        })?;
        match form {
            SpectrumForm::Deterministic { capacity } => self.add_edge(src, dst, capacity, 0.0),
            SpectrumForm::Binary {
                capacity,
                fail_prob,
            } => self.add_edge(src, dst, capacity, fail_prob),
            SpectrumForm::Multi(sp) => {
                let id = self.add_edge(src, dst, sp.max_capacity(), sp.down_prob())?;
                self.spectra[id.index()] = Some(sp);
                Ok(id)
            }
        }
    }

    /// Adds a perfectly reliable link (`p = 0`).
    pub fn add_perfect_edge(
        &mut self,
        src: NodeId,
        dst: NodeId,
        capacity: u64,
    ) -> Result<EdgeId, GraphError> {
        self.add_edge(src, dst, capacity, 0.0)
    }

    /// Finalizes the network.
    pub fn build(self) -> Network {
        Network {
            kind: self.kind,
            node_count: self.node_count,
            edges: self.edges,
            spectra: self.spectra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_node_net() -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let s = b.add_node();
        let t = b.add_node();
        b.add_edge(s, t, 2, 0.25).unwrap();
        b.add_edge(s, t, 1, 0.5).unwrap();
        b.build()
    }

    #[test]
    fn builder_basic() {
        let net = two_node_net();
        assert_eq!(net.node_count(), 2);
        assert_eq!(net.edge_count(), 2);
        assert_eq!(net.edge(EdgeId(0)).capacity, 2);
        assert_eq!(net.kind(), GraphKind::Directed);
    }

    #[test]
    fn builder_rejects_bad_nodes() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let s = b.add_node();
        let err = b.add_edge(s, NodeId(5), 1, 0.1).unwrap_err();
        assert!(matches!(err, GraphError::NodeOutOfRange { .. }));
    }

    #[test]
    fn builder_rejects_bad_probability() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let s = b.add_node();
        let t = b.add_node();
        assert!(matches!(
            b.add_edge(s, t, 1, 1.5),
            Err(GraphError::InvalidProbability { .. })
        ));
        assert!(matches!(
            b.add_edge(s, t, 1, -0.1),
            Err(GraphError::InvalidProbability { .. })
        ));
        assert!(matches!(
            b.add_edge(s, t, 1, f64::NAN),
            Err(GraphError::InvalidProbability { .. })
        ));
        assert!(b.add_edge(s, t, 1, 0.0).is_ok());
        // p = 1 is a legitimate degenerate model: an always-down link.
        assert!(b.add_edge(s, t, 1, 1.0).is_ok());
    }

    #[test]
    fn spectrum_edges_normalize_and_store() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let s = b.add_node();
        let t = b.add_node();
        let det = b.add_spectrum_edge(s, t, &[(5, 1.0)]).unwrap();
        let bin = b.add_spectrum_edge(s, t, &[(0, 0.25), (3, 0.75)]).unwrap();
        let multi = b
            .add_spectrum_edge(s, t, &[(0, 0.2), (2, 0.3), (4, 0.5)])
            .unwrap();
        assert!(matches!(
            b.add_spectrum_edge(s, t, &[(1, 0.5), (2, 0.6)]),
            Err(GraphError::InvalidSpectrum { .. })
        ));
        let net = b.build();
        assert!(net.spectrum(det).is_none());
        assert_eq!(net.edge(det).capacity, 5);
        assert_eq!(net.edge(det).fail_prob, 0.0);
        assert!(net.spectrum(bin).is_none());
        assert_eq!(net.edge(bin).capacity, 3);
        assert_eq!(net.edge(bin).fail_prob, 0.25);
        let sp = net.spectrum(multi).expect("multi-state spectrum stored");
        assert_eq!(sp.states(), &[(0, 0.2), (2, 0.3), (4, 0.5)]);
        assert_eq!(net.edge(multi).capacity, 4);
        assert!((net.edge(multi).fail_prob - 0.2).abs() < 1e-15);
        assert!(net.has_multistate());
        assert_eq!(net.multistate_count(), 1);
    }

    #[test]
    fn induced_carries_spectra() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(3);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_spectrum_edge(n[1], n[2], &[(0, 0.5), (1, 0.25), (2, 0.25)])
            .unwrap();
        let net = b.build();
        let (sub, _, origin) = net.induced(&[n[1], n[2]], None);
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(origin, vec![EdgeId(1)]);
        assert!(sub.has_multistate());
        assert_eq!(
            sub.spectrum(EdgeId(0)).map(|s| s.k()),
            net.spectrum(EdgeId(1)).map(|s| s.k())
        );
    }

    #[test]
    fn edge_mask_basics() {
        let m = EdgeMask::from_bits(0b101, 3);
        assert!(m.alive(0) && !m.alive(1) && m.alive(2));
        assert_eq!(m.alive_count(), 2);
        assert_eq!(m.iter_alive().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(m.with_failed(0).bits(), 0b100);
        assert_eq!(m.with_alive(1).bits(), 0b111);
        assert!(m.is_subset(EdgeMask::all_alive(3)));
        assert!(!EdgeMask::all_alive(3).is_subset(m));
    }

    #[test]
    fn edge_mask_trims_extra_bits() {
        let m = EdgeMask::from_bits(u64::MAX, 3);
        assert_eq!(m.bits(), 0b111);
        assert_eq!(EdgeMask::all_alive(64).alive_count(), 64);
        assert_eq!(EdgeMask::all_failed(5).alive_count(), 0);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn edge_mask_rejects_len_over_64() {
        EdgeMask::from_bits(0, 65);
    }

    #[test]
    fn config_probability_products() {
        let net = two_node_net();
        // p(e0)=0.25, p(e1)=0.5
        let both = EdgeMask::all_alive(2);
        assert!((net.config_probability(both) - 0.75 * 0.5).abs() < 1e-15);
        let none = EdgeMask::all_failed(2);
        assert!((net.config_probability(none) - 0.25 * 0.5).abs() < 1e-15);
        let first = EdgeMask::from_bits(0b01, 2);
        assert!((net.config_probability(first) - 0.75 * 0.5).abs() < 1e-15);
        let second = EdgeMask::from_bits(0b10, 2);
        assert!((net.config_probability(second) - 0.25 * 0.5).abs() < 1e-15);
    }

    #[test]
    fn config_probabilities_sum_to_one() {
        let net = two_node_net();
        let total: f64 = (0u64..4)
            .map(|bits| net.config_probability(EdgeMask::from_bits(bits, 2)))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn induced_subnetwork() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(4);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap(); // kept
        b.add_edge(n[1], n[2], 2, 0.2).unwrap(); // dropped (n2 not kept)
        b.add_edge(n[0], n[3], 3, 0.3).unwrap(); // kept
        let net = b.build();
        let (sub, map, origin) = net.induced(&[n[0], n[1], n[3]], None);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 2);
        assert_eq!(origin, vec![EdgeId(0), EdgeId(2)]);
        assert_eq!(map.get(n[0]), Some(NodeId(0)));
        assert_eq!(map.get(n[2]), None);
        assert_eq!(sub.edge(EdgeId(1)).dst, NodeId(2)); // n3 renumbered
        assert_eq!(sub.edge(EdgeId(1)).capacity, 3);
    }

    #[test]
    fn induced_with_edge_filter() {
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let n = b.add_nodes(2);
        b.add_edge(n[0], n[1], 1, 0.1).unwrap();
        b.add_edge(n[0], n[1], 2, 0.2).unwrap();
        let net = b.build();
        let mut keep = crate::bitset::BitSet::new(2);
        keep.insert(1);
        let (sub, _, origin) = net.induced(&[n[0], n[1]], Some(&keep));
        assert_eq!(sub.edge_count(), 1);
        assert_eq!(origin, vec![EdgeId(1)]);
        assert_eq!(sub.edge(EdgeId(0)).capacity, 2);
    }

    #[test]
    fn incident_capacity_sums_both_directions() {
        let net = two_node_net();
        assert_eq!(net.incident_capacity(NodeId(0)), 3);
        assert_eq!(net.incident_capacity(NodeId(1)), 3);
    }
}
