//! Error type shared by graph construction and queries.

use std::fmt;

use crate::ids::{EdgeId, NodeId};

/// Errors produced while building or querying a [`crate::Network`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A node index referenced a node that does not exist.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Number of nodes in the network.
        node_count: usize,
    },
    /// An edge index referenced an edge that does not exist.
    EdgeOutOfRange {
        /// The offending edge.
        edge: EdgeId,
        /// Number of edges in the network.
        edge_count: usize,
    },
    /// A failure probability was outside `[0, 1]`.
    ///
    /// The paper requires `p(e) ∈ [0, 1)`, but `p(e) = 1` is accepted as a
    /// legitimate degenerate model: an always-down link that behaves exactly
    /// like a deleted one.
    InvalidProbability {
        /// The offending edge (by insertion order).
        edge: EdgeId,
        /// The rejected value.
        prob: f64,
    },
    /// A capacity spectrum failed validation (probabilities outside `[0, 1]`,
    /// not summing to 1, or no states).
    InvalidSpectrum {
        /// The offending edge (by insertion order).
        edge: EdgeId,
        /// Human-readable rejection reason.
        reason: String,
    },
    /// Tranche-expanding multi-state links would exceed the edge-mask
    /// capacity of the enumeration machinery.
    ExpansionTooLarge {
        /// Number of expanded arcs required.
        arcs: usize,
        /// The supported maximum.
        max: usize,
    },
    /// The operation requires a network with at least one node.
    EmptyNetwork,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node {node} out of range (network has {node_count} nodes)"
                )
            }
            GraphError::EdgeOutOfRange { edge, edge_count } => {
                write!(
                    f,
                    "edge {edge} out of range (network has {edge_count} edges)"
                )
            }
            GraphError::InvalidProbability { edge, prob } => {
                write!(
                    f,
                    "edge {edge} has failure probability {prob}, expected [0, 1]"
                )
            }
            GraphError::InvalidSpectrum { edge, reason } => {
                write!(f, "edge {edge} has an invalid capacity spectrum: {reason}")
            }
            GraphError::ExpansionTooLarge { arcs, max } => {
                write!(
                    f,
                    "multi-state expansion needs {arcs} arcs, supported maximum is {max}"
                )
            }
            GraphError::EmptyNetwork => write!(f, "operation requires a non-empty network"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GraphError::InvalidProbability {
            edge: EdgeId(3),
            prob: 1.5,
        };
        assert!(e.to_string().contains("e3"));
        assert!(e.to_string().contains("1.5"));
        let e = GraphError::NodeOutOfRange {
            node: NodeId(9),
            node_count: 4,
        };
        assert!(e.to_string().contains("n9"));
        assert!(e.to_string().contains('4'));
    }
}
