//! Bridge detection (Tarjan low-link), in the undirected sense.
//!
//! A bridge is a single link whose removal disconnects its endpoints — the
//! `k = 1` bottleneck case of the paper (Fig. 2). Parallel edges are handled
//! correctly (two parallel links are never bridges): the DFS excludes only the
//! specific tree edge used to reach a node, not every edge to its parent.

use crate::adjacency::Adjacency;
use crate::ids::{EdgeId, NodeId};
use crate::network::Network;

/// Returns the bridges of `net` (undirected sense), in increasing edge order.
pub fn find_bridges(net: &Network) -> Vec<EdgeId> {
    let adj = Adjacency::undirected(net);
    let n = net.node_count();
    let mut disc = vec![0u32; n]; // 0 = unvisited; otherwise discovery time + 1
    let mut low = vec![0u32; n];
    let mut bridges = Vec::new();
    let mut time = 1u32;

    // Iterative DFS; each frame is (node, incoming tree edge, next child index).
    let mut stack: Vec<(NodeId, Option<EdgeId>, usize)> = Vec::new();
    for root in 0..n {
        if disc[root] != 0 {
            continue;
        }
        disc[root] = time;
        low[root] = time;
        time += 1;
        stack.push((NodeId::from(root), None, 0));
        while let Some(&mut (u, via, ref mut idx)) = stack.last_mut() {
            let edges = adj.out_edges(u);
            if *idx < edges.len() {
                let (e, v) = edges[*idx];
                *idx += 1;
                if Some(e) == via {
                    continue; // don't reuse the tree edge we arrived on
                }
                if disc[v.index()] == 0 {
                    disc[v.index()] = time;
                    low[v.index()] = time;
                    time += 1;
                    stack.push((v, Some(e), 0));
                } else {
                    low[u.index()] = low[u.index()].min(disc[v.index()]);
                }
            } else {
                stack.pop();
                if let Some(&mut (parent, _, _)) = stack.last_mut() {
                    low[parent.index()] = low[parent.index()].min(low[u.index()]);
                    if low[u.index()] > disc[parent.index()] {
                        // the tree edge into u is a bridge
                        if let Some(e) = via {
                            bridges.push(e);
                        }
                    }
                }
            }
        }
    }
    bridges.sort_unstable();
    bridges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{GraphKind, NetworkBuilder};
    use proptest::prelude::*;

    fn build(n: usize, edges: &[(usize, usize)]) -> Network {
        let mut b = NetworkBuilder::new(GraphKind::Undirected);
        let ns = b.add_nodes(n);
        for &(u, v) in edges {
            b.add_edge(ns[u], ns[v], 1, 0.1).unwrap();
        }
        b.build()
    }

    #[test]
    fn path_all_bridges() {
        let net = build(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(find_bridges(&net), vec![EdgeId(0), EdgeId(1), EdgeId(2)]);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let net = build(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(find_bridges(&net).is_empty());
    }

    #[test]
    fn two_triangles_one_bridge() {
        let net = build(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]);
        assert_eq!(find_bridges(&net), vec![EdgeId(6)]);
    }

    #[test]
    fn parallel_edges_are_not_bridges() {
        let net = build(2, &[(0, 1), (0, 1)]);
        assert!(find_bridges(&net).is_empty());
        let net = build(2, &[(0, 1)]);
        assert_eq!(find_bridges(&net), vec![EdgeId(0)]);
    }

    #[test]
    fn disconnected_graph_handled() {
        let net = build(4, &[(0, 1), (2, 3)]);
        assert_eq!(find_bridges(&net), vec![EdgeId(0), EdgeId(1)]);
    }

    #[test]
    fn self_loop_is_not_a_bridge() {
        let net = build(2, &[(0, 0), (0, 1)]);
        assert_eq!(find_bridges(&net), vec![EdgeId(1)]);
    }

    /// Brute-force oracle: e is a bridge iff removing it disconnects its
    /// endpoints.
    fn bridges_brute(net: &Network) -> Vec<EdgeId> {
        use crate::bitset::BitSet;
        use crate::traverse::is_connected_st;
        let m = net.edge_count();
        let mut out = Vec::new();
        for (id, e) in net.edge_refs() {
            if e.src == e.dst {
                continue;
            }
            let mut alive = BitSet::full(m);
            alive.remove(id.index());
            if !is_connected_st(net, e.src, e.dst, Some(&alive)) {
                out.push(id);
            }
        }
        out
    }

    proptest! {
        #[test]
        fn prop_matches_bruteforce(
            n in 2usize..9,
            raw_edges in proptest::collection::vec((0usize..8, 0usize..8), 1..16),
        ) {
            let edges: Vec<(usize, usize)> =
                raw_edges.into_iter().map(|(u, v)| (u % n, v % n)).collect();
            let net = build(n, &edges);
            prop_assert_eq!(find_bridges(&net), bridges_brute(&net));
        }
    }
}
