//! ABL-MF: the max-flow oracle choice (the inner loop of every reliability
//! algorithm) across the bundled solvers, on an overlay-scale graph and on
//! the limited `flow ≥ d` query the sweeps actually issue.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowrel_overlay::{random_mesh, ChurnModel, Peer};
use maxflow::{build_flow, SolverKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("maxflow_solvers");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let peers: Vec<Peer> = (0..64).map(|i| Peer::new(4, 300.0 + i as f64)).collect();
    let sc = random_mesh(&peers, 4, 4, &ChurnModel::new(60.0), 99);
    let sub = *sc.peers.last().unwrap();
    for kind in SolverKind::ALL {
        group.bench_with_input(
            BenchmarkId::new("full", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut nf = build_flow(&sc.net, sc.server, sub);
                    nf.apply_all_alive();
                    kind.solve(&mut nf.graph, nf.source, nf.sink, u64::MAX)
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("limit4", format!("{kind:?}")),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    let mut nf = build_flow(&sc.net, sc.server, sub);
                    nf.apply_all_alive();
                    kind.solve(&mut nf.graph, nf.source, nf.sink, 4)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
