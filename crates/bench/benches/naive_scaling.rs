//! FIG1: cost of the naive `2^|E|` enumeration (Fig. 1's procedure) as the
//! link count grows. The series must double per added link.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowrel_bench::{barbell_with_edges, demand_of};
use flowrel_core::{reliability_naive, CalcOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_naive_scaling");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for edges in [10usize, 12, 14, 16, 18] {
        let (inst, _) = barbell_with_edges(edges, 2, 2, 21);
        let d = demand_of(&inst);
        let opts = CalcOptions::default();
        group.bench_with_input(
            BenchmarkId::from_parameter(inst.net.edge_count()),
            &inst,
            |b, inst| b.iter(|| reliability_naive(&inst.net, d, &opts).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
