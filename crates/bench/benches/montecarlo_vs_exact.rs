//! ABL-MC: Monte-Carlo sampling vs the exact algorithms — the practical
//! trade-off the paper's exponential-but-exact approach competes against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowrel_bench::{barbell_with_edges, demand_of};
use flowrel_core::{reliability_bottleneck, reliability_factoring, CalcOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("montecarlo_vs_exact");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let (inst, cut) = barbell_with_edges(18, 2, 2, 13);
    let d = demand_of(&inst);
    let opts = CalcOptions::default();

    group.bench_function("exact_bottleneck", |b| {
        b.iter(|| reliability_bottleneck(&inst.net, d, &cut, &opts).unwrap())
    });
    group.bench_function("exact_factoring", |b| {
        b.iter(|| reliability_factoring(&inst.net, d, &opts).unwrap())
    });
    for samples in [1_000u64, 10_000, 100_000] {
        group.bench_with_input(
            BenchmarkId::new("monte_carlo", samples),
            &samples,
            |b, &samples| {
                b.iter(|| {
                    montecarlo::estimate(&inst.net, inst.source, inst.sink, d.demand, samples, 3)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
