//! ABL-MEM: the paper-faithful `2^{|E_c|}` realization array (Section III-C)
//! vs the streamed spectrum. Same max-flow work; the array additionally
//! materializes one mask per configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowrel_bench::{barbell_with_edges, demand_of};
use flowrel_core::{
    decompose, enumerate_assignments, validate_bottleneck_set, RealizationSpectrum,
    RealizationTable, SideOracle,
};
use maxflow::SolverKind;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_vs_spectrum");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for edges in [16usize, 20, 24] {
        let (inst, cut) = barbell_with_edges(edges, 2, 2, 47);
        let d = demand_of(&inst);
        let set = validate_bottleneck_set(&inst.net, d.source, d.sink, &cut).unwrap();
        let dec = decompose(&inst.net, &d, &set);
        let ranges: Vec<(i64, i64)> = cut
            .iter()
            .map(|&e| {
                (
                    0i64,
                    (inst.net.edge(e).capacity as i64).min(d.demand as i64),
                )
            })
            .collect();
        let assignments = enumerate_assignments(d.demand, &ranges);
        let weights = flowrel_core::edge_weights(&dec.side_s.net);
        let m = dec.side_s.net.edge_count();

        group.bench_with_input(BenchmarkId::new("table", m), &m, |b, _| {
            b.iter(|| {
                let mut o = SideOracle::new(&dec.side_s, &assignments, SolverKind::Dinic).unwrap();
                RealizationTable::build(&mut o, 30, 20, true).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("spectrum", m), &m, |b, _| {
            b.iter(|| {
                let mut o = SideOracle::new(&dec.side_s, &assignments, SolverKind::Dinic).unwrap();
                RealizationSpectrum::<f64>::build(&mut o, &weights, 30, 20, true).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
