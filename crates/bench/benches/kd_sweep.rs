//! ABL-KD: the constant factor of the paper's bound grows with `d^k`
//! (assignment count) and `2^k` (bottleneck configurations). Sweep both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowrel_bench::{barbell_with_edges, demand_of};
use flowrel_core::{reliability_bottleneck, CalcOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("kd_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for k in [1usize, 2, 3] {
        for d in [1u64, 2, 3] {
            let (inst, cut) = barbell_with_edges(16, k, d, 55);
            let dem = demand_of(&inst);
            // the paper's model: the ablation measures the paper's own
            // 2^{d^k} constant factor
            let opts = CalcOptions {
                max_assignments: 31,
                assignment_model: flowrel_core::AssignmentModel::ForwardOnly,
                ..CalcOptions::default()
            };
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("k={k}_d={d}")),
                &inst,
                |b, inst| b.iter(|| reliability_bottleneck(&inst.net, dem, &cut, &opts).unwrap()),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
