//! ABL-PAR + option ablations: rayon-parallel enumeration vs serial (on a
//! single-core host this measures overhead, i.e. the shape only), the
//! perfect-link factoring shortcut, assignment pruning, and the factoring
//! algorithm vs the naive sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use flowrel_bench::{barbell_with_edges, demand_of};
use flowrel_core::{reliability_bottleneck, reliability_factoring, reliability_naive, CalcOptions};
use netgraph::{GraphKind, NetworkBuilder};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_and_options");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let (inst, cut) = barbell_with_edges(16, 2, 2, 91);
    let d = demand_of(&inst);

    group.bench_function("naive_serial", |b| {
        b.iter(|| reliability_naive(&inst.net, d, &CalcOptions::default()).unwrap())
    });
    group.bench_function("naive_parallel", |b| {
        b.iter(|| reliability_naive(&inst.net, d, &CalcOptions::parallel()).unwrap())
    });
    group.bench_function("factoring", |b| {
        b.iter(|| reliability_factoring(&inst.net, d, &CalcOptions::default()).unwrap())
    });
    let no_prune = CalcOptions {
        prune_infeasible_assignments: false,
        ..CalcOptions::default()
    };
    group.bench_function("bottleneck_pruned", |b| {
        b.iter(|| reliability_bottleneck(&inst.net, d, &cut, &CalcOptions::default()).unwrap())
    });
    group.bench_function("bottleneck_unpruned", |b| {
        b.iter(|| reliability_bottleneck(&inst.net, d, &cut, &no_prune).unwrap())
    });

    // perfect-link factoring: half the links never fail
    let mut nb = NetworkBuilder::new(GraphKind::Undirected);
    let nodes = nb.add_nodes(8);
    for i in 0..7 {
        nb.add_edge(nodes[i], nodes[i + 1], 2, 0.0).unwrap(); // perfect backbone
        nb.add_edge(nodes[i], nodes[(i + 2) % 8], 1, 0.1).unwrap();
    }
    let net2 = nb.build();
    let d2 = flowrel_core::FlowDemand::new(nodes[0], nodes[7], 1);
    group.bench_function("perfect_links_factored", |b| {
        b.iter(|| reliability_naive(&net2, d2, &CalcOptions::default()).unwrap())
    });
    let no_factor = CalcOptions {
        factor_perfect_links: false,
        ..CalcOptions::default()
    };
    group.bench_function("perfect_links_enumerated", |b| {
        b.iter(|| reliability_naive(&net2, d2, &no_factor).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
