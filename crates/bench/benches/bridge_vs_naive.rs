//! FIG2: Eq. 1's bridge decomposition against the naive sweep on bridge
//! chains — the `k = 1` special case of the main theorem.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowrel_core::{reliability_bridge, reliability_naive, CalcOptions, FlowDemand};
use workloads::generators::bridge_chain;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_bridge_vs_naive");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for segments in [2usize, 3, 4] {
        let inst = bridge_chain(segments, 1, 19);
        let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
        let opts = CalcOptions::default();
        let m = inst.net.edge_count();
        group.bench_with_input(BenchmarkId::new("naive", m), &inst, |b, inst| {
            b.iter(|| reliability_naive(&inst.net, d, &opts).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bridge", m), &inst, |b, inst| {
            b.iter(|| reliability_bridge(&inst.net, d, &opts).unwrap())
        });
    }
    // bridge decomposition scales far beyond the naive range
    for segments in [8usize, 12] {
        let inst = bridge_chain(segments, 1, 19);
        let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
        let opts = CalcOptions::default();
        group.bench_with_input(
            BenchmarkId::new("bridge", inst.net.edge_count()),
            &inst,
            |b, inst| b.iter(|| reliability_bridge(&inst.net, d, &opts).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
