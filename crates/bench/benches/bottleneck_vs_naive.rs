//! THM-MAIN: the headline claim — the bottleneck decomposition reduces the
//! exponent from `|E|` to `α|E|`. Naive and bottleneck run on the same
//! barbell family; their gap must widen exponentially with `|E|`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowrel_bench::{barbell_with_edges, demand_of};
use flowrel_core::{reliability_bottleneck, reliability_naive, CalcOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm_main");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for edges in [12usize, 14, 16, 18, 20] {
        let (inst, cut) = barbell_with_edges(edges, 2, 2, 33);
        let d = demand_of(&inst);
        let opts = CalcOptions::default();
        let m = inst.net.edge_count();
        group.bench_with_input(BenchmarkId::new("naive", m), &inst, |b, inst| {
            b.iter(|| reliability_naive(&inst.net, d, &opts).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bottleneck", m), &inst, |b, inst| {
            b.iter(|| reliability_bottleneck(&inst.net, d, &cut, &opts).unwrap())
        });
    }
    // bottleneck only, past naive's practical range
    for edges in [24usize, 28] {
        let (inst, cut) = barbell_with_edges(edges, 2, 2, 33);
        let d = demand_of(&inst);
        let opts = CalcOptions::default();
        group.bench_with_input(
            BenchmarkId::new("bottleneck", inst.net.edge_count()),
            &inst,
            |b, inst| b.iter(|| reliability_bottleneck(&inst.net, d, &cut, &opts).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
