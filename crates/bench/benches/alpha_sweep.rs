//! ABL-α: the decomposition's cost is governed by the *larger* side
//! (`2^{α|E|}`). Fixed total `|E|`, varying balance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowrel_bench::{demand_of, skewed_barbell};
use flowrel_core::{reliability_bottleneck, CalcOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let total = 20usize;
    for left in [10usize, 12, 14, 16] {
        let right = total - left;
        let (inst, cut) = skewed_barbell(left, right, 2, 1, 17);
        let d = demand_of(&inst);
        let opts = CalcOptions::default();
        let alpha = left as f64 / (total + 2) as f64;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("alpha={alpha:.2}")),
            &inst,
            |b, inst| b.iter(|| reliability_bottleneck(&inst.net, d, &cut, &opts).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
