//! ABL-ACC: the three evaluations of procedure ACCUMULATION (paper-direct,
//! zeta + inclusion–exclusion, complement identity) on the same instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flowrel_bench::{barbell_with_edges, demand_of};
use flowrel_core::{reliability_bottleneck, AccumulationMethod, CalcOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("accumulation_ablation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    let (inst, cut) = barbell_with_edges(18, 3, 3, 77);
    let d = demand_of(&inst);
    for method in [
        AccumulationMethod::PaperDirect,
        AccumulationMethod::ZetaInclusionExclusion,
        AccumulationMethod::Complement,
    ] {
        let opts = CalcOptions {
            accumulation: method,
            max_assignments: 31,
            assignment_model: flowrel_core::AssignmentModel::ForwardOnly,
            ..CalcOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{method:?}")),
            &inst,
            |b, inst| b.iter(|| reliability_bottleneck(&inst.net, d, &cut, &opts).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
