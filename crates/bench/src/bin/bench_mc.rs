//! Monte-Carlo engine benchmark: measures what conditional (dagger) sampling
//! and the permutation estimator buy over crude Monte-Carlo in the
//! rare-event regime, cross-checks every estimate against the exact
//! algorithms, and emits the results as machine-readable JSON
//! (`BENCH_mc.json`).
//!
//! The headline number is flow-evaluation efficiency: for a target relative
//! error `eps` on the unreliability `Q`, crude sampling needs about
//! `z² (1-Q) / (eps² Q)` feasibility solves, while the variance-reduced
//! estimators stop after the samples they actually drew. The run asserts
//! the ISSUE's acceptance bar — at least 10x fewer flow evaluations than
//! the crude requirement at `eps = 0.05` — and fails loudly if a change
//! regresses it.
//!
//! Usage: `bench_mc [--smoke] [output.json]`
//!
//! `--smoke` loosens the target so the whole matrix runs in well under a
//! second: a CI check that the engine still converges and covers, not a
//! measurement.

use flowrel_core::{CalcOptions, FlowDemand, ReliabilityCalculator, Strategy};
use montecarlo::{engine, EstimatorKind, McBudget, McOutcome, McReport, McSettings, StopTarget};
use netgraph::{EdgeId, GraphKind, Network, NetworkBuilder, NodeId};

/// 95% normal quantile, matching the engine's Wilson intervals.
const Z95: f64 = 1.96;

/// A rare-event barbell: two near-perfect 2-link clusters joined by a
/// 2-link bottleneck of moderately unreliable links. The unreliability is
/// dominated by the both-bottleneck-links-down event (`p_cut²`), which the
/// dagger estimator resolves *exactly* by classification, leaving only the
/// nearly-sure mixed strata to sample.
fn rare_barbell(p_cluster: f64, p_cut: f64) -> (Network, FlowDemand, Vec<EdgeId>) {
    let mut b = NetworkBuilder::new(GraphKind::Directed);
    let n = b.add_nodes(4);
    b.add_edge(n[0], n[1], 2, p_cluster).unwrap();
    b.add_edge(n[0], n[1], 2, p_cluster).unwrap();
    let c0 = b.add_edge(n[1], n[2], 1, p_cut).unwrap();
    let c1 = b.add_edge(n[1], n[2], 1, p_cut).unwrap();
    b.add_edge(n[2], n[3], 2, p_cluster).unwrap();
    b.add_edge(n[2], n[3], 2, p_cluster).unwrap();
    (b.build(), FlowDemand::new(n[0], n[3], 1), vec![c0, c1])
}

/// Two parallel links, `Q = p²` exactly: the `p -> 0` regime where crude
/// sampling is hopeless and the permutation estimator shines.
fn two_links(p: f64) -> (Network, FlowDemand) {
    let mut b = NetworkBuilder::new(GraphKind::Directed);
    let s = b.add_node();
    let t = b.add_node();
    b.add_edge(s, t, 1, p).unwrap();
    b.add_edge(s, t, 1, p).unwrap();
    (b.build(), FlowDemand::new(NodeId(0), NodeId(1), 1))
}

/// Exact reference on the *raw* instance: the structural reduction is
/// disabled so the reference's floating-point evaluation order stays fixed.
/// The dagger rows below classify every stratum exactly and report a
/// zero-width interval, so coverage is a bit-level comparison — reducing
/// first would shift the reference by an ulp and flip it spuriously.
fn exact_of(net: &Network, d: FlowDemand) -> f64 {
    ReliabilityCalculator::new()
        .with_strategy(Strategy::Factoring)
        .with_options(CalcOptions {
            reduce: false,
            ..CalcOptions::default()
        })
        .run_complete(net, d)
        .expect("exact reference")
        .reliability
}

/// Flow evaluations crude Monte-Carlo needs for a 95% half-width of
/// `eps * min(R, Q)` (one evaluation per sample).
fn crude_requirement(exact: f64, eps: f64) -> f64 {
    let q = exact.min(1.0 - exact).max(f64::MIN_POSITIVE);
    Z95 * Z95 * (1.0 - q) / (eps * eps * q)
}

struct Row {
    instance: &'static str,
    estimator: &'static str,
    exact: f64,
    report: McReport,
    eps: f64,
    crude_evals_required: f64,
    /// Whether this row is held to the 10x acceptance bar. The bar applies
    /// to an estimator matched to its regime (dagger on stratifiable
    /// instances, permutation in the rare-event limit); off-regime rows are
    /// reported for context only.
    assert_speedup: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.crude_evals_required / (self.report.flow_evals.max(1) as f64)
    }

    fn covers(&self) -> bool {
        self.report.ci_low <= self.exact && self.exact <= self.report.ci_high
    }

    fn json(&self) -> String {
        let r = &self.report;
        format!(
            concat!(
                "{{\"instance\": \"{}\", \"estimator\": \"{}\", \"exact\": {:.12e}, ",
                "\"mean\": {:.12e}, \"ci_low\": {:.12e}, \"ci_high\": {:.12e}, ",
                "\"std_error\": {:.6e}, \"exact_by_classification\": {}, ",
                "\"rel_err_target\": {}, \"samples\": {}, \"flow_evals\": {}, ",
                "\"crude_evals_required\": {:.3e}, \"speedup_flow_evals\": {:.1}, ",
                "\"held_to_10x_bar\": {}, \"covers\": {}}}"
            ),
            self.instance,
            self.estimator,
            self.exact,
            r.mean,
            r.ci_low,
            r.ci_high,
            r.std_error,
            r.exact,
            self.eps,
            r.samples,
            r.flow_evals,
            self.crude_evals_required,
            self.speedup(),
            self.assert_speedup,
            self.covers()
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn run_case(
    instance: &'static str,
    net: &Network,
    d: FlowDemand,
    estimator: EstimatorKind,
    strata: Vec<EdgeId>,
    eps: f64,
    max_samples: u64,
    exact: f64,
    assert_speedup: bool,
) -> Row {
    let settings = McSettings {
        seed: 20_260_805,
        estimator,
        strata,
        target: StopTarget {
            rel_err: Some(eps),
            ci_half: None,
            max_samples,
        },
        ..Default::default()
    };
    let out = engine::run(
        net,
        d.source,
        d.sink,
        d.demand,
        &settings,
        &McBudget::unlimited(),
        false,
    )
    .expect("engine run");
    let McOutcome::Done(report) = out else {
        unreachable!("an unlimited budget cannot interrupt");
    };
    Row {
        instance,
        estimator: report.estimator,
        exact,
        report,
        eps,
        crude_evals_required: crude_requirement(exact, eps),
        assert_speedup,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_mc.json".to_string());
    let (eps, max_samples) = if smoke {
        (0.2, 200_000)
    } else {
        (0.05, 2_000_000)
    };

    let mut rows = Vec::new();

    // Dagger vs crude on the rare-event barbell (Q ~= 1e-2, dominated by an
    // exactly-classified stratum; the mixed strata are nearly sure things).
    let (net, d, cut) = rare_barbell(1e-4, 0.1);
    let exact = exact_of(&net, d);
    rows.push(run_case(
        "rare-barbell",
        &net,
        d,
        EstimatorKind::Dagger,
        cut,
        eps,
        max_samples,
        exact,
        true,
    ));
    rows.push(run_case(
        "rare-barbell",
        &net,
        d,
        EstimatorKind::Permutation,
        Vec::new(),
        eps,
        max_samples,
        exact,
        false,
    ));

    // Permutation estimator in the true rare-event regime (Q = 1e-8):
    // crude would need ~1.5e12 samples at eps = 0.05.
    let (net2, d2) = two_links(1e-4);
    let exact2 = exact_of(&net2, d2);
    rows.push(run_case(
        "two-links-1e-4",
        &net2,
        d2,
        EstimatorKind::Permutation,
        Vec::new(),
        eps,
        max_samples,
        exact2,
        true,
    ));
    // Dagger stratifying *all* links classifies the same instance exactly.
    rows.push(run_case(
        "two-links-1e-4",
        &net2,
        d2,
        EstimatorKind::Dagger,
        vec![EdgeId(0), EdgeId(1)],
        eps,
        max_samples,
        exact2,
        true,
    ));

    let mut failures = Vec::new();
    for row in &rows {
        println!(
            "{:>16} {:>7}: mean {:.6e} (exact {:.6e}), {} samples, {} flow evals, \
             {:.0}x fewer evals than crude, covers={}",
            row.instance,
            row.estimator,
            row.report.mean,
            row.exact,
            row.report.samples,
            row.report.flow_evals,
            row.speedup(),
            row.covers()
        );
        if !row.covers() {
            failures.push(format!(
                "{} ({}): interval [{:.6e}, {:.6e}] misses exact {:.6e}",
                row.instance, row.estimator, row.report.ci_low, row.report.ci_high, row.exact
            ));
        }
        // The acceptance bar: the variance-reduced estimators reach the
        // target with at least 10x fewer flow evaluations than crude. Only
        // meaningful at the real target; smoke's loose eps shrinks the
        // crude requirement while the engine still pays its minimum batch.
        if !smoke && row.assert_speedup && row.speedup() < 10.0 {
            failures.push(format!(
                "{} ({}): only {:.1}x fewer flow evals than crude (need >= 10x)",
                row.instance,
                row.estimator,
                row.speedup()
            ));
        }
    }

    let body: Vec<String> = rows.iter().map(|r| format!("    {}", r.json())).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"bench_mc\",\n  \"smoke\": {smoke},\n  \"z\": {Z95},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
