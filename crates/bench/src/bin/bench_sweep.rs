//! Sweep-engine benchmark: measures what the shared configuration-sweep
//! engine ([`flowrel_core::sweep`]) buys on the naive and bottleneck paths —
//! wall time, configurations per second, solver calls avoided by
//! monotonicity certificates, and cache hit rates — and emits the results as
//! machine-readable JSON (`BENCH_sweep.json`).
//!
//! Usage: `bench_sweep [output.json]`

use std::time::Instant;

use flowrel_bench::{barbell_with_edges, demand_of, ring_barbell};
use flowrel_core::algorithm::reliability_bottleneck_weighted;
use flowrel_core::weight::edge_weights;
use flowrel_core::{reliability_naive_with_stats, CalcOptions, SweepStats};

/// One timed run: (reliability, stats, wall seconds). Best of `reps`.
fn time_best<F: FnMut() -> (f64, SweepStats)>(reps: usize, mut f: F) -> (f64, SweepStats, f64) {
    let mut best = f64::INFINITY;
    let mut out = (0.0, SweepStats::default());
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (out.0, out.1, best)
}

struct ModeRow {
    label: &'static str,
    reliability: f64,
    stats: SweepStats,
    seconds: f64,
}

fn mode_json(m: &ModeRow, baseline_seconds: f64) -> String {
    let cps = if m.seconds > 0.0 {
        m.stats.configs as f64 / m.seconds
    } else {
        0.0
    };
    format!(
        concat!(
            "{{\"mode\": \"{}\", \"wall_seconds\": {:.6}, \"configs\": {}, ",
            "\"configs_per_sec\": {:.1}, \"solver_calls\": {}, ",
            "\"solver_calls_avoided\": {}, \"cache_hit_rate\": {:.4}, ",
            "\"speedup_vs_baseline\": {:.3}}}"
        ),
        m.label,
        m.seconds,
        m.stats.configs,
        cps,
        m.stats.solver_calls,
        m.stats.solver_calls_avoided(),
        m.stats.hit_rate(),
        baseline_seconds / m.seconds.max(1e-12),
    )
}

fn opts(parallel: bool, certs: bool) -> CalcOptions {
    CalcOptions {
        parallel,
        certificate_cache: certs,
        ..Default::default()
    }
}

const MODES: [(&str, bool, bool); 4] = [
    ("serial", false, false),
    ("serial+certs", false, true),
    ("parallel", true, false),
    ("parallel+certs", true, true),
];

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let reps = 3;
    let mut cases = Vec::new();

    let mut graphs = Vec::new();
    for (target_edges, k, demand, seed) in [(18usize, 2usize, 2u64, 21u64), (20, 3, 2, 7)] {
        let (inst, cut) = barbell_with_edges(target_edges, k, demand, seed);
        graphs.push(("barbell", inst, cut));
    }
    // capacity-tight rings: every link is a unit-capacity bottleneck, the
    // regime where saturated-cut certificates refute the most configurations
    for (cluster_nodes, k, seed) in [(11usize, 4usize, 5u64), (13, 4, 9)] {
        let (inst, cut) = ring_barbell(cluster_nodes, k, seed);
        graphs.push(("ring", inst, cut));
    }

    for (family, inst, cut) in graphs {
        let d = demand_of(&inst);
        let k = cut.len();
        let demand = inst.demand;
        let edges = inst.net.edge_count();
        let name = format!("{family}_e{edges}_k{k}_d{demand}");
        eprintln!("== {name} ({edges} links, |cut|={k}, d={demand}) ==");
        let weights = edge_weights(&inst.net);

        // --- naive path (skipped for the larger graphs: 2^|E| is the point
        // of the bottleneck algorithm) ---
        let mut naive_rows = Vec::new();
        if edges <= 20 {
            for (label, par, certs) in MODES {
                let o = opts(par, certs);
                let (r, stats, secs) = time_best(reps, || {
                    reliability_naive_with_stats(&inst.net, d, &o).expect("naive")
                });
                eprintln!(
                    "  naive {label:>15}: {secs:>9.4}s  R={r:.9}  solves={} avoided={}",
                    stats.solver_calls,
                    stats.solver_calls_avoided()
                );
                naive_rows.push(ModeRow {
                    label,
                    reliability: r,
                    stats,
                    seconds: secs,
                });
            }
        }

        // --- bottleneck path ---
        let mut bn_rows = Vec::new();
        for (label, par, certs) in MODES {
            let o = opts(par, certs);
            let (r, stats, secs) = time_best(reps, || {
                let (r, report) = reliability_bottleneck_weighted(&inst.net, d, &cut, &weights, &o)
                    .expect("bottleneck");
                (r, report.sweep)
            });
            eprintln!(
                "  bottleneck {label:>10}: {secs:>9.4}s  R={r:.9}  solves={} avoided={}",
                stats.solver_calls,
                stats.solver_calls_avoided()
            );
            bn_rows.push(ModeRow {
                label,
                reliability: r,
                stats,
                seconds: secs,
            });
        }

        // all runs must agree on the reliability
        let r0 = naive_rows.first().unwrap_or(&bn_rows[0]).reliability;
        for row in naive_rows.iter().chain(&bn_rows) {
            assert!(
                (row.reliability - r0).abs() < 1e-12,
                "{name}/{}: {} vs {}",
                row.label,
                row.reliability,
                r0
            );
        }

        let base_bn = bn_rows[0].seconds;
        let naive_json: Vec<String> = naive_rows
            .iter()
            .map(|m| mode_json(m, naive_rows[0].seconds))
            .collect();
        let bn_json: Vec<String> = bn_rows.iter().map(|m| mode_json(m, base_bn)).collect();
        cases.push(format!(
            concat!(
                "  {{\"case\": \"{}\", \"edges\": {}, \"cut_links\": {}, \"demand\": {}, ",
                "\"reliability\": {:.12},\n   \"naive\": [\n    {}\n   ],\n",
                "   \"bottleneck\": [\n    {}\n   ]}}"
            ),
            name,
            edges,
            k,
            demand,
            r0,
            naive_json.join(",\n    "),
            bn_json.join(",\n    "),
        ));
    }

    let json = format!(
        "{{\n \"bench\": \"sweep_engine\",\n \"threads\": {},\n \"cases\": [\n{}\n ]\n}}\n",
        rayon_threads(),
        cases.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_sweep.json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}

fn rayon_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
