//! Sweep-engine benchmark: measures what the shared configuration-sweep
//! engine ([`flowrel_core::sweep`]) buys on the naive and bottleneck paths —
//! wall time, configurations per second, solver calls avoided by
//! monotonicity certificates, warm-flow repairs by the incremental oracle —
//! and emits the results as machine-readable JSON (`BENCH_sweep.json`).
//!
//! Usage: `bench_sweep [--smoke] [output.json]`
//!
//! `--smoke` runs one rep on small graphs: a seconds-scale CI check that the
//! full mode matrix still executes and agrees, not a measurement.
//!
//! ## JSON schema
//!
//! Every mode row — measured or skipped — carries the same key set: `mode`,
//! `solver`, `wall_seconds`, `configs`, `configs_per_sec`, `solver_calls`,
//! `solver_calls_avoided`, `cache_hit_rate`, `flips`, `repairs`,
//! `full_resolves`, `speedup_vs_baseline`, `skipped`. Skipped rows (the
//! naive path on graphs past the `2^|E|` budget) null every metric and set
//! `skipped` to the reason; measured rows set `skipped` to `null`.

use std::time::Instant;

use flowrel_bench::{barbell_with_edges, demand_of, ring_barbell, tight_barbell};
use flowrel_core::algorithm::reliability_bottleneck_weighted;
use flowrel_core::weight::edge_weights;
use flowrel_core::{reliability_naive_with_stats, CalcOptions, SweepStats};
use workloads::generators::{degraded_barbell, BarbellParams};

/// Naive enumeration is skipped above this many links (2^|E| solves).
const NAIVE_MAX_EDGES: usize = 20;

/// One timed run: (reliability, stats, wall seconds). Best of `reps`.
fn time_best<F: FnMut() -> (f64, SweepStats)>(reps: usize, mut f: F) -> (f64, SweepStats, f64) {
    let mut best = f64::INFINITY;
    let mut out = (0.0, SweepStats::default());
    for _ in 0..reps {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (out.0, out.1, best)
}

struct ModeRow {
    label: &'static str,
    solver: &'static str,
    reliability: f64,
    stats: SweepStats,
    seconds: f64,
}

fn mode_json(m: &ModeRow, baseline_seconds: f64) -> String {
    let cps = if m.seconds > 0.0 {
        m.stats.configs as f64 / m.seconds
    } else {
        0.0
    };
    format!(
        concat!(
            "{{\"mode\": \"{}\", \"solver\": \"{}\", \"wall_seconds\": {:.6}, ",
            "\"configs\": {}, \"configs_per_sec\": {:.1}, \"solver_calls\": {}, ",
            "\"solver_calls_avoided\": {}, \"cache_hit_rate\": {:.4}, ",
            "\"flips\": {}, \"repairs\": {}, \"full_resolves\": {}, ",
            "\"speedup_vs_baseline\": {:.3}, \"skipped\": null}}"
        ),
        m.label,
        m.solver,
        m.seconds,
        m.stats.configs,
        cps,
        m.stats.solver_calls,
        m.stats.solver_calls_avoided(),
        m.stats.hit_rate(),
        m.stats.flips,
        m.stats.repairs,
        m.stats.full_resolves,
        baseline_seconds / m.seconds.max(1e-12),
    )
}

/// A mode row that did not run: identical key set to [`mode_json`], every
/// metric `null`, and a non-null `skipped` reason — so JSON consumers can
/// treat skipped and measured rows uniformly and tell "not run" from "ran
/// and produced nothing".
fn skipped_mode_json(label: &str, solver: &str, reason: &str) -> String {
    format!(
        concat!(
            "{{\"mode\": \"{}\", \"solver\": \"{}\", \"wall_seconds\": null, ",
            "\"configs\": null, \"configs_per_sec\": null, \"solver_calls\": null, ",
            "\"solver_calls_avoided\": null, \"cache_hit_rate\": null, ",
            "\"flips\": null, \"repairs\": null, \"full_resolves\": null, ",
            "\"speedup_vs_baseline\": null, \"skipped\": \"{}\"}}"
        ),
        label, solver, reason,
    )
}

fn opts(parallel: bool, certs: bool, incremental: bool) -> CalcOptions {
    CalcOptions {
        parallel,
        certificate_cache: certs,
        incremental,
        ..Default::default()
    }
}

/// (label, parallel, certificates, incremental). The first four reproduce
/// the historical modes (incremental off, since the option now defaults on);
/// the last two measure what warm-flow repair adds on top.
const MODES: [(&str, bool, bool, bool); 7] = [
    ("serial", false, false, false),
    ("serial+certs", false, true, false),
    ("parallel", true, false, false),
    ("parallel+certs", true, true, false),
    ("serial+incremental", false, false, true),
    ("serial+certs+incremental", false, true, true),
    ("parallel+certs+incremental", true, true, true),
];

fn main() {
    let mut smoke = false;
    let mut out_path = "BENCH_sweep.json".to_string();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--help" | "-h" => {
                eprintln!("usage: bench_sweep [--smoke] [output.json]");
                return;
            }
            other => out_path = other.to_string(),
        }
    }
    let reps = if smoke { 1 } else { 3 };
    let mut cases = Vec::new();

    let mut graphs = Vec::new();
    let barbells: &[(usize, usize, u64, u64)] = if smoke {
        &[(14, 2, 2, 21)]
    } else {
        &[(18, 2, 2, 21), (20, 3, 2, 7)]
    };
    for &(target_edges, k, demand, seed) in barbells {
        let (inst, cut) = barbell_with_edges(target_edges, k, demand, seed);
        graphs.push(("barbell", inst, cut));
    }
    // capacity-tight rings: every link is a unit-capacity bottleneck, the
    // regime where saturated-cut certificates refute the most configurations
    let rings: &[(usize, usize, u64)] = if smoke {
        &[(7, 3, 5)]
    } else {
        &[(11, 4, 5), (13, 4, 9)]
    };
    for &(cluster_nodes, k, seed) in rings {
        let (inst, cut) = ring_barbell(cluster_nodes, k, seed);
        graphs.push(("ring", inst, cut));
    }
    // demand pinned to the all-alive max flow: the certificate-hostile
    // regime where warm-flow repair has to carry the sweep
    let tights: &[(usize, usize, usize, u64)] = if smoke {
        &[(4, 1, 3, 11)]
    } else {
        &[(6, 2, 4, 11), (7, 3, 4, 3)]
    };
    for &(n, extra, k, seed) in tights {
        let (inst, cut) = tight_barbell(n, extra, k, seed);
        graphs.push(("tight", inst, cut));
    }
    // degraded barbells: the cut links carry 3-state capacity spectra, so
    // the sweep enumerates a mixed-radix configuration space; the v1
    // planner keeps multi-state links out of cuts, so only the naive path
    // runs and the bottleneck rows are emitted as skipped
    let degradeds: &[(usize, usize, usize, u64)] = if smoke {
        &[(3, 1, 2, 7)]
    } else {
        &[(5, 3, 2, 21), (5, 3, 3, 7)]
    };
    for &(cluster_nodes, extra, k, seed) in degradeds {
        let (inst, cut) = degraded_barbell(BarbellParams {
            cluster_nodes,
            cluster_extra_edges: extra,
            cut_links: k,
            cut_capacity: 2,
            demand: 2,
            seed,
        });
        graphs.push(("degraded", inst, cut));
    }

    for (family, inst, cut) in graphs {
        let d = demand_of(&inst);
        let k = cut.len();
        let demand = inst.demand;
        let edges = inst.net.edge_count();
        let name = format!("{family}_e{edges}_k{k}_d{demand}");
        eprintln!("== {name} ({edges} links, |cut|={k}, d={demand}) ==");
        let weights = edge_weights(&inst.net);

        // --- naive path (skipped for the larger graphs: 2^|E| is the point
        // of the bottleneck algorithm) ---
        let mut naive_rows = Vec::new();
        let naive_skipped = edges > NAIVE_MAX_EDGES;
        if !naive_skipped {
            for (label, par, certs, incr) in MODES {
                let o = opts(par, certs, incr);
                let solver = o.solver.name();
                let (r, stats, secs) = time_best(reps, || {
                    reliability_naive_with_stats(&inst.net, d, &o).expect("naive")
                });
                eprintln!(
                    "  naive {label:>26}: {secs:>9.4}s  R={r:.9}  solves={} avoided={} repairs={}",
                    stats.solver_calls,
                    stats.solver_calls_avoided(),
                    stats.repairs,
                );
                naive_rows.push(ModeRow {
                    label,
                    solver,
                    reliability: r,
                    stats,
                    seconds: secs,
                });
            }
        }

        // --- bottleneck path (skipped when the cut carries capacity
        // spectra: the v1 planner keeps multi-state links out of cuts) ---
        let multistate = inst.net.has_multistate();
        let mut bn_rows = Vec::new();
        if !multistate {
            for (label, par, certs, incr) in MODES {
                let o = opts(par, certs, incr);
                let solver = o.solver.name();
                let (r, stats, secs) = time_best(reps, || {
                    let (r, report) =
                        reliability_bottleneck_weighted(&inst.net, d, &cut, &weights, &o)
                            .expect("bottleneck");
                    (r, report.sweep)
                });
                eprintln!(
                    "  bottleneck {label:>21}: {secs:>9.4}s  R={r:.9}  solves={} avoided={} repairs={}",
                    stats.solver_calls,
                    stats.solver_calls_avoided(),
                    stats.repairs,
                );
                bn_rows.push(ModeRow {
                    label,
                    solver,
                    reliability: r,
                    stats,
                    seconds: secs,
                });
            }
        }

        // the saturated-cut certificate cache must keep paying off when the
        // enumeration is mixed-radix, not just on bitmask sweeps
        if multistate {
            for row in &naive_rows {
                if row.label.contains("certs") {
                    assert!(
                        row.stats.hit_rate() > 0.9,
                        "{name}/{}: certificate-cache hit rate {:.4} must exceed 0.9 \
                         under mixed-radix enumeration",
                        row.label,
                        row.stats.hit_rate()
                    );
                }
            }
        }

        // all runs must agree on the reliability
        let r0 = naive_rows
            .first()
            .or(bn_rows.first())
            .expect("at least one path ran")
            .reliability;
        for row in naive_rows.iter().chain(&bn_rows) {
            assert!(
                (row.reliability - r0).abs() < 1e-12,
                "{name}/{}: {} vs {}",
                row.label,
                row.reliability,
                r0
            );
        }

        let naive_json = if naive_skipped {
            let reason = format!("2^{edges} configs over naive budget");
            let solver = CalcOptions::default().solver.name();
            format!(
                "[\n    {}\n   ]",
                MODES
                    .iter()
                    .map(|(label, ..)| skipped_mode_json(label, solver, &reason))
                    .collect::<Vec<_>>()
                    .join(",\n    ")
            )
        } else {
            format!(
                "[\n    {}\n   ]",
                naive_rows
                    .iter()
                    .map(|m| mode_json(m, naive_rows[0].seconds))
                    .collect::<Vec<_>>()
                    .join(",\n    ")
            )
        };
        let bn_json: Vec<String> = if multistate {
            let solver = CalcOptions::default().solver.name();
            MODES
                .iter()
                .map(|(label, ..)| {
                    skipped_mode_json(
                        label,
                        solver,
                        "multi-state cut links are not v1 bottlenecks",
                    )
                })
                .collect()
        } else {
            let base_bn = bn_rows[0].seconds;
            bn_rows.iter().map(|m| mode_json(m, base_bn)).collect()
        };
        cases.push(format!(
            concat!(
                "  {{\"case\": \"{}\", \"edges\": {}, \"cut_links\": {}, \"demand\": {}, ",
                "\"reliability\": {:.12},\n   \"naive\": {},\n",
                "   \"bottleneck\": [\n    {}\n   ]}}"
            ),
            name,
            edges,
            k,
            demand,
            r0,
            naive_json,
            bn_json.join(",\n    "),
        ));
    }

    let json = format!(
        "{{\n \"bench\": \"sweep_engine\",\n \"smoke\": {},\n \"threads\": {},\n \"cases\": [\n{}\n ]\n}}\n",
        smoke,
        rayon_threads(),
        cases.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_sweep.json");
    eprintln!("wrote {out_path}");
    print!("{json}");
}

fn rayon_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}
