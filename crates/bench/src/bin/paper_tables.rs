//! Regenerates every table and figure of the paper as text output, plus the
//! measured rows recorded in EXPERIMENTS.md.
//!
//! Usage: `paper_tables [fig1|fig2|ex1|fig4|fig5|table1|fig6|thm|p2p|all]`

use std::time::Instant;

use flowrel_bench::{barbell_with_edges, demand_of};
use flowrel_core::{
    decompose, enumerate_assignments, esary_proschan_bounds, find_bottleneck_set,
    reliability_bottleneck, reliability_bridge, reliability_factoring, reliability_naive,
    validate_bottleneck_set, AccumulationMethod, Assignment, AssignmentModel, CalcOptions,
    FlowDemand, RealizationTable, ReliabilityCalculator, SideOracle,
};
use flowrel_overlay::{hybrid_tree_mesh, multi_tree, random_mesh, single_tree, ChurnModel, Peer};
use maxflow::SolverKind;
use workloads::paper;

fn fmt_assignment(a: &Assignment) -> String {
    let inner: Vec<String> = a.amounts.iter().map(|x| x.to_string()).collect();
    format!("({})", inner.join(","))
}

/// FIG1: the naive procedure and its exponential cost.
fn fig1() {
    println!("=== FIG1: naive reliability calculation (Fig. 1) ===");
    println!(
        "{:>6} {:>10} {:>14} {:>14}",
        "|E|", "configs", "time", "reliability"
    );
    for target in [10usize, 12, 14, 16, 18] {
        let (inst, _) = barbell_with_edges(target, 2, 2, 21);
        let d = demand_of(&inst);
        let t0 = Instant::now();
        let r = reliability_naive(&inst.net, d, &CalcOptions::default()).unwrap();
        let dt = t0.elapsed();
        println!(
            "{:>6} {:>10} {:>14?} {:>14.9}",
            inst.net.edge_count(),
            1u64 << inst.net.edge_count(),
            dt,
            r
        );
    }
    println!("shape check: time roughly doubles per added link\n");
}

/// FIG2: the bridge decomposition (Eq. 1).
fn fig2() {
    println!("=== FIG2: graph with bridge (Fig. 2, Eq. 1) ===");
    let (inst, bridge) = paper::fig2_bridge();
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let opts = CalcOptions::default();
    let naive = reliability_naive(&inst.net, d, &opts).unwrap();
    let via_bridge = reliability_bridge(&inst.net, d, &opts).unwrap();
    let via_bottleneck = reliability_bottleneck(&inst.net, d, &[bridge], &opts).unwrap();
    println!("bridge link: {bridge} (the figure's red e9)");
    println!("naive enumeration        : {naive:.9}");
    println!("Eq. 1 decomposition      : {via_bridge:.9}");
    println!("bottleneck algorithm k=1 : {via_bottleneck:.9}");
    println!(
        "max |Δ| = {:.2e}\n",
        (naive - via_bridge)
            .abs()
            .max((naive - via_bottleneck).abs())
    );
}

/// EX1/FIG3: the assignment set of Example 1.
fn ex1() {
    println!("=== EX1 (Fig. 3): assignment set for d=5, c=(3,3,3) ===");
    let (d, caps) = paper::example1_caps();
    let ranges: Vec<(i64, i64)> = caps
        .iter()
        .map(|&c| (0i64, (c as i64).min(d as i64)))
        .collect();
    let set = enumerate_assignments(d, &ranges);
    println!("|D| = {} (paper: 12)", set.len());
    let rendered: Vec<String> = set.iter().map(fmt_assignment).collect();
    println!("D = {{{}}}\n", rendered.join(", "));
}

/// FIG4: the reconstructed two-bottleneck instance and its reliability.
fn fig4() {
    println!("=== FIG4: two-bottleneck graph (reconstruction) ===");
    let (inst, cut, _) = paper::fig4_parts();
    println!("{}", netgraph::dot::to_dot(&inst.net, &cut));
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let set = validate_bottleneck_set(&inst.net, d.source, d.sink, &cut).unwrap();
    println!(
        "bottleneck set {:?}: |E_s|={}, |E_t|={}, alpha={:.3}",
        set.edges,
        set.side_s_edges,
        set.side_t_edges,
        set.alpha(inst.net.edge_count())
    );
    let opts = CalcOptions::default();
    let naive = reliability_naive(&inst.net, d, &opts).unwrap();
    let bn = reliability_bottleneck(&inst.net, d, &cut, &opts).unwrap();
    println!("reliability (naive)      : {naive:.9}");
    println!("reliability (bottleneck) : {bn:.9}\n");
}

fn fig4_side_table() -> (RealizationTable, Vec<Assignment>) {
    let (inst, cut, _) = paper::fig4_parts();
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let set = validate_bottleneck_set(&inst.net, d.source, d.sink, &cut).unwrap();
    let dec = decompose(&inst.net, &d, &set);
    let assignments = enumerate_assignments(2, &[(0i64, 2), (0, 2)]);
    let mut oracle = SideOracle::new(&dec.side_s, &assignments, SolverKind::Dinic).unwrap();
    let table = RealizationTable::build(&mut oracle, 26, 20, false).unwrap();
    (table, assignments)
}

/// FIG5: the three highlighted failure configurations of G_s.
fn fig5() {
    println!("=== FIG5: three failure configurations of G_s ===");
    let (table, assignments) = fig4_side_table();
    for (idx, (alive, expected)) in paper::fig5_configurations().iter().enumerate() {
        let bits = alive.iter().fold(0usize, |acc, &i| acc | 1 << i);
        let realized: Vec<String> = table
            .realized(bits)
            .into_iter()
            .map(|j| fmt_assignment(&assignments[j]))
            .collect();
        let expect: Vec<String> = expected
            .iter()
            .map(|a| fmt_assignment(&Assignment { amounts: a.clone() }))
            .collect();
        println!(
            "({}) alive links {{{}}}: realizes {{{}}}   [paper: {{{}}}]",
            ["a", "b", "c"][idx],
            alive
                .iter()
                .map(|i| format!("c{}", i + 1))
                .collect::<Vec<_>>()
                .join(","),
            realized.join(", "),
            expect.join(", ")
        );
    }
    println!();
}

/// TAB1: the full realization array of G_s in Table I's layout.
fn table1() {
    println!("=== TABLE I: assignments realized by each failure configuration ===");
    println!("(the array data structure of Section III-C for the Fig. 4 G_s;");
    println!(" 2^5 = 32 configurations, one column each, |D| = 3 assignments)\n");
    let (table, assignments) = fig4_side_table();
    println!(
        "assignments: {}",
        assignments
            .iter()
            .enumerate()
            .map(|(j, a)| format!("b{} = {}", j + 1, fmt_assignment(a)))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!("{:>8} {:>12} realized set", "config", "bits c5..c1");
    for c in 0..table.masks.len() {
        let set: Vec<String> = table
            .realized(c)
            .into_iter()
            .map(|j| format!("b{}", j + 1))
            .collect();
        println!(
            "{:>8} {:>12} {{{}}}",
            format!("c{c}"),
            format!("{c:05b}"),
            set.join(",")
        );
    }
    println!();
}

/// FIG6: the two-procedure pipeline with per-stage timing.
fn fig6() {
    println!("=== FIG6: pipeline overview with stage timings ===");
    let (inst, cut) = barbell_with_edges(20, 2, 2, 63);
    let d = demand_of(&inst);
    let opts = CalcOptions::default();

    let t0 = Instant::now();
    let set = validate_bottleneck_set(&inst.net, d.source, d.sink, &cut).unwrap();
    let t_validate = t0.elapsed();

    let t0 = Instant::now();
    let found = find_bottleneck_set(&inst.net, d.source, d.sink, 2).unwrap();
    let t_discover = t0.elapsed();

    let t0 = Instant::now();
    let _dec = decompose(&inst.net, &d, &set);
    let t_decompose = t0.elapsed();

    let t0 = Instant::now();
    let r = reliability_bottleneck(&inst.net, d, &cut, &opts).unwrap();
    let t_total = t0.elapsed();

    println!(
        "instance: |E| = {}, planted k = 2 cut",
        inst.net.edge_count()
    );
    println!("stage (a) array generation + (b) accumulation are inside the total:");
    println!(
        "  discover bottleneck set : {t_discover:?} (found {:?})",
        found.edges
    );
    println!("  validate given set      : {t_validate:?}");
    println!("  decompose               : {t_decompose:?}");
    println!("  spectra + accumulation  : {t_total:?} (reliability = {r:.9})\n");
}

/// THM-MAIN: measured speedup table (the EXPERIMENTS.md rows).
fn thm() {
    println!("=== THM-MAIN: naive vs bottleneck, measured ===");
    println!(
        "{:>6} {:>7} {:>14} {:>14} {:>9} {:>12}",
        "|E|", "alpha", "naive", "bottleneck", "speedup", "|Δ|"
    );
    for target in [12usize, 14, 16, 18, 20, 22] {
        let (inst, cut) = barbell_with_edges(target, 2, 2, 33);
        let d = demand_of(&inst);
        let opts = CalcOptions::default();
        let t0 = Instant::now();
        let naive = reliability_naive(&inst.net, d, &opts).unwrap();
        let t_naive = t0.elapsed();
        let t0 = Instant::now();
        let bn = reliability_bottleneck(&inst.net, d, &cut, &opts).unwrap();
        let t_bn = t0.elapsed();
        let set = validate_bottleneck_set(&inst.net, d.source, d.sink, &cut).unwrap();
        println!(
            "{:>6} {:>7.3} {:>14?} {:>14?} {:>8.1}x {:>12.2e}",
            inst.net.edge_count(),
            set.alpha(inst.net.edge_count()),
            t_naive,
            t_bn,
            t_naive.as_secs_f64() / t_bn.as_secs_f64().max(1e-9),
            (naive - bn).abs()
        );
    }
    println!();
}

/// DOM-P2P: overlay comparison table.
fn p2p() {
    println!("=== DOM-P2P: overlay reliability (8 peers, rate 2, 90 s window) ===");
    let peers: Vec<Peer> = (0..8)
        .map(|i| Peer::new(4, 300.0 + 150.0 * (i % 4) as f64))
        .collect();
    let churn = ChurnModel::new(90.0).with_base_loss(0.02);
    let calc = ReliabilityCalculator::new();
    let run = |net: &netgraph::Network, s, t, d| {
        calc.run_complete(net, FlowDemand::new(s, t, d))
            .map(|r| r.reliability)
            .unwrap_or(f64::NAN)
    };
    println!(
        "{:<24} {:>12} {:>12}",
        "overlay", "full stream", "half stream"
    );
    let tree = single_tree(&peers, 2, 2, &churn);
    let sub = *tree.peers.last().unwrap();
    println!(
        "{:<24} {:>12.6} {:>12.6}",
        "single tree (f=2)",
        run(&tree.net, tree.server, sub, 2),
        run(&tree.net, tree.server, sub, 1)
    );
    let multi = multi_tree(&peers, 2, &churn);
    let sub = *multi.peers.last().unwrap();
    println!(
        "{:<24} {:>12.6} {:>12.6}",
        "multi-tree (2 stripes)",
        run(&multi.net, multi.server, sub, 2),
        run(&multi.net, multi.server, sub, 1)
    );
    for m in [2usize, 3] {
        let mesh = random_mesh(&peers, m, 2, &churn, 7);
        let sub = *mesh.peers.last().unwrap();
        println!(
            "{:<24} {:>12.6} {:>12.6}",
            format!("mesh (m={m})"),
            run(&mesh.net, mesh.server, sub, 2),
            run(&mesh.net, mesh.server, sub, 1)
        );
    }
    let hybrid = hybrid_tree_mesh(&peers, 0.5, 2, 2, &churn, 7);
    let sub = *hybrid.peers.last().unwrap();
    println!(
        "{:<24} {:>12.6} {:>12.6}",
        "hybrid treebone+mesh",
        run(&hybrid.net, hybrid.server, sub, 2),
        run(&hybrid.net, hybrid.server, sub, 1)
    );
    println!();
}

/// ABL-ACC quick check: the three accumulation variants agree.
///
/// Uses the paper's forward-only assignment model: the ablation targets the
/// paper's own constant factor (`2^{d^k}`), and the net-crossing extension
/// would inflate `|D|` beyond what PaperDirect's `O(4^{|D|})` scan tolerates.
fn acc() {
    println!("=== ABL-ACC: accumulation variants agree (forward-only model) ===");
    let (inst, cut) = barbell_with_edges(16, 3, 3, 77);
    let d = demand_of(&inst);
    for method in [
        AccumulationMethod::PaperDirect,
        AccumulationMethod::ZetaInclusionExclusion,
        AccumulationMethod::Complement,
    ] {
        let opts = CalcOptions {
            accumulation: method,
            max_assignments: 31,
            assignment_model: flowrel_core::AssignmentModel::ForwardOnly,
            ..CalcOptions::default()
        };
        let t0 = Instant::now();
        let r = reliability_bottleneck(&inst.net, d, &cut, &opts).unwrap();
        println!("{method:?}: {r:.12} in {:?}", t0.elapsed());
    }
    let fact = reliability_factoring(&inst.net, d, &CalcOptions::default()).unwrap();
    println!("factoring cross-check (exact max-flow semantics): {fact:.12}\n");
}

/// MODEL-GAP: the forward-only vs net-crossing assignment models.
fn model() {
    println!("=== MODEL-GAP: forward-only vs net-crossing assignments ===");
    let (inst, cut) = workloads::paper::weaving_counterexample();
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let naive = reliability_naive(&inst.net, d, &CalcOptions::default()).unwrap();
    let fwd_opts = CalcOptions {
        assignment_model: AssignmentModel::ForwardOnly,
        ..CalcOptions::default()
    };
    let fwd = reliability_bottleneck(&inst.net, d, &cut, &fwd_opts).unwrap();
    let net_model = reliability_bottleneck(&inst.net, d, &cut, &CalcOptions::default()).unwrap();
    println!("weaving counterexample (cut crossed forward/back/forward):");
    println!("  naive max-flow reliability : {naive:.9}  (= (7/8)^3)");
    println!("  paper forward-only model   : {fwd:.9}");
    println!("  net-crossing extension     : {net_model:.9}");
    println!("  (the default model is Net; CalcOptions::paper_faithful() restores");
    println!("   the paper's. See DESIGN.md, 'Findings'.)\n");
}

/// BOUNDS: Esary-Proschan sandwich on the Fig. 2 instance (d = 1).
fn bounds() {
    println!("=== BOUNDS: Esary-Proschan sandwich (d = 1) ===");
    let (inst, _) = workloads::paper::fig2_bridge();
    let d = FlowDemand::new(inst.source, inst.sink, 1);
    let exact = reliability_naive(&inst.net, d, &CalcOptions::default()).unwrap();
    let (lo, hi) = esary_proschan_bounds(&inst.net, d, 100_000).unwrap();
    println!("Fig. 2 instance: lower {lo:.6} <= exact {exact:.6} <= upper {hi:.6}");
    let inst2 = workloads::generators::grid(3, 3, 5);
    let d2 = FlowDemand::new(inst2.source, inst2.sink, 1);
    let exact2 = reliability_naive(&inst2.net, d2, &CalcOptions::default()).unwrap();
    let (lo2, hi2) = esary_proschan_bounds(&inst2.net, d2, 100_000).unwrap();
    println!("3x3 grid:        lower {lo2:.6} <= exact {exact2:.6} <= upper {hi2:.6}\n");
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "fig1" => fig1(),
        "fig2" => fig2(),
        "ex1" => ex1(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "table1" => table1(),
        "fig6" => fig6(),
        "thm" => thm(),
        "p2p" => p2p(),
        "acc" => acc(),
        "model" => model(),
        "bounds" => bounds(),
        "all" => {
            fig1();
            fig2();
            ex1();
            fig4();
            fig5();
            table1();
            fig6();
            thm();
            p2p();
            acc();
            model();
            bounds();
        }
        other => {
            eprintln!("unknown table '{other}'");
            eprintln!(
                "usage: paper_tables [fig1|fig2|ex1|fig4|fig5|table1|fig6|thm|p2p|acc|model|bounds|all]"
            );
            std::process::exit(2);
        }
    }
}
