//! Structural-reduction benchmark: measures what the fixed-point reduction
//! pipeline ([`flowrel_core::reduce`]) buys end to end — how many fallible
//! link *bits* it removes from the exponent, and the wall-clock speedup of
//! the full calculator with reduction on versus off — and emits
//! machine-readable JSON (`BENCH_reduce.json`).
//!
//! Acceptance, asserted per run:
//!
//! - every `slack-barbell` row removes at least 30% of the fallible bits
//!   (the family is built so each pass — capacity clamp, parallel merge,
//!   spur prune, perfect-link contraction — fires);
//! - at least one non-smoke row is at least 3x faster end to end with
//!   reduction on;
//! - every row's reduced and unreduced reliabilities agree to 1e-12.
//!
//! Usage: `bench_reduce [--smoke] [output.json]`
//!
//! `--smoke` shrinks the matrix to sub-second instances: a CI check that
//! the pipeline still fires on every family and agrees with the unreduced
//! sweep, not a measurement — the speedup bar is not asserted.

use std::time::Instant;

use flowrel_core::{
    reduce, reliability_naive, CalcOptions, FlowDemand, ReliabilityCalculator, Strategy,
};
use workloads::generators::{chained_barbell, grid, kary_nested_cut, slack_barbell, Instance};

/// Naive enumeration is used as a ground-truth cross-check only below this
/// many links.
const NAIVE_CHECK_MAX_EDGES: usize = 22;

/// Fraction of fallible bits every `slack-barbell` row must shed.
const SLACK_BIT_BAR: f64 = 0.30;

/// End-to-end speedup at least one non-smoke row must reach.
const SPEEDUP_BAR: f64 = 3.0;

struct Case {
    instance: &'static str,
    inst: Instance,
    /// Rows in the slack-barbell family carry the 30% bit-reduction bar.
    slack: bool,
}

struct Row {
    instance: &'static str,
    edges: usize,
    fallible_before: usize,
    fallible_after: usize,
    relevance_removed: usize,
    bound_removed: usize,
    clamped: usize,
    merged: usize,
    contracted: usize,
    rounds: usize,
    on_ms: f64,
    off_ms: f64,
    r_on: f64,
    r_off: f64,
    naive_checked: bool,
    slack: bool,
}

impl Row {
    fn bit_reduction(&self) -> f64 {
        1.0 - self.fallible_after as f64 / self.fallible_before.max(1) as f64
    }

    fn speedup(&self) -> f64 {
        self.off_ms / self.on_ms.max(1e-6)
    }

    fn agrees(&self) -> bool {
        (self.r_on - self.r_off).abs() < 1e-12
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"instance\": \"{}\", \"edges\": {}, ",
                "\"fallible_before\": {}, \"fallible_after\": {}, ",
                "\"bit_reduction\": {:.4}, \"relevance_removed\": {}, ",
                "\"bound_removed\": {}, \"clamped\": {}, \"merged\": {}, ",
                "\"contracted\": {}, \"rounds\": {}, ",
                "\"on_ms\": {:.3}, \"off_ms\": {:.3}, \"speedup\": {:.1}, ",
                "\"reliability_on\": {:.12e}, \"reliability_off\": {:.12e}, ",
                "\"agree_1e12\": {}, \"naive_checked\": {}}}"
            ),
            self.instance,
            self.edges,
            self.fallible_before,
            self.fallible_after,
            self.bit_reduction(),
            self.relevance_removed,
            self.bound_removed,
            self.clamped,
            self.merged,
            self.contracted,
            self.rounds,
            self.on_ms,
            self.off_ms,
            self.speedup(),
            self.r_on,
            self.r_off,
            self.agrees(),
            self.naive_checked,
        )
    }
}

/// Times one configuration: warm run (kept for the reliability) plus a
/// best-of-3, batching sub-2 ms runs so the ratio is not scheduler noise.
fn timed(net: &netgraph::Network, d: FlowDemand, reduce_on: bool) -> (f64, f64) {
    let calc = ReliabilityCalculator::new()
        .with_strategy(Strategy::Auto)
        .with_options(CalcOptions {
            reduce: reduce_on,
            ..CalcOptions::default()
        });
    let start = Instant::now();
    let rep = calc.run_complete(net, d).expect("bench instance solves");
    let warm_ms = start.elapsed().as_secs_f64() * 1e3;
    let reps = if warm_ms < 2.0 { 25 } else { 1 };
    let mut ms = warm_ms;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..reps {
            calc.run_complete(net, d).expect("bench instance solves");
        }
        ms = ms.min(start.elapsed().as_secs_f64() * 1e3 / reps as f64);
    }
    (rep.reliability, ms)
}

fn run_case(case: &Case) -> Row {
    let inst = &case.inst;
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let opts = CalcOptions::default();
    let red = reduce(&inst.net, d, true, opts.solver);
    let (r_on, on_ms) = timed(&inst.net, d, true);
    let (r_off, off_ms) = timed(&inst.net, d, false);
    let naive_checked = inst.net.edge_count() <= NAIVE_CHECK_MAX_EDGES;
    if naive_checked {
        let exact = reliability_naive(&inst.net, d, &opts).expect("naive");
        assert!(
            (r_on - exact).abs() < 1e-12,
            "{}: reduced {} vs naive {exact}",
            case.instance,
            r_on
        );
    }
    Row {
        instance: case.instance,
        edges: inst.net.edge_count(),
        fallible_before: red.original_fallible,
        fallible_after: red.fallible_links(),
        relevance_removed: red.stats.relevance_removed,
        bound_removed: red.stats.bound_removed,
        clamped: red.stats.clamped,
        merged: red.stats.merged,
        contracted: red.stats.contracted,
        rounds: red.stats.rounds,
        on_ms,
        off_ms,
        r_on,
        r_off,
        naive_checked,
        slack: case.slack,
    }
}

fn cases(smoke: bool) -> Vec<Case> {
    if smoke {
        return vec![
            Case {
                instance: "slack-barbell-3x2",
                inst: slack_barbell(3, 2, 1),
                slack: true,
            },
            Case {
                instance: "chained-barbell-3x3",
                inst: chained_barbell(3, 3, 1, 11),
                slack: false,
            },
        ];
    }
    vec![
        // the designed workload: every reduction pass fires, and the row is
        // small enough for the naive ground-truth cross-check
        Case {
            instance: "slack-barbell-3x2",
            inst: slack_barbell(3, 2, 1),
            slack: true,
        },
        Case {
            instance: "slack-barbell-4x2",
            inst: slack_barbell(4, 2, 7),
            slack: true,
        },
        // the headline speedup rows: unreduced, the calculator faces a
        // 40+-bit sweep; reduced, a third of the bits are gone and the
        // decomposition collapses further
        Case {
            instance: "slack-barbell-5x3",
            inst: slack_barbell(5, 3, 1),
            slack: true,
        },
        Case {
            instance: "slack-barbell-6x3",
            inst: slack_barbell(6, 3, 1),
            slack: true,
        },
        // bridge chains: contraction + relevance feedback dominate
        Case {
            instance: "chained-barbell-4x3",
            inst: chained_barbell(4, 3, 1, 11),
            slack: false,
        },
        // deep-cut family: slack in the cluster interiors clamps away
        Case {
            instance: "kary-nested-cut-2x2",
            inst: kary_nested_cut(2, 2, 11),
            slack: false,
        },
        // near-identity coverage: a uniform grid barely reduces, and the
        // pipeline must not slow the calculator down when it has nothing
        // to do
        Case {
            instance: "grid-3x3",
            inst: grid(3, 3, 5),
            slack: false,
        },
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_reduce.json".to_string());

    let cases = cases(smoke);
    let rows: Vec<Row> = cases.iter().map(run_case).collect();

    let mut failures = Vec::new();
    for row in &rows {
        println!(
            "{:>20}: {} links, {} -> {} fallible bits (-{:.0}%), on {:.2} ms vs off {:.2} ms \
             ({:.1}x), -{} bound, {} clamped, {} merged, {} contracted, {} rounds, agree={}",
            row.instance,
            row.edges,
            row.fallible_before,
            row.fallible_after,
            100.0 * row.bit_reduction(),
            row.on_ms,
            row.off_ms,
            row.speedup(),
            row.bound_removed,
            row.clamped,
            row.merged,
            row.contracted,
            row.rounds,
            row.agrees(),
        );
        if !row.agrees() {
            failures.push(format!(
                "{}: reduced {:.15e} vs unreduced {:.15e} differ beyond 1e-12",
                row.instance, row.r_on, row.r_off
            ));
        }
        if row.slack && row.bit_reduction() < SLACK_BIT_BAR {
            failures.push(format!(
                "{}: only {:.0}% of fallible bits removed (bar {:.0}%)",
                row.instance,
                100.0 * row.bit_reduction(),
                100.0 * SLACK_BIT_BAR
            ));
        }
    }
    if !smoke && !rows.iter().any(|r| r.speedup() >= SPEEDUP_BAR) {
        failures.push(format!(
            "no row reached the {SPEEDUP_BAR:.0}x end-to-end speedup bar"
        ));
    }

    let body: Vec<String> = rows.iter().map(|r| format!("    {}", r.json())).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"bench_reduce\",\n  \"smoke\": {smoke},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
