//! Recursive decomposition planner benchmark: measures what nested splits
//! buy over the flat one-level bottleneck decomposition on chained-barbell
//! and nested-bottleneck instances, cross-checks the two results against
//! each other (and against naive enumeration where it is affordable), and
//! emits the results as machine-readable JSON (`BENCH_plan.json`).
//!
//! The headline number is wall-clock speedup: a one-level split of a chain
//! of `n` clusters leaves two sides of ~`m/2` links and sweeps `2^(m/2)`
//! configurations per side, while the recursive planner keeps splitting at
//! every nested bridge until the leaves hold a single cluster each — the
//! sweep cost collapses from exponential in the half to exponential in the
//! largest cluster. The run asserts the ISSUE's acceptance bar — at least
//! 5x faster than the flat decomposition on the nested-bottleneck family —
//! and fails loudly if a change regresses it.
//!
//! Usage: `bench_plan [--smoke] [output.json]`
//!
//! `--smoke` shrinks the instances so the whole matrix runs in well under a
//! second: a CI check that the planner still recurses and agrees with the
//! flat engine, not a measurement.

use std::time::Instant;

use flowrel_core::{
    find_bottleneck_set, reliability_naive, CalcOptions, DecompositionPlan, FlowDemand,
    ReliabilityCalculator, Strategy,
};
use netgraph::Network;
use workloads::generators::{chained_barbell, nested_barbell, Instance};

/// Naive enumeration is used as the ground-truth cross-check only below
/// this many links (it is `2^m`; beyond ~24 links it dominates the run).
const NAIVE_CHECK_MAX_EDGES: usize = 22;

struct Row {
    instance: &'static str,
    edges: usize,
    plan_leaves: usize,
    predicted_cost_recursive: f64,
    predicted_cost_flat: f64,
    recursive_ms: f64,
    flat_ms: f64,
    r_recursive: f64,
    r_flat: f64,
    naive_checked: bool,
    /// Whether this row is held to the 5x acceptance bar (the headline
    /// nested-bottleneck instance at measurement size; smoke rows and the
    /// small cross-check rows are reported for context only).
    assert_speedup: bool,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.flat_ms / self.recursive_ms.max(1e-6)
    }

    fn agrees(&self) -> bool {
        (self.r_recursive - self.r_flat).abs() < 1e-12
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"instance\": \"{}\", \"edges\": {}, \"plan_leaves\": {}, ",
                "\"predicted_cost_recursive\": {:.6e}, \"predicted_cost_flat\": {:.6e}, ",
                "\"recursive_ms\": {:.3}, \"flat_ms\": {:.3}, \"speedup\": {:.1}, ",
                "\"reliability_recursive\": {:.12e}, \"reliability_flat\": {:.12e}, ",
                "\"agree_1e12\": {}, \"naive_checked\": {}, \"held_to_5x_bar\": {}}}"
            ),
            self.instance,
            self.edges,
            self.plan_leaves,
            self.predicted_cost_recursive,
            self.predicted_cost_flat,
            self.recursive_ms,
            self.flat_ms,
            self.speedup(),
            self.r_recursive,
            self.r_flat,
            self.agrees(),
            self.naive_checked,
            self.assert_speedup
        )
    }
}

/// Runs `BottleneckAuto { max_k: 1 }` (the bridge split the planner
/// recurses on) at the given depth cap and returns (reliability, millis).
fn timed_run(net: &Network, d: FlowDemand, max_depth: usize) -> (f64, f64) {
    let calc = ReliabilityCalculator::new()
        .with_strategy(Strategy::BottleneckAuto { max_k: 1 })
        .with_options(CalcOptions {
            max_depth,
            ..CalcOptions::default()
        });
    let start = Instant::now();
    let rep = calc.run_complete(net, d).expect("bench instance solves");
    (rep.reliability, start.elapsed().as_secs_f64() * 1e3)
}

fn plan_stats(net: &Network, d: FlowDemand, max_depth: usize) -> (usize, f64) {
    let opts = CalcOptions {
        max_depth,
        ..CalcOptions::default()
    };
    let set = find_bottleneck_set(net, d.source, d.sink, 1).expect("a bridge exists");
    let plan = DecompositionPlan::plan_on_set(net, d, &set, &opts, 1).expect("plannable");
    (plan.leaf_count(), plan.predicted_cost())
}

fn run_case(instance: &'static str, inst: &Instance, assert_speedup: bool) -> Row {
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let (leaves, cost_rec) = plan_stats(&inst.net, d, CalcOptions::default().max_depth);
    let (_, cost_flat) = plan_stats(&inst.net, d, 0);
    let (r_flat, flat_ms) = timed_run(&inst.net, d, 0);
    let (r_rec, rec_ms) = timed_run(&inst.net, d, CalcOptions::default().max_depth);
    let naive_checked = inst.net.edge_count() <= NAIVE_CHECK_MAX_EDGES;
    if naive_checked {
        let exact = reliability_naive(&inst.net, d, &CalcOptions::default()).expect("naive");
        assert!(
            (r_rec - exact).abs() < 1e-12,
            "{instance}: recursive {r_rec} vs naive {exact}"
        );
    }
    Row {
        instance,
        edges: inst.net.edge_count(),
        plan_leaves: leaves,
        predicted_cost_recursive: cost_rec,
        predicted_cost_flat: cost_flat,
        recursive_ms: rec_ms,
        flat_ms,
        r_recursive: r_rec,
        r_flat,
        naive_checked,
        assert_speedup,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_plan.json".to_string());

    let mut rows = Vec::new();
    if smoke {
        rows.push(run_case(
            "chained-barbell-3x3",
            &chained_barbell(3, 3, 1, 11),
            false,
        ));
        rows.push(run_case(
            "nested-barbell-d2",
            &nested_barbell(2, 3, 1, 13),
            false,
        ));
    } else {
        rows.push(run_case(
            "chained-barbell-4x3",
            &chained_barbell(4, 3, 1, 11),
            false,
        ));
        rows.push(run_case(
            "chained-barbell-6x4",
            &chained_barbell(6, 4, 1, 11),
            false,
        ));
        rows.push(run_case(
            "nested-barbell-d2",
            &nested_barbell(2, 4, 1, 13),
            false,
        ));
        rows.push(run_case(
            "nested-barbell-d3",
            &nested_barbell(3, 4, 1, 13),
            true,
        ));
    }

    let mut failures = Vec::new();
    for row in &rows {
        println!(
            "{:>20}: {} links, {} plan leaves, recursive {:.2} ms vs flat {:.2} ms \
             ({:.1}x), predicted cost {:.2e} vs {:.2e}, agree={}",
            row.instance,
            row.edges,
            row.plan_leaves,
            row.recursive_ms,
            row.flat_ms,
            row.speedup(),
            row.predicted_cost_recursive,
            row.predicted_cost_flat,
            row.agrees()
        );
        if !row.agrees() {
            failures.push(format!(
                "{}: recursive {:.15e} vs flat {:.15e} differ beyond 1e-12",
                row.instance, row.r_recursive, row.r_flat
            ));
        }
        if row.plan_leaves < 2 {
            failures.push(format!(
                "{}: the planner found no recursive split ({} leaf)",
                row.instance, row.plan_leaves
            ));
        }
        // The acceptance bar: nested bottlenecks make the recursive plan at
        // least 5x faster than the flat one-level decomposition. Only
        // meaningful at measurement size; smoke instances are too small for
        // stable timings.
        if !smoke && row.assert_speedup && row.speedup() < 5.0 {
            failures.push(format!(
                "{}: only {:.1}x faster than the flat decomposition (need >= 5x)",
                row.instance,
                row.speedup()
            ));
        }
    }

    let body: Vec<String> = rows.iter().map(|r| format!("    {}", r.json())).collect();
    let json = format!(
        "{{\n  \"benchmark\": \"bench_plan\",\n  \"smoke\": {smoke},\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
