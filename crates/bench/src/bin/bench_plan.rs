//! Recursive decomposition planner benchmark: measures what nested splits
//! buy over two baselines — the flat one-level bottleneck decomposition
//! (`max_depth = 0`) and the bridge-only recursive planner
//! (`recursive_cut_sides = false`, the PR 5 planner) — on chained-barbell,
//! nested-bottleneck, k-ary nested-cut, and barbell-mesh instances,
//! cross-checks results against each other (and against naive enumeration
//! where it is affordable), and emits machine-readable JSON
//! (`BENCH_plan.json`).
//!
//! The headline numbers are wall-clock speedups, each asserted *per
//! instance* on rows designed to hold them (`speedup_bar`): the deep-cut
//! family must beat the PR 5 planner by at least 3x (its sides are
//! multi-assignment cuts the bridge-only planner sweeps whole), and the
//! nested-bottleneck family must beat the flat decomposition by at least
//! 5x. Rows without a bar are coverage: they still assert agreement,
//! minimum leaf counts, and report per-slot budget shares and sweep repair
//! statistics.
//!
//! Usage: `bench_plan [--smoke] [output.json]`
//!
//! `--smoke` shrinks the matrix so it runs in well under a second: a CI
//! check that the planner still recurses (including one >= 8-leaf deep-cut
//! instance) and agrees with the baselines, not a measurement — timing
//! bars are not asserted. Smoke mode also runs one hybrid row whose config
//! budget forces at least one Monte-Carlo leaf, asserting the answer comes
//! back labelled statistical with an interval covering the exact value.

use std::time::Instant;

use flowrel_core::{
    find_bottleneck_set, reliability_naive, Budget, CalcOptions, DecompositionPlan, EstimatorKind,
    FlowDemand, McSettings, PlanSlotReport, ReliabilityCalculator, StopTarget, Strategy,
    SweepStats,
};
use netgraph::Network;
use workloads::generators::{
    barbell_mesh, chained_barbell, kary_nested_cut, nested_barbell, slack_barbell, Instance,
};

/// Naive enumeration is used as the ground-truth cross-check only below
/// this many links (it is `2^m`; beyond ~24 links it dominates the run).
const NAIVE_CHECK_MAX_EDGES: usize = 22;

/// Which configuration the deep planner is measured against.
#[derive(Clone, Copy, PartialEq)]
enum Baseline {
    /// `max_depth = 0`: the one-level PR 1 decomposition.
    Flat,
    /// `recursive_cut_sides = false`: the PR 5 bridge-only recursion.
    Pr5,
}

impl Baseline {
    fn name(self) -> &'static str {
        match self {
            Baseline::Flat => "flat",
            Baseline::Pr5 => "pr5",
        }
    }

    fn options(self) -> CalcOptions {
        match self {
            Baseline::Flat => CalcOptions {
                max_depth: 0,
                ..bench_options()
            },
            Baseline::Pr5 => CalcOptions {
                recursive_cut_sides: false,
                ..bench_options()
            },
        }
    }
}

/// Planner benchmarks run with the structural reduction *off*: these
/// families are built to exercise nested splits, and the reduction pipeline
/// (measured by `bench_reduce`) collapses them to a handful of links before
/// the planner would ever see them — with it on, every row times the same
/// trivial remnant and the comparison says nothing about the planner.
fn bench_options() -> CalcOptions {
    CalcOptions {
        reduce: false,
        ..CalcOptions::default()
    }
}

struct Case {
    instance: &'static str,
    inst: Instance,
    max_k: usize,
    baseline: Baseline,
    /// Wall-clock speedup this row must reach over its baseline, asserted
    /// per instance (skipped in smoke mode, where timings are noise).
    speedup_bar: Option<f64>,
    /// Minimum leaf-slot count the deep plan must reach, asserted always.
    min_leaves: usize,
}

struct Row {
    instance: &'static str,
    baseline: &'static str,
    edges: usize,
    plan_leaves: usize,
    predicted_cost_recursive: f64,
    predicted_cost_baseline: f64,
    recursive_ms: f64,
    baseline_ms: f64,
    r_recursive: f64,
    r_baseline: f64,
    naive_checked: bool,
    speedup_bar: Option<f64>,
    min_leaves: usize,
    /// Largest per-subtree apportioned budget share among the plan's slots.
    max_share: f64,
    /// Sweep-engine counters of the recursive run.
    stats: SweepStats,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.baseline_ms / self.recursive_ms.max(1e-6)
    }

    fn agrees(&self) -> bool {
        (self.r_recursive - self.r_baseline).abs() < 1e-12
    }

    fn held_to_bar(&self) -> bool {
        self.speedup_bar.is_none_or(|bar| self.speedup() >= bar)
    }

    fn json(&self) -> String {
        let bar = self
            .speedup_bar
            .map_or("null".to_string(), |b| format!("{b:.1}"));
        format!(
            concat!(
                "{{\"instance\": \"{}\", \"baseline\": \"{}\", \"edges\": {}, ",
                "\"plan_leaves\": {}, \"min_leaves\": {}, ",
                "\"predicted_cost_recursive\": {:.6e}, \"predicted_cost_baseline\": {:.6e}, ",
                "\"recursive_ms\": {:.3}, \"baseline_ms\": {:.3}, \"speedup\": {:.1}, ",
                "\"speedup_bar\": {}, \"held_to_bar\": {}, ",
                "\"reliability_recursive\": {:.12e}, \"reliability_baseline\": {:.12e}, ",
                "\"agree_1e12\": {}, \"naive_checked\": {}, \"max_budget_share\": {:.4}, ",
                "\"solver_calls\": {}, \"flips\": {}, \"repairs\": {}, \"full_resolves\": {}}}"
            ),
            self.instance,
            self.baseline,
            self.edges,
            self.plan_leaves,
            self.min_leaves,
            self.predicted_cost_recursive,
            self.predicted_cost_baseline,
            self.recursive_ms,
            self.baseline_ms,
            self.speedup(),
            bar,
            self.held_to_bar(),
            self.r_recursive,
            self.r_baseline,
            self.agrees(),
            self.naive_checked,
            self.max_share,
            self.stats.solver_calls,
            self.stats.flips,
            self.stats.repairs,
            self.stats.full_resolves,
        )
    }
}

struct RunOut {
    r: f64,
    ms: f64,
    stats: SweepStats,
    slots: Vec<PlanSlotReport>,
}

/// Times the deep and baseline configurations together, interleaved.
///
/// The smaller rows finish in tens of microseconds, where a single shot is
/// scheduler noise — and the no-regression gate below asserts on the *ratio*
/// of two such timings, so the two sides must see the same thermal and
/// frequency conditions. Each side warms up once; rows under ~2 ms are then
/// timed as best-of-5 averages over 25-run batches, slower rows as a plain
/// best of 5, alternating deep/baseline batches so clock drift cancels out
/// of the ratio.
fn timed_pair(
    net: &Network,
    d: FlowDemand,
    max_k: usize,
    deep_opts: CalcOptions,
    base_opts: CalcOptions,
) -> (RunOut, RunOut) {
    let calc = |opts: CalcOptions| {
        ReliabilityCalculator::new()
            .with_strategy(Strategy::BottleneckAuto { max_k })
            .with_options(opts)
    };
    let (deep_calc, base_calc) = (calc(deep_opts), calc(base_opts));
    let warm = |c: &ReliabilityCalculator| {
        let start = Instant::now();
        let rep = c.run_complete(net, d).expect("bench instance solves");
        (rep, start.elapsed().as_secs_f64() * 1e3)
    };
    let (deep_rep, deep_warm) = warm(&deep_calc);
    let (base_rep, base_warm) = warm(&base_calc);
    // size each batch to ~20 ms of work so sub-millisecond rows average
    // over enough runs for the ratio to stabilize within a few percent
    let reps = ((20.0 / deep_warm.max(base_warm).max(1e-3)) as usize).clamp(1, 400);
    let batch = |c: &ReliabilityCalculator| {
        let start = Instant::now();
        for _ in 0..reps {
            c.run_complete(net, d).expect("bench instance solves");
        }
        start.elapsed().as_secs_f64() * 1e3 / reps as f64
    };
    let (mut deep_ms, mut base_ms) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        deep_ms = deep_ms.min(batch(&deep_calc));
        base_ms = base_ms.min(batch(&base_calc));
    }
    let out = |rep: flowrel_core::ReliabilityReport, ms: f64| {
        let (stats, slots) = rep
            .bottleneck
            .map(|b| (b.sweep, b.plan_slots))
            .unwrap_or_default();
        RunOut {
            r: rep.reliability,
            ms,
            stats,
            slots,
        }
    };
    (out(deep_rep, deep_ms), out(base_rep, base_ms))
}

fn plan_stats(net: &Network, d: FlowDemand, max_k: usize, opts: &CalcOptions) -> (usize, f64) {
    let set = find_bottleneck_set(net, d.source, d.sink, max_k).expect("a bottleneck exists");
    let plan = DecompositionPlan::plan_on_set(net, d, &set, opts, max_k).expect("plannable");
    (plan.leaf_count(), plan.predicted_cost())
}

fn run_case(case: &Case) -> Row {
    let inst = &case.inst;
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let deep_opts = bench_options();
    let base_opts = case.baseline.options();
    let (leaves, cost_rec) = plan_stats(&inst.net, d, case.max_k, &deep_opts);
    let (_, cost_base) = plan_stats(&inst.net, d, case.max_k, &base_opts);
    let (deep, base) = timed_pair(&inst.net, d, case.max_k, deep_opts, base_opts);
    let max_share = deep.slots.iter().map(|s| s.share).fold(0.0, f64::max);
    let naive_checked = inst.net.edge_count() <= NAIVE_CHECK_MAX_EDGES;
    if naive_checked {
        let exact = reliability_naive(&inst.net, d, &CalcOptions::default()).expect("naive");
        assert!(
            (deep.r - exact).abs() < 1e-12,
            "{}: recursive {} vs naive {exact}",
            case.instance,
            deep.r
        );
    }
    Row {
        instance: case.instance,
        baseline: case.baseline.name(),
        edges: inst.net.edge_count(),
        plan_leaves: leaves,
        predicted_cost_recursive: cost_rec,
        predicted_cost_baseline: cost_base,
        recursive_ms: deep.ms,
        baseline_ms: base.ms,
        r_recursive: deep.r,
        r_baseline: base.r,
        naive_checked,
        speedup_bar: case.speedup_bar,
        min_leaves: case.min_leaves,
        max_share,
        stats: deep.stats,
    }
}

fn cases(smoke: bool) -> Vec<Case> {
    if smoke {
        return vec![
            Case {
                instance: "chained-barbell-3x3",
                inst: chained_barbell(3, 3, 1, 11),
                max_k: 1,
                baseline: Baseline::Flat,
                speedup_bar: None,
                min_leaves: 2,
            },
            Case {
                instance: "nested-barbell-d2",
                inst: nested_barbell(2, 3, 1, 13),
                max_k: 1,
                baseline: Baseline::Flat,
                speedup_bar: None,
                min_leaves: 2,
            },
            // the CI smoke's >= 8-leaf deep-cut instance
            Case {
                instance: "kary-nested-cut-4x2",
                inst: kary_nested_cut(4, 2, 11),
                max_k: 2,
                baseline: Baseline::Pr5,
                speedup_bar: None,
                min_leaves: 8,
            },
        ];
    }
    vec![
        // smallest chained row big enough for an end-to-end timing to mean
        // anything: at 4x3 the flat sweep is 2^8 configs and planning
        // overhead decides the ratio
        Case {
            instance: "chained-barbell-5x4",
            inst: chained_barbell(5, 4, 1, 11),
            max_k: 1,
            baseline: Baseline::Flat,
            speedup_bar: None,
            min_leaves: 2,
        },
        Case {
            instance: "chained-barbell-6x4",
            inst: chained_barbell(6, 4, 1, 11),
            max_k: 1,
            baseline: Baseline::Flat,
            speedup_bar: None,
            min_leaves: 2,
        },
        Case {
            instance: "nested-barbell-d2",
            inst: nested_barbell(2, 4, 1, 13),
            max_k: 1,
            baseline: Baseline::Flat,
            speedup_bar: None,
            min_leaves: 2,
        },
        // designed to hold the 5x bar: the flat split leaves two 2^(m/2)
        // sides while recursion bottoms out at single clusters
        Case {
            instance: "nested-barbell-d3",
            inst: nested_barbell(3, 4, 1, 13),
            max_k: 1,
            baseline: Baseline::Flat,
            speedup_bar: Some(5.0),
            min_leaves: 2,
        },
        // small deep-cut instance, cheap enough for the naive cross-check;
        // at this size the planner's fallback gate deliberately keeps the
        // flat cut (a deep tree's per-leaf setup would eat the 2^10-config
        // saving), so the row pins the gate's behavior: one flat slot and
        // wall-clock parity with the baseline
        Case {
            instance: "kary-nested-cut-2x2",
            inst: kary_nested_cut(2, 2, 11),
            max_k: 2,
            baseline: Baseline::Pr5,
            speedup_bar: None,
            min_leaves: 1,
        },
        // >= 8-leaf deep-cut instance; at this size the baseline's 2^16
        // side sweeps are still cheap enough that planning overhead eats
        // the win, so no timing bar — the bars sit on the larger siblings
        Case {
            instance: "kary-nested-cut-4x2",
            inst: kary_nested_cut(4, 2, 11),
            max_k: 2,
            baseline: Baseline::Pr5,
            speedup_bar: None,
            min_leaves: 8,
        },
        // designed to hold the 3x bar vs the PR 5 planner: the root is a
        // width-2 multi-assignment cut the bridge-only planner sweeps whole
        // (2^20 configs per side) while the deep planner peels each side to
        // single-link leaves
        Case {
            instance: "kary-nested-cut-5x2",
            inst: kary_nested_cut(5, 2, 11),
            max_k: 2,
            baseline: Baseline::Pr5,
            speedup_bar: Some(3.0),
            min_leaves: 8,
        },
        Case {
            instance: "kary-nested-cut-6x2",
            inst: kary_nested_cut(6, 2, 11),
            max_k: 2,
            baseline: Baseline::Pr5,
            speedup_bar: Some(3.0),
            min_leaves: 8,
        },
        // wide coverage family: dozens of leaves, no timing bar
        Case {
            instance: "barbell-mesh-8",
            inst: barbell_mesh(8, 13),
            max_k: 2,
            baseline: Baseline::Pr5,
            speedup_bar: None,
            min_leaves: 8,
        },
    ]
}

/// Smoke-only hybrid row: a slack-barbell whose two 16-config leaves get an
/// 8-config budget, forcing both onto the Monte-Carlo path. Returns a JSON
/// fragment for the report plus any failures.
///
/// Uses the crude estimator so the answer is genuinely sampled (the exact
/// estimators shortcut small leaves to closed form and would come back
/// certified); `batch >= target` lets each forced leaf finish in one visit.
fn hybrid_smoke_row(failures: &mut Vec<String>) -> String {
    let inst = slack_barbell(2, 1, 11);
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let opts = CalcOptions {
        hybrid: true,
        hybrid_mc: McSettings {
            seed: 11,
            estimator: EstimatorKind::Crude,
            target: StopTarget {
                max_samples: 4096,
                ..StopTarget::default()
            },
            batch: 4096,
            ..McSettings::default()
        },
        budget: Budget {
            max_configs: Some(8),
            ..Budget::unlimited()
        },
        ..bench_options()
    };
    let start = Instant::now();
    let rep = ReliabilityCalculator::new()
        .with_strategy(Strategy::BottleneckAuto { max_k: 1 })
        .with_options(opts)
        .run_complete(&inst.net, d)
        .expect("hybrid smoke instance completes");
    let ms = start.elapsed().as_secs_f64() * 1e3;
    let exact = reliability_naive(&inst.net, d, &CalcOptions::default()).expect("naive");
    let slots = rep.bottleneck.map(|b| b.plan_slots).unwrap_or_default();
    let mc_leaves = slots.iter().filter(|s| s.kind == "mc").count();
    let (lo, hi) = rep.interval;
    println!(
        "{:>20}: {} links, {} mc leaves, statistical [{:.6}, {:.6}] covers exact {:.6}, {:.2} ms",
        "hybrid-slack-2x1",
        inst.net.edge_count(),
        mc_leaves,
        lo,
        hi,
        exact,
        ms
    );
    if mc_leaves == 0 {
        failures.push("hybrid smoke: the budget forced no MC leaf".to_string());
    }
    if rep.certified {
        failures.push("hybrid smoke: a sampled answer must be labelled statistical".to_string());
    }
    if !(0.0 <= lo && lo <= exact && exact <= hi && hi <= 1.0) {
        failures.push(format!(
            "hybrid smoke: interval [{lo}, {hi}] must sit in [0, 1] and cover {exact}"
        ));
    }
    format!(
        concat!(
            "{{\"instance\": \"hybrid-slack-2x1\", \"mc_leaves\": {}, ",
            "\"r_low\": {:.12e}, \"r_high\": {:.12e}, \"exact\": {:.12e}, ",
            "\"certified\": {}, \"ms\": {:.3}}}"
        ),
        mc_leaves, lo, hi, exact, rep.certified, ms
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_plan.json".to_string());

    let cases = cases(smoke);
    let rows: Vec<Row> = cases.iter().map(run_case).collect();

    let mut failures = Vec::new();
    for row in &rows {
        println!(
            "{:>20}: {} links, {} plan leaves (need >= {}), recursive {:.2} ms vs {} {:.2} ms \
             ({:.1}x{}), predicted cost {:.2e} vs {:.2e}, max share {:.2}, \
             {} repairs / {} full resolves, agree={}",
            row.instance,
            row.edges,
            row.plan_leaves,
            row.min_leaves,
            row.recursive_ms,
            row.baseline,
            row.baseline_ms,
            row.speedup(),
            row.speedup_bar
                .map_or(String::new(), |b| format!(", bar {b:.0}x")),
            row.predicted_cost_recursive,
            row.predicted_cost_baseline,
            row.max_share,
            row.stats.repairs,
            row.stats.full_resolves,
            row.agrees()
        );
        if !row.agrees() {
            failures.push(format!(
                "{}: recursive {:.15e} vs {} {:.15e} differ beyond 1e-12",
                row.instance, row.r_recursive, row.baseline, row.r_baseline
            ));
        }
        if row.plan_leaves < row.min_leaves {
            failures.push(format!(
                "{}: the deep plan has {} leaf slots, need >= {}",
                row.instance, row.plan_leaves, row.min_leaves
            ));
        }
        // The per-instance acceptance bars — every row carrying a bar was
        // designed to hold it, so a miss is a regression, not noise. Only
        // meaningful at measurement size; smoke instances are too small for
        // stable timings.
        if !smoke && !row.held_to_bar() {
            failures.push(format!(
                "{}: only {:.1}x faster than the {} baseline (bar {:.1}x)",
                row.instance,
                row.speedup(),
                row.baseline,
                row.speedup_bar.unwrap_or(f64::NAN)
            ));
        }
        // The deep planner must never *lose* to the shape it would fall back
        // to: when its predicted cost is not decisively below the baseline's,
        // the planner keeps the plain cut, so a regressed row means the
        // fallback gate failed to engage. Rows where the gate engages run
        // the baseline's own shape (equal predicted costs) and sit at exact
        // parity, making the measured ratio pure noise — those get a wider
        // tolerance, still far above the 0.6x class of regression the gate
        // exists to catch.
        let parity = (row.predicted_cost_recursive - row.predicted_cost_baseline).abs() < 1e-9;
        let floor = if parity { 0.90 } else { 0.95 };
        if !smoke && row.speedup() < floor {
            failures.push(format!(
                "{}: {:.2}x — slower than the {} baseline",
                row.instance,
                row.speedup(),
                row.baseline
            ));
        }
    }

    let hybrid = smoke.then(|| hybrid_smoke_row(&mut failures));
    let body: Vec<String> = rows.iter().map(|r| format!("    {}", r.json())).collect();
    let hybrid_field = hybrid.map_or(String::new(), |h| format!(",\n  \"hybrid\": {h}"));
    let json = format!(
        "{{\n  \"benchmark\": \"bench_plan\",\n  \"smoke\": {smoke},\n  \
         \"rows\": [\n{}\n  ]{hybrid_field}\n}}\n",
        body.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write json");
    println!("wrote {out_path}");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}
