//! Shared harness pieces for the benchmark suite and the `paper_tables`
//! binary. Each experiment id in DESIGN.md maps to one bench target in
//! `benches/` plus (where the artifact is a table/figure rather than a
//! timing) a `paper_tables` subcommand.
//!
//! JSON artifacts follow a uniform row convention: rows that were skipped
//! (e.g. the naive path past its `2^|E|` budget in `BENCH_sweep.json`) keep
//! the exact key set of measured rows with every metric `null` and a
//! non-null `skipped` reason, so downstream tooling never branches on row
//! shape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use flowrel_core::FlowDemand;
use workloads::generators::{barbell, BarbellParams, Instance};

/// A barbell instance sized so the *total* edge count is (approximately)
/// `target_edges`, split evenly, with `k` cut links. Used by the scaling
/// sweeps (FIG1, THM-MAIN).
pub fn barbell_with_edges(
    target_edges: usize,
    k: usize,
    demand: u64,
    seed: u64,
) -> (Instance, Vec<netgraph::EdgeId>) {
    // per cluster: (nodes-1) tree edges + extra edges; solve for a size whose
    // edge count lands near (target - k) / 2
    let side_edges = (target_edges.saturating_sub(k)) / 2;
    let nodes = (side_edges / 2 + 2).max(2);
    let tree_edges = nodes - 1;
    let extra = side_edges.saturating_sub(tree_edges);
    barbell(BarbellParams {
        cluster_nodes: nodes,
        cluster_extra_edges: extra,
        cut_links: k,
        cut_capacity: demand.max(1),
        demand,
        seed,
    })
}

/// A barbell with explicitly skewed sides, for the α sweep: the left side
/// gets `left_edges` links and the right side `right_edges` (α ≈ the larger
/// share).
pub fn skewed_barbell(
    left_edges: usize,
    right_edges: usize,
    k: usize,
    demand: u64,
    seed: u64,
) -> (Instance, Vec<netgraph::EdgeId>) {
    use netgraph::{GraphKind, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let cluster = |edges: usize, b: &mut NetworkBuilder, rng: &mut StdRng| {
        let nodes = (edges / 2 + 2).max(2);
        let ids = b.add_nodes(nodes);
        let mut count = 0usize;
        for i in 1..nodes {
            let parent = rng.gen_range(0..i);
            b.add_edge(
                ids[parent],
                ids[i],
                demand.max(1),
                rng.gen_range(2..20) as f64 / 64.0,
            )
            .expect("edge");
            count += 1;
        }
        while count < edges {
            let u = rng.gen_range(0..nodes);
            let v = rng.gen_range(0..nodes);
            if u != v {
                b.add_edge(
                    ids[u],
                    ids[v],
                    demand.max(1),
                    rng.gen_range(2..20) as f64 / 64.0,
                )
                .expect("edge");
                count += 1;
            }
        }
        ids
    };
    let left = cluster(left_edges, &mut b, &mut rng);
    let right = cluster(right_edges, &mut b, &mut rng);
    let mut cut = Vec::new();
    for _ in 0..k {
        let u = left[rng.gen_range(0..left.len())];
        let v = right[rng.gen_range(0..right.len())];
        cut.push(
            b.add_edge(u, v, demand.max(1), rng.gen_range(2..20) as f64 / 64.0)
                .expect("edge"),
        );
    }
    (
        Instance {
            net: b.build(),
            source: left[0],
            sink: *right.last().expect("non-empty"),
            demand,
        },
        cut,
    )
}

/// A capacity-tight barbell for the certificate benchmarks: two
/// unit-capacity rings of `cluster_nodes` nodes joined by `k ≥ 2`
/// unit-capacity cut links, streaming demand 2. Every link is a potential
/// bottleneck (the paper's premise), so saturated-cut certificates refute
/// large swaths of the configuration space: any cut needs two alive links
/// to carry the stream.
pub fn ring_barbell(
    cluster_nodes: usize,
    k: usize,
    seed: u64,
) -> (Instance, Vec<netgraph::EdgeId>) {
    use netgraph::{GraphKind, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(cluster_nodes >= 3 && k >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let ring = |b: &mut NetworkBuilder, rng: &mut StdRng| {
        let ids = b.add_nodes(cluster_nodes);
        for i in 0..cluster_nodes {
            let p = rng.gen_range(2..20) as f64 / 64.0;
            b.add_edge(ids[i], ids[(i + 1) % cluster_nodes], 1, p)
                .expect("edge");
        }
        ids
    };
    let left = ring(&mut b, &mut rng);
    let right = ring(&mut b, &mut rng);
    let mut cut = Vec::new();
    for _ in 0..k {
        let u = left[rng.gen_range(0..left.len())];
        let v = right[rng.gen_range(0..right.len())];
        cut.push(
            b.add_edge(u, v, 1, rng.gen_range(2..20) as f64 / 64.0)
                .expect("edge"),
        );
    }
    (
        Instance {
            net: b.build(),
            source: left[0],
            sink: *right.last().expect("non-empty"),
            demand: 2,
        },
        cut,
    )
}

/// A capacity-tight barbell: two random clusters with link capacities 1–2
/// joined by `k` unit-capacity cut links, demand pinned to the all-alive max
/// flow. Every configuration sits on the feasibility boundary, so verdicts
/// depend on *capacity sums* across many distinct near-minimal cuts — the
/// regime where a bounded certificate cache misses most and warm-flow repair
/// carries the sweep.
pub fn tight_barbell(
    cluster_nodes: usize,
    cluster_extra: usize,
    k: usize,
    seed: u64,
) -> (Instance, Vec<netgraph::EdgeId>) {
    use netgraph::{GraphKind, NetworkBuilder};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    assert!(cluster_nodes >= 2 && k >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let cluster = |b: &mut NetworkBuilder, rng: &mut StdRng| {
        let ids = b.add_nodes(cluster_nodes);
        for i in 1..cluster_nodes {
            let parent = rng.gen_range(0..i);
            let p = rng.gen_range(2..16) as f64 / 64.0;
            b.add_edge(ids[parent], ids[i], rng.gen_range(1..=2), p)
                .expect("edge");
        }
        let mut added = 0;
        while added < cluster_extra {
            let u = rng.gen_range(0..cluster_nodes);
            let v = rng.gen_range(0..cluster_nodes);
            if u == v {
                continue;
            }
            let p = rng.gen_range(2..16) as f64 / 64.0;
            b.add_edge(ids[u], ids[v], rng.gen_range(1..=2), p)
                .expect("edge");
            added += 1;
        }
        ids
    };
    let left = cluster(&mut b, &mut rng);
    let right = cluster(&mut b, &mut rng);
    let mut cut = Vec::new();
    for _ in 0..k {
        let u = left[rng.gen_range(0..left.len())];
        let v = right[rng.gen_range(0..right.len())];
        let p = rng.gen_range(2..16) as f64 / 64.0;
        cut.push(b.add_edge(u, v, 1, p).expect("edge"));
    }
    let net = b.build();
    let source = left[0];
    let sink = *right.last().expect("non-empty cluster");
    // pin the demand to the all-alive max flow: every link failure now
    // threatens feasibility, which is exactly the hard regime
    let mut probe =
        flowrel_core::DemandOracle::new(&net, source, sink, 1, maxflow::SolverKind::Dinic);
    let demand = probe.max_flow_all_alive().max(1);
    (
        Instance {
            net,
            source,
            sink,
            demand,
        },
        cut,
    )
}

/// Demand triple of an instance.
pub fn demand_of(inst: &Instance) -> FlowDemand {
    FlowDemand::new(inst.source, inst.sink, inst.demand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrel_core::{reliability_bottleneck, reliability_naive, CalcOptions};

    #[test]
    fn barbell_with_edges_hits_target() {
        for target in [12usize, 16, 20] {
            let (inst, cut) = barbell_with_edges(target, 2, 2, 5);
            let m = inst.net.edge_count();
            assert!(
                m >= target - 3 && m <= target + 3,
                "target {target}, got {m}"
            );
            assert_eq!(cut.len(), 2);
        }
    }

    #[test]
    fn ring_barbell_is_tight_but_feasible() {
        let (inst, cut) = ring_barbell(5, 3, 7);
        assert_eq!(inst.net.edge_count(), 2 * 5 + 3);
        assert_eq!(cut.len(), 3);
        assert!(inst.net.edges().iter().all(|e| e.capacity == 1));
        // the two ring paths carry the stream when everything is alive
        let d = demand_of(&inst);
        let naive = reliability_naive(&inst.net, d, &CalcOptions::default()).unwrap();
        assert!(naive > 0.0);
        let bn = reliability_bottleneck(&inst.net, d, &cut, &CalcOptions::default()).unwrap();
        assert!((naive - bn).abs() < 1e-10);
    }

    #[test]
    fn skewed_barbell_respects_split() {
        let (inst, cut) = skewed_barbell(4, 12, 2, 1, 3);
        assert_eq!(inst.net.edge_count(), 4 + 12 + 2);
        assert_eq!(cut.len(), 2);
        // and both algorithms agree on it
        let d = demand_of(&inst);
        let naive = reliability_naive(&inst.net, d, &CalcOptions::default()).unwrap();
        let bn = reliability_bottleneck(&inst.net, d, &cut, &CalcOptions::default()).unwrap();
        assert!((naive - bn).abs() < 1e-10);
    }
}
