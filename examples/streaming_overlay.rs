//! Domain scenario: compare the reliability of the classic P2P streaming
//! overlay shapes (tree, multi-tree, mesh, tree-mesh hybrid) for the same
//! peer population (experiment DOM-P2P).
//!
//! Run with `cargo run --example streaming_overlay`.

use flowrel::core::{FlowDemand, ReliabilityCalculator};
use flowrel::overlay::{
    hybrid_tree_mesh, multi_tree, random_mesh, single_tree, ChurnModel, Peer, StreamingScenario,
};

fn reliability_at_last_peer(sc: &StreamingScenario, demand: u64) -> f64 {
    let sub = *sc.peers.last().expect("at least one peer");
    ReliabilityCalculator::new()
        .run_complete(&sc.net, FlowDemand::new(sc.server, sub, demand))
        .expect("reliability")
        .reliability
}

fn main() {
    let peers: Vec<Peer> = (0..8)
        .map(|i| Peer::new(4, 300.0 + 150.0 * (i % 4) as f64))
        .collect();
    let churn = ChurnModel::new(90.0).with_base_loss(0.02);
    let rate = 2;

    println!("8 peers, stream rate {rate}, 90 s window, 2% transport loss\n");
    println!(
        "{:<22} {:>14} {:>14}",
        "overlay", "full stream", "half stream"
    );

    let tree = single_tree(&peers, 2, rate, &churn);
    println!(
        "{:<22} {:>14.6} {:>14.6}",
        "single tree (f=2)",
        reliability_at_last_peer(&tree, rate),
        reliability_at_last_peer(&tree, 1),
    );

    let multi = multi_tree(&peers, rate, &churn);
    println!(
        "{:<22} {:>14.6} {:>14.6}",
        "multi-tree (2 stripes)",
        reliability_at_last_peer(&multi, rate),
        reliability_at_last_peer(&multi, 1),
    );

    for neighbors in [2, 3] {
        let mesh = random_mesh(&peers, neighbors, rate, &churn, 7);
        println!(
            "{:<22} {:>14.6} {:>14.6}",
            format!("mesh (m={neighbors})"),
            reliability_at_last_peer(&mesh, rate),
            reliability_at_last_peer(&mesh, 1),
        );
    }

    let hybrid = hybrid_tree_mesh(&peers, 0.5, 2, rate, &churn, 7);
    println!(
        "{:<22} {:>14.6} {:>14.6}",
        "hybrid treebone+mesh",
        reliability_at_last_peer(&hybrid, rate),
        reliability_at_last_peer(&hybrid, 1),
    );

    println!(
        "\nMulti-tree striping keeps *partial* delivery far more reliable than a\n\
         single tree (one peer departure costs one sub-stream, not the whole\n\
         stream) — the fault-tolerance argument of SplitStream/CoopNet that\n\
         motivates the paper's flow-based reliability model."
    );
}
