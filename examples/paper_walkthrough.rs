//! Walk through the paper's worked examples (1–6) computationally.
//!
//! Run with `cargo run --example paper_walkthrough`.

use flowrel::core::{
    decompose, enumerate_assignments, reliability_bottleneck, reliability_naive,
    validate_bottleneck_set, Assignment, CalcOptions, FlowDemand, RealizationTable, SideOracle,
};
use flowrel::maxflow::SolverKind;
use flowrel::workloads::paper;

fn fmt_assignment(a: &Assignment) -> String {
    let inner: Vec<String> = a.amounts.iter().map(|x| x.to_string()).collect();
    format!("({})", inner.join(","))
}

fn main() {
    // ---- Example 1: the assignment set ------------------------------------
    println!("== Example 1: d = 5 over three capacity-3 bottleneck links ==");
    let (d, caps) = paper::example1_caps();
    let ranges: Vec<(i64, i64)> = caps
        .iter()
        .map(|&c| (0i64, (c as i64).min(d as i64)))
        .collect();
    let set = enumerate_assignments(d, &ranges);
    let rendered: Vec<String> = set.iter().map(fmt_assignment).collect();
    println!("|D| = {}  D = {{{}}}\n", set.len(), rendered.join(", "));

    // ---- Examples 3-5 on the reconstructed Fig. 4 instance ----------------
    println!("== Fig. 4 / Example 3: two bottleneck links, demand 2 ==");
    let (inst, cut, _) = paper::fig4_parts();
    let demand = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let bset = validate_bottleneck_set(&inst.net, demand.source, demand.sink, &cut).unwrap();
    println!(
        "bottleneck set: {:?}   sides: |E_s| = {}, |E_t| = {}   alpha = {:.3}",
        bset.edges,
        bset.side_s_edges,
        bset.side_t_edges,
        bset.alpha(inst.net.edge_count())
    );
    let assignments = enumerate_assignments(2, &[(0i64, 2), (0, 2)]);
    let rendered: Vec<String> = assignments.iter().map(fmt_assignment).collect();
    println!("assignments: {{{}}}", rendered.join(", "));

    // ---- Fig. 5: realization sets of three side-s configurations ----------
    println!("\n== Fig. 5: realized assignment sets of G_s configurations ==");
    let dec = decompose(&inst.net, &demand, &bset);
    let mut oracle = SideOracle::new(&dec.side_s, &assignments, SolverKind::Dinic).unwrap();
    let table = RealizationTable::build(&mut oracle, 26, 20, false).unwrap();
    for (idx, (alive, _)) in paper::fig5_configurations().iter().enumerate() {
        let bits = alive.iter().fold(0usize, |acc, &i| acc | 1 << i);
        let realized: Vec<String> = table
            .realized(bits)
            .into_iter()
            .map(|j| fmt_assignment(&assignments[j]))
            .collect();
        let labels = ["(a)", "(b)", "(c)"];
        println!(
            "config {} alive c{{{}}}: realizes {{{}}}",
            labels[idx],
            alive
                .iter()
                .map(|i| (i + 1).to_string())
                .collect::<Vec<_>>()
                .join(","),
            realized.join(", ")
        );
    }

    // ---- Eq. 3: the reliability itself -------------------------------------
    println!("\n== Reliability of the Fig. 4 instance ==");
    let opts = CalcOptions::default();
    let bn = reliability_bottleneck(&inst.net, demand, &cut, &opts).unwrap();
    let naive = reliability_naive(&inst.net, demand, &opts).unwrap();
    println!("bottleneck algorithm: {bn:.9}");
    println!("naive enumeration:    {naive:.9}");
    println!("difference:           {:.2e}", (bn - naive).abs());
}
