//! Quickstart: define a small streaming network, ask for its reliability.
//!
//! Run with `cargo run --example quickstart`.

use flowrel::core::{FlowDemand, ReliabilityCalculator, Strategy};
use flowrel::netgraph::{GraphKind, NetworkBuilder};

fn main() {
    // A media server s streams at rate 2 to a subscriber t through two
    // relays; every link can fail independently.
    //
    //        ┌─ a ─┐            capacities 2, failure probs on links
    //   s ───┤     ├─── t
    //        └─ b ─┘
    let mut b = NetworkBuilder::new(GraphKind::Directed);
    let s = b.add_node();
    let a = b.add_node();
    let bb = b.add_node();
    let t = b.add_node();
    b.add_edge(s, a, 2, 0.05).unwrap();
    b.add_edge(s, bb, 2, 0.10).unwrap();
    b.add_edge(a, t, 2, 0.05).unwrap();
    b.add_edge(bb, t, 2, 0.10).unwrap();
    b.add_edge(a, bb, 1, 0.20).unwrap(); // cross link
    let net = b.build();

    let calc = ReliabilityCalculator::new();
    for d in 1..=4 {
        let demand = FlowDemand::new(s, t, d);
        let report = calc.run_complete(&net, demand).expect("reliability");
        println!(
            "demand d={d}: reliability = {:.6}   (via {})",
            report.reliability, report.algorithm
        );
    }

    // force the naive baseline to confirm
    let naive = ReliabilityCalculator::new()
        .with_strategy(Strategy::Naive)
        .run_complete(&net, FlowDemand::new(s, t, 2))
        .unwrap();
    println!("naive check at d=2: {:.6}", naive.reliability);
}
