//! Bottleneck discovery and the decomposition speed-up on barbell networks
//! (the THM-MAIN experiment, interactively).
//!
//! Run with `cargo run --release --example bottleneck_analysis`.

use std::time::Instant;

use flowrel::core::{
    find_bottleneck_set, reliability_bottleneck, reliability_naive, CalcOptions, FlowDemand,
};
use flowrel::workloads::generators::{barbell, BarbellParams};

fn main() {
    println!(
        "{:>6} {:>4} {:>7} {:>12} {:>12} {:>9}  agreement",
        "|E|", "k", "alpha", "naive", "bottleneck", "speedup"
    );
    for cluster_nodes in [4usize, 5, 6, 7] {
        let params = BarbellParams {
            cluster_nodes,
            cluster_extra_edges: cluster_nodes,
            cut_links: 2,
            cut_capacity: 2,
            demand: 2,
            seed: 42,
        };
        let (inst, cut) = barbell(params);
        let demand = FlowDemand::new(inst.source, inst.sink, inst.demand);
        let opts = CalcOptions::default();

        let t0 = Instant::now();
        let naive = reliability_naive(&inst.net, demand, &opts).expect("naive");
        let t_naive = t0.elapsed();

        let t0 = Instant::now();
        let bn = reliability_bottleneck(&inst.net, demand, &cut, &opts).expect("bottleneck");
        let t_bn = t0.elapsed();

        let set = find_bottleneck_set(&inst.net, demand.source, demand.sink, 3)
            .expect("the planted cut is discoverable");
        let alpha = set.alpha(inst.net.edge_count());

        println!(
            "{:>6} {:>4} {:>7.3} {:>12?} {:>12?} {:>8.1}x  |Δ| = {:.2e}",
            inst.net.edge_count(),
            cut.len(),
            alpha,
            t_naive,
            t_bn,
            t_naive.as_secs_f64() / t_bn.as_secs_f64().max(1e-9),
            (naive - bn).abs()
        );
    }
    println!(
        "\nThe naive sweep doubles its work with every added link; the\n\
         decomposition only pays for the larger side (2^{{α|E|}}), so the gap\n\
         widens exponentially — the paper's headline claim."
    );
}
