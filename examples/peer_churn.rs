//! Peer-level churn vs connection-level churn.
//!
//! The overlay builders (and the paper) model churn at *connection* level:
//! links fail independently. In reality peers fail as units, taking all of
//! their connections at once. This example quantifies the difference on one
//! topology:
//!
//! * **peer churn** — exact, via the classic node-splitting reduction
//!   ([`split_node_failures`]);
//! * **connection churn** — the independent-link approximation, swept over
//!   every churn level at once with the structural reliability polynomial.
//!
//! Run with `cargo run --release --example peer_churn`.

use flowrel::core::{
    reliability_naive, reliability_polynomial, split_node_failures, CalcOptions, FlowDemand,
};
use flowrel::netgraph::{GraphKind, Network, NetworkBuilder, NodeId};

/// Server, four relays in a lattice, subscriber. `link_p` on all connections.
fn overlay(link_p: f64) -> (Network, NodeId, NodeId) {
    let mut b = NetworkBuilder::new(GraphKind::Directed);
    let s = b.add_node();
    let relays: Vec<_> = (0..4).map(|_| b.add_node()).collect();
    let t = b.add_node();
    for (i, &r) in relays.iter().enumerate() {
        b.add_edge(s, r, 1, link_p).unwrap();
        b.add_edge(r, t, 1, link_p).unwrap();
        if i + 1 < relays.len() {
            b.add_edge(r, relays[i + 1], 1, link_p).unwrap();
        }
    }
    (b.build(), s, t)
}

fn main() {
    let opts = CalcOptions::default();

    // connection-level churn: the polynomial gives every q from one sweep
    let (net, s, t) = overlay(0.5); // probabilities ignored by the polynomial
    let poly = reliability_polynomial(&net, FlowDemand::new(s, t, 1), &opts).unwrap();
    println!(
        "connection-churn polynomial: {} operational configurations, needs >= {:?} links",
        poly.operational_configurations(),
        poly.min_operational_links()
    );

    // peer-level churn: exact node-split computation per q
    println!(
        "\n{:>6} {:>18} {:>18} {:>10}",
        "q", "connection churn", "peer churn", "gap"
    );
    let caps = vec![u64::MAX; net.node_count()];
    for q10 in 0..=9 {
        let q = q10 as f64 / 10.0;
        let r_link = poly.evaluate(q);

        let (perfect_net, ps, pt) = overlay(0.0);
        let mut probs = vec![q; perfect_net.node_count()];
        probs[ps.index()] = 0.0;
        probs[pt.index()] = 0.0;
        let split = split_node_failures(&perfect_net, &probs, &caps).unwrap();
        let r_node = reliability_naive(
            &split.net,
            FlowDemand::new(split.entry(ps), split.exit(pt), 1),
            &opts,
        )
        .unwrap();
        println!(
            "{q:>6.1} {r_link:>18.6} {r_node:>18.6} {:>10.4}",
            r_link - r_node
        );
    }
    println!(
        "\nAt equal failure probability, peer churn is *kinder* here: one peer\n\
         departure removes an entire relay lane, but there are only 4 fallible\n\
         units instead of 11 fallible connections. The models genuinely differ —\n\
         which one matches a deployment depends on whether sessions or transport\n\
         dominate the loss; the library supports both (DESIGN.md, substitutions)."
    );
}
