//! Census of every bottleneck set of a network: which decompositions exist,
//! how balanced they are, and how the choice affects the algorithm's cost.
//!
//! Run with `cargo run --release --example cut_census`.

use std::time::Instant;

use flowrel::core::{
    find_all_bottleneck_sets, reliability_bottleneck, reliability_naive, CalcOptions, FlowDemand,
};
use flowrel::workloads::generators::{barbell, BarbellParams};

fn main() {
    let (inst, _) = barbell(BarbellParams {
        cluster_nodes: 5,
        cluster_extra_edges: 3,
        cut_links: 2,
        cut_capacity: 2,
        demand: 2,
        seed: 23,
    });
    let demand = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let m = inst.net.edge_count();
    println!(
        "barbell instance: {} nodes, {m} links, demand {}",
        inst.net.node_count(),
        inst.demand
    );

    let sets = find_all_bottleneck_sets(&inst.net, demand.source, demand.sink, 3).expect("census");
    println!("\n{} bottleneck sets with k <= 3:", sets.len());
    println!(
        "{:>4} {:>18} {:>8} {:>8} {:>7} {:>12} {:>14}",
        "k", "links", "|E_s|", "|E_t|", "alpha", "time", "reliability"
    );

    let opts = CalcOptions::default();
    let naive = reliability_naive(&inst.net, demand, &opts).expect("naive");
    let mut rows: Vec<_> = sets.iter().collect();
    rows.sort_by_key(|s| (s.side_s_edges.max(s.side_t_edges), s.k()));
    for set in rows.iter().take(10) {
        let t0 = Instant::now();
        let r = reliability_bottleneck(&inst.net, demand, &set.edges, &opts);
        let dt = t0.elapsed();
        let (r_txt, ok) = match r {
            Ok(v) => (format!("{v:.9}"), (v - naive).abs() < 1e-10),
            Err(e) => (format!("{e}"), true),
        };
        assert!(ok, "every decomposition must agree with naive");
        println!(
            "{:>4} {:>18} {:>8} {:>8} {:>7.3} {:>12?} {:>14}",
            set.k(),
            format!("{:?}", set.edges),
            set.side_s_edges,
            set.side_t_edges,
            set.alpha(m),
            dt,
            r_txt
        );
    }
    println!("\nnaive reference: {naive:.9}");
    println!(
        "Every valid decomposition yields the same reliability; the balanced\n\
         ones are fastest (cost 2^{{max side}}), which is why the search\n\
         minimizes the larger side — the α in the paper's bound."
    );
}
