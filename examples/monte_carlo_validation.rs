//! Monte-Carlo vs exact: convergence of the sampling estimator to the exact
//! reliability (experiment ABL-MC, interactively).
//!
//! Run with `cargo run --release --example monte_carlo_validation`.

use flowrel::core::{reliability_naive, CalcOptions, FlowDemand};
use flowrel::montecarlo;
use flowrel::workloads::generators::{barbell, BarbellParams};

fn main() {
    let (inst, _) = barbell(BarbellParams {
        cluster_nodes: 5,
        seed: 11,
        ..Default::default()
    });
    let demand = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let exact = reliability_naive(&inst.net, demand, &CalcOptions::default()).expect("exact");
    println!(
        "barbell: |V| = {}, |E| = {}, d = {}",
        inst.net.node_count(),
        inst.net.edge_count(),
        inst.demand
    );
    println!("exact reliability: {exact:.9}\n");
    println!(
        "{:>10} {:>12} {:>12} {:>10}  covers?",
        "samples", "estimate", "abs error", "CI half"
    );
    for exp in [8u32, 10, 12, 14, 16, 18] {
        let samples = 1u64 << exp;
        let est = montecarlo::estimate(&inst.net, inst.source, inst.sink, inst.demand, samples, 7)
            .expect("estimate");
        let (lo, hi) = est.ci95();
        println!(
            "{:>10} {:>12.6} {:>12.2e} {:>10.2e}  {}",
            samples,
            est.mean,
            (est.mean - exact).abs(),
            (hi - lo) / 2.0,
            if est.covers(exact) { "yes" } else { "NO" }
        );
    }
    println!("\nsequential stopping rule targeting a ±0.002 95% CI:");
    let est = montecarlo::estimate_until(
        &inst.net,
        inst.source,
        inst.sink,
        inst.demand,
        0.002,
        1 << 22,
        13,
    )
    .expect("estimate");
    println!(
        "stopped after {} samples at {:.6} (exact {:.6}, covered: {})",
        est.samples,
        est.mean,
        exact,
        est.covers(exact)
    );
}
