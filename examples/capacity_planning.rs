//! Capacity planning with link-importance analysis: which overlay connection
//! should be hardened first to maximize the subscriber's stream reliability?
//!
//! Run with `cargo run --release --example capacity_planning`.

use flowrel::core::{birnbaum_importance, CalcOptions, FlowDemand};
use flowrel::netgraph::{EdgeId, GraphKind, Network, NetworkBuilder};
use flowrel::overlay::{random_mesh, ChurnModel, Peer};

/// Rebuilds `net` with link `e`'s failure probability halved.
fn harden(net: &Network, e: usize) -> Network {
    let mut b = NetworkBuilder::with_nodes(net.kind(), net.node_count());
    debug_assert_eq!(net.kind(), GraphKind::Directed);
    for (i, edge) in net.edges().iter().enumerate() {
        let p = if i == e {
            edge.fail_prob / 2.0
        } else {
            edge.fail_prob
        };
        b.add_edge(edge.src, edge.dst, edge.capacity, p)
            .expect("valid edge");
    }
    b.build()
}

fn main() {
    let peers: Vec<Peer> = (0..7)
        .map(|i| Peer::new(3, 200.0 + 120.0 * (i % 3) as f64))
        .collect();
    let churn = ChurnModel::new(90.0).with_base_loss(0.02);
    let sc = random_mesh(&peers, 2, 1, &churn, 5);
    let subscriber = *sc.peers.last().expect("peers");
    let demand = FlowDemand::new(sc.server, subscriber, 1);
    let opts = CalcOptions::default();

    let mut net = sc.net.clone();
    println!(
        "mesh overlay, {} links; subscriber = {subscriber}",
        net.edge_count()
    );
    println!("greedy hardening: halve the failure probability of the most");
    println!("improvement-potent link, three rounds\n");

    for round in 1..=3 {
        let imp = birnbaum_importance(&net, demand, &opts).expect("importance");
        let ranked = imp.ranked();
        let best = ranked[0];
        let edge = net.edge(EdgeId::from(best));
        println!(
            "round {round}: R = {:.6}; top links by improvement potential:",
            imp.reliability
        );
        for &e in ranked.iter().take(3) {
            let ed = net.edge(EdgeId::from(e));
            println!(
                "    e{e} ({} -> {}, p = {:.4}): I_B = {:.5}, potential = {:.5}",
                ed.src, ed.dst, ed.fail_prob, imp.birnbaum[e], imp.improvement[e]
            );
        }
        println!(
            "  hardening e{best} ({} -> {}): p {:.4} -> {:.4}\n",
            edge.src,
            edge.dst,
            edge.fail_prob,
            edge.fail_prob / 2.0
        );
        net = harden(&net, best);
    }
    let final_imp = birnbaum_importance(&net, demand, &opts).expect("importance");
    println!("final reliability: {:.6}", final_imp.reliability);
}
