//! # flowrel — reliability calculation of P2P streaming flow networks
//!
//! Facade crate re-exporting the whole workspace. See the README for a guided
//! tour; the primary entry point is [`flowrel_core::ReliabilityCalculator`].

pub mod analysis;

pub use exactmath;
pub use flowrel_core as core;
pub use flowrel_overlay as overlay;
pub use maxflow;
pub use montecarlo;
pub use netgraph;
pub use workloads;
