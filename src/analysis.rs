//! Cross-crate analysis helpers that need both the overlay layer and the
//! reliability core (which deliberately do not depend on each other).

use flowrel_core::{CalcOptions, FlowDemand, ReliabilityCalculator, ReliabilityError, Strategy};
use flowrel_overlay::StreamingScenario;
use netgraph::NodeId;

/// Per-subscriber reliability of a streaming scenario.
#[derive(Clone, Debug)]
pub struct ReliabilityProfile {
    /// `(peer, reliability of receiving `rate` sub-streams)` in peer order.
    pub per_peer: Vec<(NodeId, f64)>,
    /// The stream rate the profile was computed for.
    pub rate: u64,
}

impl ReliabilityProfile {
    /// The peer with the lowest delivery reliability.
    pub fn weakest(&self) -> Option<(NodeId, f64)> {
        self.per_peer
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("reliabilities are finite"))
    }

    /// The average reliability across subscribers.
    pub fn mean(&self) -> f64 {
        if self.per_peer.is_empty() {
            return 0.0;
        }
        self.per_peer.iter().map(|&(_, r)| r).sum::<f64>() / self.per_peer.len() as f64
    }
}

/// Computes every peer's reliability of receiving `rate` sub-streams from the
/// scenario's server, with the auto strategy.
pub fn reliability_profile(
    sc: &StreamingScenario,
    rate: u64,
    opts: &CalcOptions,
) -> Result<ReliabilityProfile, ReliabilityError> {
    let calc = ReliabilityCalculator::new()
        .with_strategy(Strategy::Auto)
        .with_options(opts.clone());
    let mut per_peer = Vec::with_capacity(sc.peers.len());
    for &p in &sc.peers {
        let report = calc.run_complete(&sc.net, FlowDemand::new(sc.server, p, rate))?;
        per_peer.push((p, report.reliability));
    }
    Ok(ReliabilityProfile { per_peer, rate })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flowrel_overlay::{single_tree, ChurnModel, Peer};

    #[test]
    fn tree_profile_degrades_with_depth() {
        let peers: Vec<Peer> = (0..7).map(|_| Peer::new(2, 600.0)).collect();
        let sc = single_tree(&peers, 2, 1, &ChurnModel::new(60.0));
        let profile = reliability_profile(&sc, 1, &CalcOptions::default()).expect("profile");
        assert_eq!(profile.per_peer.len(), 7);
        // the tree root's children are most reliable; leaves are weakest
        let (weak, weak_r) = profile.weakest().expect("non-empty");
        assert!(
            sc.peers[2..].contains(&weak),
            "a deep peer is weakest, got {weak}"
        );
        let first_r = profile.per_peer[0].1;
        assert!(first_r >= weak_r);
        assert!(profile.mean() <= first_r && profile.mean() >= weak_r);
        assert_eq!(profile.rate, 1);
    }
}
