//! Computational reproduction of the paper's figures and worked examples
//! (experiment ids FIG2, FIG3/EX1, FIG4/EX3, FIG5 in DESIGN.md).

use flowrel::core::{
    decompose, enumerate_assignments, reliability_bottleneck, reliability_bridge,
    reliability_factoring, reliability_naive, reliability_naive_exact, validate_bottleneck_set,
    CalcOptions, FlowDemand, RealizationTable, SideOracle,
};
use flowrel::netgraph::EdgeMask;
use flowrel::workloads::paper;

/// FIG2: on the bridge graph, Eq. 1's decomposition agrees with naive
/// enumeration, factoring, and the full bottleneck machinery.
#[test]
fn fig2_all_algorithms_agree() {
    let (inst, bridge) = paper::fig2_bridge();
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let opts = CalcOptions::default();
    let naive = reliability_naive(&inst.net, d, &opts).unwrap();
    let bridge_r = reliability_bridge(&inst.net, d, &opts).unwrap();
    let factoring = reliability_factoring(&inst.net, d, &opts).unwrap();
    let bottleneck = reliability_bottleneck(&inst.net, d, &[bridge], &opts).unwrap();
    assert!((naive - bridge_r).abs() < 1e-12);
    assert!((naive - factoring).abs() < 1e-12);
    assert!((naive - bottleneck).abs() < 1e-12);
    // and exactly, in rational arithmetic
    let exact = reliability_naive_exact(&inst.net, d, &opts).unwrap();
    assert!((naive - exact.to_f64()).abs() < 1e-12);
}

/// EX1 (and Fig. 3): the assignment set for d = 5 over three capacity-3
/// links has exactly the 12 members the paper lists.
#[test]
fn example1_assignment_count() {
    let (d, caps) = paper::example1_caps();
    let ranges: Vec<(i64, i64)> = caps
        .iter()
        .map(|&c| (0i64, (c as i64).min(d as i64)))
        .collect();
    let set = enumerate_assignments(d, &ranges);
    assert_eq!(set.len(), 12);
    assert_eq!(set[0].amounts, vec![0, 2, 3]);
    assert_eq!(set[11].amounts, vec![3, 2, 0]);
}

/// FIG4/EX3: the reconstructed two-bottleneck graph has assignment set
/// {(0,2), (1,1), (2,0)}, and the bottleneck algorithm matches naive on it.
#[test]
fn fig4_reconstruction_reproduces_example_3() {
    let (inst, cut) = paper::fig4_two_bottleneck();
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let opts = CalcOptions::default();

    let set = validate_bottleneck_set(&inst.net, d.source, d.sink, &cut).unwrap();
    assert_eq!(set.k(), 2);
    assert_eq!(set.side_s_edges, 5);
    assert_eq!(set.side_t_edges, 2);

    let naive = reliability_naive(&inst.net, d, &opts).unwrap();
    let bn = reliability_bottleneck(&inst.net, d, &cut, &opts).unwrap();
    assert!(
        (naive - bn).abs() < 1e-12,
        "naive {naive} vs bottleneck {bn}"
    );
    assert!(naive > 0.0 && naive < 1.0);
}

/// FIG5: the three highlighted failure configurations of G_s realize exactly
/// the assignment sets the paper states.
#[test]
fn fig5_configurations_realize_paper_sets() {
    let (inst, cut, side_links) = paper::fig4_parts();
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let set = validate_bottleneck_set(&inst.net, d.source, d.sink, &cut).unwrap();
    let dec = decompose(&inst.net, &d, &set);
    assert_eq!(dec.side_s.net.edge_count(), 5);
    // side edge i originates from parent link side_links[i]
    assert_eq!(
        dec.side_s.edge_origin, side_links,
        "side-s edge numbering matches c1..c5"
    );

    // assignments in lexicographic order: (0,2), (1,1), (2,0)
    let ranges = vec![(0i64, 2), (0, 2)];
    let assignments = enumerate_assignments(2, &ranges);
    let amounts: Vec<Vec<i64>> = assignments.iter().map(|a| a.amounts.clone()).collect();
    assert_eq!(amounts, vec![vec![0, 2], vec![1, 1], vec![2, 0]]);

    let mut oracle =
        SideOracle::new(&dec.side_s, &assignments, maxflow::SolverKind::Dinic).unwrap();
    let table = RealizationTable::build(&mut oracle, 26, 20, false).unwrap();

    for (alive, expected) in paper::fig5_configurations() {
        let mut bits = 0u64;
        for i in alive {
            bits |= 1 << i;
        }
        let realized: Vec<Vec<i64>> = table
            .realized(bits as usize)
            .into_iter()
            .map(|j| assignments[j].amounts.clone())
            .collect();
        assert_eq!(realized, expected, "config {bits:#b}");
    }
}

/// The paper-faithful realization array and the all-alive column behave as
/// Section III-C describes: 2^{|E_s|} entries of |D| bits each.
#[test]
fn fig4_array_dimensions_match_section_3c() {
    let (inst, cut, _) = paper::fig4_parts();
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let set = validate_bottleneck_set(&inst.net, d.source, d.sink, &cut).unwrap();
    let dec = decompose(&inst.net, &d, &set);
    let assignments = enumerate_assignments(2, &[(0i64, 2), (0, 2)]);
    let mut oracle =
        SideOracle::new(&dec.side_s, &assignments, maxflow::SolverKind::Dinic).unwrap();
    let table = RealizationTable::build(&mut oracle, 26, 20, false).unwrap();
    assert_eq!(table.masks.len(), 1 << 5, "2^{{|E_s|}} entries");
    assert_eq!(table.assign_count, 3, "|D|-bit entries");
    // the all-failed configuration realizes nothing
    assert_eq!(table.mask(0), 0);
    // monotonicity: adding links never loses a realization
    for c in 0..table.masks.len() {
        for i in 0..5 {
            let superset = c | 1 << i;
            assert_eq!(
                table.mask(c) & !table.mask(superset),
                0,
                "config {c:#b} vs superset {superset:#b}"
            );
        }
    }
    let _ = EdgeMask::all_alive(5);
}
