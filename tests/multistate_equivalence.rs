//! Multi-state equivalence: the mixed-radix state space must be invisible
//! when it is not used and exactly reducible when it is.
//!
//! * 2-state spectra normalize to plain binary links, so every strategy is
//!   bit-identical to the legacy path;
//! * a 3-state link equals its exact series-parallel binary gadget
//!   expansion to 1e-12 across naive, plan, and Monte-Carlo strategies;
//! * a budgeted mixed-radix sweep resumes bit-identically through the
//!   checkpoint *text* round trip (the `radices` line);
//! * Monte-Carlo confidence intervals cover the exact naive answer on
//!   small multi-state instances across seeds and estimators.

use flowrel::core::{
    Budget, CalcOptions, Checkpoint, FlowDemand, Outcome, ReliabilityCalculator, Strategy,
};
use flowrel::montecarlo::{engine, EstimatorKind, McBudget, McOutcome, McSettings, StopTarget};
use flowrel::netgraph::{GraphKind, Network, NetworkBuilder};

/// Marginals of two independent parallel binary links of capacity `h` with
/// failure probabilities `u` and `v`: the exact 3-state spectrum
/// `{0: uv, h: u+v-2uv, 2h: (1-u)(1-v)}` the gadget realizes.
fn gadget_spectrum(h: u64, u: f64, v: f64) -> [(u64, f64); 3] {
    [
        (0, u * v),
        (h, u + v - 2.0 * u * v),
        (2 * h, (1.0 - u) * (1.0 - v)),
    ]
}

/// Barbell with a genuine binary 2-link bottleneck and one special link in
/// the source cluster, built by `special`. The plan strategy decomposes on
/// the binary cut; the special link lands inside a cut side.
fn barbell_with(
    special: impl FnOnce(&mut NetworkBuilder, &[flowrel::netgraph::NodeId]),
) -> (Network, FlowDemand) {
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let n = b.add_nodes(8);
    special(&mut b, &n);
    b.add_edge(n[1], n[2], 2, 0.15).unwrap();
    b.add_edge(n[2], n[0], 2, 0.2).unwrap();
    b.add_edge(n[0], n[3], 2, 0.12).unwrap();
    b.add_edge(n[3], n[2], 2, 0.1).unwrap();
    b.add_edge(n[2], n[4], 1, 0.05).unwrap(); // cut link 1
    b.add_edge(n[3], n[5], 1, 0.08).unwrap(); // cut link 2
    for (i, j, p) in [(4, 5, 0.1), (5, 6, 0.25), (6, 7, 0.3), (7, 4, 0.18)] {
        b.add_edge(n[i], n[j], 2, p).unwrap();
    }
    (b.build(), FlowDemand::new(n[0], n[6], 2))
}

/// The barbell with a 3-state spectrum link `n0 - n1`.
fn spectrum_barbell(h: u64, u: f64, v: f64) -> (Network, FlowDemand) {
    barbell_with(|b, n| {
        b.add_spectrum_edge(n[0], n[1], &gadget_spectrum(h, u, v))
            .unwrap();
    })
}

/// The same barbell with the spectrum link expanded into its binary
/// parallel gadget: two capacity-`h` links with failure `u` and `v`.
fn gadget_barbell(h: u64, u: f64, v: f64) -> (Network, FlowDemand) {
    barbell_with(|b, n| {
        b.add_edge(n[0], n[1], h, u).unwrap();
        b.add_edge(n[0], n[1], h, v).unwrap();
    })
}

fn calc(strategy: Strategy) -> ReliabilityCalculator {
    ReliabilityCalculator::new().with_strategy(strategy)
}

fn run(c: &ReliabilityCalculator, net: &Network, d: FlowDemand) -> f64 {
    c.run_complete(net, d)
        .expect("unbudgeted run completes")
        .reliability
}

/// A 2-state spectrum `{0: p, c: 1-p}` is exactly a binary link, so the
/// builder normalizes it away and every strategy — exact and sampled —
/// takes the legacy code path bit for bit.
#[test]
fn two_state_spectra_are_bit_identical_to_legacy_binary() {
    let (legacy, d) = barbell_with(|b, n| {
        b.add_edge(n[0], n[1], 2, 0.35).unwrap();
    });
    let (spectral, d2) = barbell_with(|b, n| {
        b.add_spectrum_edge(n[0], n[1], &[(0, 0.35), (2, 0.65)])
            .unwrap();
    });
    assert_eq!(d, d2);
    assert!(
        !spectral.has_multistate(),
        "a 2-state spectrum must normalize to a plain binary link"
    );
    for strategy in [
        Strategy::Naive,
        Strategy::Auto,
        Strategy::Factoring,
        Strategy::BottleneckAuto { max_k: 2 },
        Strategy::MonteCarlo(McSettings {
            seed: 11,
            target: StopTarget {
                max_samples: 5_000,
                ..Default::default()
            },
            ..Default::default()
        }),
    ] {
        let a = run(&calc(strategy.clone()), &legacy, d);
        let b = run(&calc(strategy.clone()), &spectral, d);
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "{strategy:?}: legacy {a} vs 2-state spectrum {b}"
        );
    }
}

/// A 3-state link and its binary parallel-gadget expansion describe the
/// same distribution over effective capacities, so the exact strategies
/// agree to 1e-12 — naive against naive, and the bottleneck plan (which
/// must keep the multi-state link out of the cut) against both.
#[test]
fn three_state_link_matches_its_binary_gadget_exactly() {
    let (h, u, v) = (1, 0.4, 0.25);
    let (spec_net, d) = spectrum_barbell(h, u, v);
    let (gadget_net, dg) = gadget_barbell(h, u, v);
    assert!(spec_net.has_multistate());

    let reference = run(&calc(Strategy::Naive), &gadget_net, dg);
    assert!(
        (0.0..1.0).contains(&reference),
        "fixture must be nondegenerate, got {reference}"
    );

    let naive = run(&calc(Strategy::Naive), &spec_net, d);
    assert!(
        (naive - reference).abs() < 1e-12,
        "naive: spectrum {naive} vs gadget {reference}"
    );

    for strategy in [Strategy::Auto, Strategy::BottleneckAuto { max_k: 2 }] {
        let rep = calc(strategy.clone())
            .run_complete(&spec_net, d)
            .expect("plan strategy handles multi-state sides");
        assert!(
            (rep.reliability - reference).abs() < 1e-12,
            "{strategy:?}: spectrum {} vs gadget {reference} (algorithm {})",
            rep.reliability,
            rep.algorithm
        );
    }
}

/// The Monte-Carlo engine samples the 3-state instance itself; its 95%
/// interval must cover the gadget-exact answer for both estimators that
/// support spectra.
#[test]
fn montecarlo_on_spectrum_covers_the_gadget_exact_answer() {
    let (h, u, v) = (1, 0.4, 0.25);
    let (spec_net, d) = spectrum_barbell(h, u, v);
    let (gadget_net, dg) = gadget_barbell(h, u, v);
    let exact = run(&calc(Strategy::Naive), &gadget_net, dg);
    for estimator in [EstimatorKind::Crude, EstimatorKind::Permutation] {
        let settings = McSettings {
            seed: 7,
            estimator,
            target: StopTarget {
                max_samples: 30_000,
                ..Default::default()
            },
            ..Default::default()
        };
        let out = engine::run(
            &spec_net,
            d.source,
            d.sink,
            d.demand,
            &settings,
            &McBudget::unlimited(),
            false,
        )
        .unwrap();
        let McOutcome::Done(done) = out else {
            panic!("{estimator:?}: unlimited run must finish");
        };
        let r = done;
        assert!(
            (r.mean - exact).abs() <= 4.0 * r.std_error.max(1e-9),
            "{estimator:?}: {} vs gadget exact {exact} (se {})",
            r.mean,
            r.std_error
        );
    }
}

/// A budgeted mixed-radix sweep interrupts, writes a checkpoint whose text
/// form carries the `radices` line, and — resumed through the text round
/// trip every slice — finishes bit-identical to the uninterrupted run.
#[test]
fn mixed_radix_budgeted_resume_is_bit_identical_through_text() {
    let (net, d) = spectrum_barbell(1, 0.4, 0.25);
    for strategy in [Strategy::Naive, Strategy::Auto] {
        let exact = run(&calc(strategy.clone()), &net, d);
        let budgeted = calc(strategy.clone()).with_options(CalcOptions {
            budget: Budget {
                max_configs: Some(9),
                ..Default::default()
            },
            ..Default::default()
        });
        let mut out = budgeted.run(&net, d).expect("budgeted run");
        let mut partials = 0usize;
        let mut saw_radices = false;
        let resumed = loop {
            match out {
                Outcome::Complete(rep) => break rep.reliability,
                Outcome::Partial(p) => {
                    assert!(
                        p.r_low <= exact + 1e-12 && exact <= p.r_high + 1e-12,
                        "{strategy:?}: [{}, {}] must bracket {exact}",
                        p.r_low,
                        p.r_high
                    );
                    partials += 1;
                    assert!(partials < 100_000, "budget loop must make progress");
                    let text = p.checkpoint.to_text();
                    saw_radices |= text.lines().any(|l| l.starts_with("radices "));
                    let ck = Checkpoint::from_text(&text).expect("text round trip");
                    assert_eq!(ck, p.checkpoint, "text form must be lossless");
                    out = budgeted.resume(&net, d, &ck).expect("resume");
                }
            }
        };
        assert!(partials > 0, "{strategy:?}: 9-config slices must interrupt");
        assert!(
            saw_radices,
            "{strategy:?}: a multi-state checkpoint must record its radices"
        );
        assert_eq!(
            resumed.to_bits(),
            exact.to_bits(),
            "{strategy:?}: resumed {resumed} vs uninterrupted {exact}"
        );
    }
}

/// Engine-level coverage sweep: on a small multi-state instance the 95%
/// interval (4-sigma here, to keep the test deterministic-per-seed and
/// honest about the multiple comparisons) covers the exact naive answer
/// for every seed and spectrum-capable estimator.
#[test]
fn montecarlo_ci_covers_exact_naive_across_seeds() {
    let mut b = NetworkBuilder::new(GraphKind::Directed);
    let s = b.add_node();
    let m = b.add_node();
    let t = b.add_node();
    b.add_spectrum_edge(s, m, &[(0, 0.2), (1, 0.3), (2, 0.5)])
        .unwrap();
    b.add_spectrum_edge(m, t, &[(0, 0.1), (1, 0.2), (2, 0.3), (3, 0.4)])
        .unwrap();
    b.add_edge(s, t, 1, 0.25).unwrap();
    let net = b.build();
    let d = FlowDemand::new(s, t, 2);
    let exact = run(&calc(Strategy::Naive), &net, d);
    assert!(
        (0.0..1.0).contains(&exact),
        "fixture must be nondegenerate, got {exact}"
    );
    for seed in [1u64, 7, 42, 99] {
        for estimator in [EstimatorKind::Crude, EstimatorKind::Permutation] {
            let settings = McSettings {
                seed,
                estimator,
                target: StopTarget {
                    max_samples: 20_000,
                    ..Default::default()
                },
                ..Default::default()
            };
            let out = engine::run(
                &net,
                d.source,
                d.sink,
                d.demand,
                &settings,
                &McBudget::unlimited(),
                false,
            )
            .unwrap();
            let McOutcome::Done(done) = out else {
                panic!("{estimator:?} seed {seed}: unlimited run must finish");
            };
            let r = done;
            assert!(
                (r.mean - exact).abs() <= 4.0 * r.std_error.max(1e-9),
                "{estimator:?} seed {seed}: {} vs exact {exact} (se {})",
                r.mean,
                r.std_error
            );
        }
    }
}
