//! End-to-end on the P2P streaming domain (experiment id DOM-P2P): build
//! overlays, lower them to flow networks, and compute exact reliabilities.

use flowrel::core::{
    reliability_factoring, reliability_naive, CalcOptions, FlowDemand, ReliabilityCalculator,
};
use flowrel::overlay::{multi_tree, random_mesh, single_tree, ChurnModel, Peer};

fn peers(n: usize) -> Vec<Peer> {
    (0..n)
        .map(|i| Peer::new(4, 400.0 + 100.0 * (i % 3) as f64))
        .collect()
}

/// Multi-tree striping dominates a single tree for the same peer population:
/// in the single tree, one interior link loss removes the whole stream; with
/// striping it removes one sub-stream of two.
#[test]
fn multi_tree_beats_single_tree() {
    let ps = peers(6);
    let churn = ChurnModel::new(120.0);
    let opts = CalcOptions::default();

    let single = single_tree(&ps, 2, 2, &churn);
    let multi = multi_tree(&ps, 2, &churn);

    // compare delivery of at least HALF the stream (d = 1 of 2 sub-streams)
    // and the full stream, at the last peer (deep in both overlays)
    let sub_single = *single.peers.last().unwrap();
    let sub_multi = *multi.peers.last().unwrap();

    let full_single = reliability_naive(
        &single.net,
        FlowDemand::new(single.server, sub_single, 2),
        &opts,
    )
    .unwrap();
    let full_multi = reliability_factoring(
        &multi.net,
        FlowDemand::new(multi.server, sub_multi, 2),
        &opts,
    )
    .unwrap();
    let half_single = reliability_naive(
        &single.net,
        FlowDemand::new(single.server, sub_single, 1),
        &opts,
    )
    .unwrap();
    let half_multi = reliability_factoring(
        &multi.net,
        FlowDemand::new(multi.server, sub_multi, 1),
        &opts,
    )
    .unwrap();

    assert!(
        half_multi > half_single,
        "striping keeps partial delivery alive: {half_multi} vs {half_single}"
    );
    assert!(full_single > 0.0 && full_multi > 0.0);
    assert!((0.0..=1.0).contains(&full_multi));
}

/// The mesh overlay's reliability is computable by the auto calculator and
/// grows with the neighbor count.
#[test]
fn mesh_reliability_grows_with_degree() {
    let ps = peers(7);
    let churn = ChurnModel::new(120.0).with_base_loss(0.05);
    let calc = ReliabilityCalculator::new();

    let mut last = 0.0f64;
    for neighbors in 1..=3 {
        let sc = random_mesh(&ps, neighbors, 1, &churn, 42);
        let sub = *sc.peers.last().unwrap();
        let rep = calc
            .run_complete(&sc.net, FlowDemand::new(sc.server, sub, 1))
            .unwrap();
        assert!(
            rep.reliability >= last - 1e-9,
            "more uploaders should not hurt: {} < {last} at degree {neighbors}",
            rep.reliability
        );
        last = rep.reliability;
    }
    assert!(
        last > 0.5,
        "a 3-uploader mesh should be fairly reliable, got {last}"
    );
}

/// A single tree is a chain of bridges from the subscriber's perspective:
/// the calculator's auto strategy should find and exploit a bottleneck.
#[test]
fn calculator_exploits_tree_bottleneck() {
    let ps = peers(6);
    let churn = ChurnModel::new(120.0);
    let sc = single_tree(&ps, 2, 1, &churn);
    let sub = *sc.peers.last().unwrap();
    let rep = ReliabilityCalculator::new()
        .run_complete(&sc.net, FlowDemand::new(sc.server, sub, 1))
        .unwrap();
    // The bridge chain is exactly what structural reduction collapses:
    // the reduced instance is a couple of links, and the auto strategy
    // picks whatever is cheapest for the remnant. The decomposition win
    // the tree offers is realized by the reduction itself.
    assert!(
        rep.algorithm.starts_with("reduce+auto:"),
        "tree chains must engage the structural reduction, got {}",
        rep.algorithm
    );
    // tree reliability to a depth-2 peer = product of path survivals
    let naive = reliability_naive(
        &sc.net,
        FlowDemand::new(sc.server, sub, 1),
        &CalcOptions::default(),
    )
    .unwrap();
    assert!((rep.reliability - naive).abs() < 1e-12);
}
