//! Sweep-engine equivalence: the serial, parallel, and certificate-cached
//! configuration sweeps must compute the same reliabilities (within 1e-12 in
//! `f64`) on random small graphs, for both the naive and the bottleneck
//! paths, and certificate hits must never move realization-spectrum mass.

use flowrel::core::assign::crossing_ranges;
use flowrel::core::{
    decompose, enumerate_assignments, find_bottleneck_set, reliability_bottleneck,
    reliability_naive_with_stats, CalcOptions, FlowDemand, RealizationSpectrum, ReliabilityError,
    SideOracle, SweepConfig,
};
use flowrel::netgraph::{GraphKind, Network, NetworkBuilder};
use rand::prelude::*;

fn random_network(rng: &mut SmallRng, kind: GraphKind) -> (Network, FlowDemand) {
    let n = rng.gen_range(3usize..6);
    let edges = rng.gen_range(5usize..11);
    let mut b = NetworkBuilder::new(kind);
    let nodes = b.add_nodes(n);
    // a spine guarantees s and t are connected in most draws
    for w in nodes.windows(2) {
        let p = rng.gen_range(1u32..16) as f64 / 32.0;
        b.add_edge(w[0], w[1], rng.gen_range(1u64..3), p).unwrap();
    }
    for _ in 0..edges {
        let u = rng.gen_range(0usize..n);
        let v = rng.gen_range(0usize..n);
        let p = rng.gen_range(0u32..24) as f64 / 32.0;
        b.add_edge(nodes[u], nodes[v], rng.gen_range(1u64..4), p)
            .unwrap();
    }
    let demand = rng.gen_range(1u64..3);
    (b.build(), FlowDemand::new(nodes[0], nodes[n - 1], demand))
}

fn naive_opts(parallel: bool, certs: bool) -> CalcOptions {
    CalcOptions {
        parallel,
        certificate_cache: certs,
        ..Default::default()
    }
}

#[test]
fn naive_path_serial_parallel_and_cached_agree() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0001);
    let mut total_hits = 0u64;
    for case in 0..30 {
        let (net, d) = random_network(&mut rng, GraphKind::Undirected);
        let (base, s_base) = reliability_naive_with_stats(&net, d, &naive_opts(false, false))
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let (cached, s_cached) =
            reliability_naive_with_stats(&net, d, &naive_opts(false, true)).unwrap();
        let (par, _) = reliability_naive_with_stats(&net, d, &naive_opts(true, false)).unwrap();
        let (par_cached, _) =
            reliability_naive_with_stats(&net, d, &naive_opts(true, true)).unwrap();
        assert_eq!(
            base, cached,
            "case {case}: serial cert run must be bit-identical"
        );
        assert!(
            (base - par).abs() < 1e-12,
            "case {case}: {base} vs parallel {par}"
        );
        assert!(
            (base - par_cached).abs() < 1e-12,
            "case {case}: {base} vs {par_cached}"
        );
        assert_eq!(s_cached.configs, s_base.configs, "case {case}");
        assert_eq!(
            s_cached.solver_calls + s_cached.solver_calls_avoided(),
            s_cached.configs,
            "case {case}: every config is either solved or certified"
        );
        total_hits += s_cached.solver_calls_avoided();
    }
    assert!(
        total_hits > 0,
        "certificates must fire on at least one random graph"
    );
}

#[test]
fn bottleneck_path_serial_parallel_and_cached_agree() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0002);
    let mut checked = 0usize;
    for case in 0..40 {
        let (net, d) = random_network(&mut rng, GraphKind::Undirected);
        let Ok(set) = find_bottleneck_set(&net, d.source, d.sink, 2) else {
            continue;
        };
        let base = match reliability_bottleneck(&net, d, &set.edges, &naive_opts(false, false)) {
            Ok(r) => r,
            Err(ReliabilityError::TooManyAssignments { .. }) => continue,
            Err(e) => panic!("case {case}: {e}"),
        };
        let cached = reliability_bottleneck(&net, d, &set.edges, &naive_opts(false, true)).unwrap();
        let par = reliability_bottleneck(&net, d, &set.edges, &naive_opts(true, true)).unwrap();
        assert_eq!(
            base, cached,
            "case {case}: serial cert run must be bit-identical"
        );
        assert!(
            (base - par).abs() < 1e-12,
            "case {case}: {base} vs parallel {par}"
        );
        checked += 1;
    }
    assert!(
        checked >= 5,
        "too few draws had a bottleneck set ({checked})"
    );
}

#[test]
fn certificate_hits_never_change_spectrum_masses() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0003);
    let mut hits = 0u64;
    let mut checked = 0usize;
    for _ in 0..40 {
        let (net, d) = random_network(&mut rng, GraphKind::Undirected);
        let Ok(set) = find_bottleneck_set(&net, d.source, d.sink, 2) else {
            continue;
        };
        let ranges = crossing_ranges(
            &net,
            &set.edges,
            &set.forward_oriented,
            d.demand,
            CalcOptions::default().assignment_model,
        );
        let assignments = enumerate_assignments(d.demand, &ranges);
        if assignments.is_empty() || assignments.len() > 20 {
            continue;
        }
        let dec = decompose(&net, &d, &set);
        for side in [&dec.side_s, &dec.side_t] {
            let weights = flowrel::core::edge_weights(&side.net);
            let mut o = SideOracle::new(side, &assignments, Default::default()).unwrap();
            let (plain, _) = RealizationSpectrum::build_with(
                &mut o,
                &weights,
                26,
                20,
                true,
                &SweepConfig::serial(),
            )
            .unwrap();
            let mut o2 = SideOracle::new(side, &assignments, Default::default()).unwrap();
            let cfg = SweepConfig {
                certificates: true,
                cache_size: 32,
                ..SweepConfig::serial()
            };
            let (cached, stats) =
                RealizationSpectrum::build_with(&mut o2, &weights, 26, 20, true, &cfg).unwrap();
            assert_eq!(plain.mass, cached.mass, "cache hits must not move any mass");
            hits += stats.solver_calls_avoided();
            checked += 1;
        }
    }
    assert!(checked >= 10, "too few sides checked ({checked})");
    assert!(
        hits > 0,
        "certificates must fire on at least one side sweep"
    );
}
