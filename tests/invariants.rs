//! Property-based invariants of the reliability function itself.

use flowrel::core::{
    find_all_bottleneck_sets, reliability_naive, validate_bottleneck_set, CalcOptions, FlowDemand,
};
use flowrel::montecarlo;
use flowrel::netgraph::{GraphKind, Network, NetworkBuilder, NodeId};
use flowrel::workloads::generators;
use proptest::prelude::*;

type Draw = (usize, Vec<(usize, usize, u64, u32)>, u64);

fn draw_strategy() -> impl Strategy<Value = Draw> {
    (
        2usize..7,
        proptest::collection::vec((0usize..7, 0usize..7, 1u64..4, 1u32..31), 1..10),
        1u64..3,
    )
}

fn build(kind: GraphKind, n: usize, raw: &[(usize, usize, u64, u32)]) -> Network {
    let mut b = NetworkBuilder::new(kind);
    let nodes = b.add_nodes(n);
    for &(u, v, cap, p32) in raw {
        b.add_edge(nodes[u % n], nodes[v % n], cap, p32 as f64 / 32.0)
            .unwrap();
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn reliability_is_a_probability((n, raw, d) in draw_strategy()) {
        let net = build(GraphKind::Undirected, n, &raw);
        let demand = FlowDemand::new(NodeId(0), NodeId::from(n - 1), d);
        let r = reliability_naive(&net, demand, &CalcOptions::default()).unwrap();
        prop_assert!((-1e-12..=1.0 + 1e-12).contains(&r));
    }

    /// Improving one link's failure probability never decreases reliability.
    #[test]
    fn monotone_in_link_probability((n, raw, d) in draw_strategy(), which in any::<prop::sample::Index>()) {
        let net = build(GraphKind::Undirected, n, &raw);
        let demand = FlowDemand::new(NodeId(0), NodeId::from(n - 1), d);
        let base = reliability_naive(&net, demand, &CalcOptions::default()).unwrap();

        let i = which.index(raw.len());
        let mut improved = raw.clone();
        improved[i].3 /= 2; // halve the failure probability
        let net2 = build(GraphKind::Undirected, n, &improved);
        let better = reliability_naive(&net2, demand, &CalcOptions::default()).unwrap();
        prop_assert!(better + 1e-12 >= base, "improved {} < base {}", better, base);
    }

    /// Increasing one link's capacity never decreases reliability.
    #[test]
    fn monotone_in_capacity((n, raw, d) in draw_strategy(), which in any::<prop::sample::Index>()) {
        let net = build(GraphKind::Undirected, n, &raw);
        let demand = FlowDemand::new(NodeId(0), NodeId::from(n - 1), d);
        let base = reliability_naive(&net, demand, &CalcOptions::default()).unwrap();

        let i = which.index(raw.len());
        let mut upgraded = raw.clone();
        upgraded[i].2 += 2;
        let net2 = build(GraphKind::Undirected, n, &upgraded);
        let better = reliability_naive(&net2, demand, &CalcOptions::default()).unwrap();
        prop_assert!(better + 1e-12 >= base);
    }

    /// Reliability is antitone in the demand: asking for more bit-rate can
    /// only be harder.
    #[test]
    fn antitone_in_demand((n, raw, _) in draw_strategy()) {
        let net = build(GraphKind::Undirected, n, &raw);
        let mut last = 1.0f64;
        for d in 0..4u64 {
            let demand = FlowDemand::new(NodeId(0), NodeId::from(n - 1), d);
            let r = reliability_naive(&net, demand, &CalcOptions::default()).unwrap();
            prop_assert!(r <= last + 1e-12, "demand {} has r {} > {}", d, r, last);
            last = r;
        }
    }

    /// Two networks in series (sharing only one node) multiply.
    #[test]
    fn series_composition_multiplies(
        probs_a in proptest::collection::vec(1u32..31, 1..4),
        probs_b in proptest::collection::vec(1u32..31, 1..4),
    ) {
        // A: parallel links s->m, B: parallel links m->t
        let mut b = NetworkBuilder::new(GraphKind::Directed);
        let s = b.add_node();
        let m = b.add_node();
        let t = b.add_node();
        for &p in &probs_a {
            b.add_edge(s, m, 1, p as f64 / 32.0).unwrap();
        }
        for &p in &probs_b {
            b.add_edge(m, t, 1, p as f64 / 32.0).unwrap();
        }
        let net = b.build();
        let opts = CalcOptions::default();
        let whole = reliability_naive(&net, FlowDemand::new(s, t, 1), &opts).unwrap();
        let left = reliability_naive(&net, FlowDemand::new(s, m, 1), &opts).unwrap();
        let right = reliability_naive(&net, FlowDemand::new(m, t, 1), &opts).unwrap();
        prop_assert!((whole - left * right).abs() < 1e-10);
    }
    /// Every candidate the bottleneck search enumerates is a genuine
    /// bottleneck set: `validate_bottleneck_set` accepts it (separating,
    /// minimal, leaving exactly two components), on random instances from
    /// every generator family.
    #[test]
    fn enumerated_bottleneck_sets_all_validate(seed in 0u64..1000, family in 0usize..4) {
        let inst = match family {
            0 => generators::er_random(6, 9, 3, seed),
            1 => generators::grid(3, 3, seed),
            2 => generators::chained_barbell(3, 3, 1, seed),
            3 => generators::nested_barbell(2, 3, 1, seed),
            _ => unreachable!(),
        };
        let sets = match find_all_bottleneck_sets(&inst.net, inst.source, inst.sink, 3) {
            Ok(sets) => sets,
            // disconnected draws legitimately have no bottleneck set
            Err(_) => return Ok(()),
        };
        for set in sets {
            let revalidated =
                validate_bottleneck_set(&inst.net, inst.source, inst.sink, &set.edges);
            prop_assert!(
                revalidated.is_ok(),
                "enumerated set {:?} fails validation: {:?}",
                set.edges,
                revalidated.err()
            );
            let ok = revalidated.unwrap();
            prop_assert_eq!(ok.edges, set.edges);
            prop_assert_eq!(
                (ok.side_s_edges, ok.side_t_edges),
                (set.side_s_edges, set.side_t_edges)
            );
        }
    }
}

/// The Monte-Carlo estimator's CI covers the exact value (statistical test
/// with a fixed seed, so deterministic in CI).
#[test]
fn monte_carlo_covers_exact() {
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let n = b.add_nodes(4);
    b.add_edge(n[0], n[1], 1, 0.125).unwrap();
    b.add_edge(n[0], n[2], 1, 0.25).unwrap();
    b.add_edge(n[1], n[3], 1, 0.1875).unwrap();
    b.add_edge(n[2], n[3], 1, 0.3125).unwrap();
    b.add_edge(n[1], n[2], 1, 0.0625).unwrap();
    let net = b.build();
    let d = FlowDemand::new(n[0], n[3], 1);
    let exact = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
    for seed in 0..5 {
        let est = montecarlo::estimate(&net, n[0], n[3], 1, 40_000, seed).unwrap();
        assert!(
            est.covers(exact) || (est.mean - exact).abs() < 0.01,
            "seed {seed}: CI {:?} misses exact {exact}",
            est.ci95()
        );
    }
}
