//! Anytime soundness: any budget cutoff yields a rigorous interval
//! `r_low <= R_exact <= r_high`, a resumed serial run is bit-identical to
//! the uninterrupted one, a resumed parallel run agrees within 1e-12, and
//! checkpoints survive the text round trip — for both the naive and the
//! bottleneck sweep paths.

use flowrel::core::{
    Budget, CalcOptions, CancelToken, Checkpoint, FlowDemand, Outcome, ReliabilityCalculator,
    Strategy,
};
use flowrel::netgraph::{GraphKind, Network, NetworkBuilder};
use rand::prelude::*;

fn random_network(rng: &mut SmallRng, kind: GraphKind) -> (Network, FlowDemand) {
    let n = rng.gen_range(3usize..6);
    let edges = rng.gen_range(4usize..9);
    let mut b = NetworkBuilder::new(kind);
    let nodes = b.add_nodes(n);
    for w in nodes.windows(2) {
        let p = rng.gen_range(1u32..16) as f64 / 32.0;
        b.add_edge(w[0], w[1], rng.gen_range(1u64..3), p).unwrap();
    }
    for _ in 0..edges {
        let u = rng.gen_range(0usize..n);
        let v = rng.gen_range(0usize..n);
        let p = rng.gen_range(0u32..24) as f64 / 32.0;
        b.add_edge(nodes[u], nodes[v], rng.gen_range(1u64..4), p)
            .unwrap();
    }
    let demand = rng.gen_range(1u64..3);
    (b.build(), FlowDemand::new(nodes[0], nodes[n - 1], demand))
}

/// Barbell with a genuine 2-link bottleneck, so the decomposition engages.
fn barbell() -> (Network, FlowDemand) {
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let n = b.add_nodes(8);
    for (i, j, p) in [(0, 1, 0.1), (1, 2, 0.15), (2, 0, 0.2), (0, 2, 0.12)] {
        b.add_edge(n[i], n[j], 2, p).unwrap();
    }
    b.add_edge(n[2], n[4], 1, 0.05).unwrap(); // cut link 1
    b.add_edge(n[3], n[5], 1, 0.08).unwrap(); // cut link 2
    b.add_edge(n[2], n[3], 1, 0.3).unwrap();
    for (i, j, p) in [(4, 5, 0.1), (5, 6, 0.25), (6, 7, 0.3), (7, 4, 0.18)] {
        b.add_edge(n[i], n[j], 2, p).unwrap();
    }
    (b.build(), FlowDemand::new(n[0], n[6], 1))
}

fn calc(strategy: Strategy, budget: Budget, parallel: bool) -> ReliabilityCalculator {
    ReliabilityCalculator {
        strategy,
        options: CalcOptions {
            parallel,
            budget,
            ..Default::default()
        },
    }
}

fn limit(n: u64) -> Budget {
    Budget {
        max_configs: Some(n),
        ..Default::default()
    }
}

/// Runs under a per-slice budget, checking every partial against `exact`,
/// until the computation completes; returns the final value and how many
/// partials were seen. Resumes go through the text round trip when `via_text`
/// is set, exercising the same path the CLI uses.
fn drive_to_completion(
    c: &ReliabilityCalculator,
    net: &Network,
    d: FlowDemand,
    exact: f64,
    via_text: bool,
) -> (f64, usize) {
    let mut out = c.run(net, d).expect("budgeted run");
    let mut partials = 0usize;
    loop {
        match out {
            Outcome::Complete(rep) => return (rep.reliability, partials),
            Outcome::Partial(p) => {
                assert!(
                    p.r_low <= exact + 1e-12 && exact <= p.r_high + 1e-12,
                    "[{}, {}] must bracket {exact}",
                    p.r_low,
                    p.r_high
                );
                assert!((0.0..=1.0).contains(&p.r_low));
                assert!((0.0..=1.0).contains(&p.r_high));
                assert!((0.0..=1.0).contains(&p.explored));
                partials += 1;
                assert!(partials < 100_000, "budget loop must make progress");
                let ck = if via_text {
                    Checkpoint::from_text(&p.checkpoint.to_text()).expect("text round trip")
                } else {
                    p.checkpoint
                };
                out = c.resume(net, d, &ck).expect("resume");
            }
        }
    }
}

#[test]
fn naive_budget_cutoffs_bracket_and_serial_resume_is_bit_identical() {
    let mut rng = SmallRng::seed_from_u64(0xa17_7131);
    for case in 0..12 {
        let (net, d) = random_network(&mut rng, GraphKind::Undirected);
        let exact = calc(Strategy::Naive, Budget::unlimited(), false)
            .run_complete(&net, d)
            .unwrap_or_else(|e| panic!("case {case}: {e}"))
            .reliability;
        let budgeted = calc(Strategy::Naive, limit(7), false);
        let (resumed, partials) = drive_to_completion(&budgeted, &net, d, exact, false);
        assert_eq!(
            resumed.to_bits(),
            exact.to_bits(),
            "case {case}: serial resume must be bit-identical ({resumed} vs {exact})"
        );
        // tiny instances may finish inside one slice; most must not
        if net.edge_count() > 5 {
            assert!(partials > 0, "case {case}: 7-config slices must interrupt");
        }
    }
}

#[test]
fn naive_parallel_resume_agrees_within_1e12() {
    let mut rng = SmallRng::seed_from_u64(0xa17_7132);
    for case in 0..8 {
        let (net, d) = random_network(&mut rng, GraphKind::Directed);
        let exact = calc(Strategy::Naive, Budget::unlimited(), false)
            .run_complete(&net, d)
            .unwrap_or_else(|e| panic!("case {case}: {e}"))
            .reliability;
        let budgeted = calc(Strategy::Naive, limit(64), true);
        let (resumed, _) = drive_to_completion(&budgeted, &net, d, exact, false);
        assert!(
            (resumed - exact).abs() < 1e-12,
            "case {case}: parallel resume {resumed} vs {exact}"
        );
    }
}

#[test]
fn bottleneck_budget_cutoffs_bracket_and_serial_resume_is_bit_identical() {
    let (net, d) = barbell();
    let exact = calc(Strategy::Auto, Budget::unlimited(), false)
        .run_complete(&net, d)
        .unwrap();
    assert_eq!(
        exact.algorithm, "reduce+auto:bottleneck",
        "the barbell must engage the decomposition (after reduction)"
    );
    let exact = exact.reliability;
    // every cutoff produces a valid bracketing interval
    for cut in [1u64, 3, 9, 27, 81] {
        match calc(Strategy::Auto, limit(cut), false)
            .run(&net, d)
            .unwrap()
        {
            Outcome::Partial(p) => {
                assert!(
                    p.r_low <= exact + 1e-12 && exact <= p.r_high + 1e-12,
                    "cut {cut}: [{}, {}] must bracket {exact}",
                    p.r_low,
                    p.r_high
                );
                assert!(p.r_high - p.r_low <= 1.0);
            }
            Outcome::Complete(rep) => assert_eq!(rep.reliability.to_bits(), exact.to_bits()),
        }
    }
    // sliced to completion through the text round trip: bit-identical
    let budgeted = calc(Strategy::Auto, limit(9), false);
    let (resumed, partials) = drive_to_completion(&budgeted, &net, d, exact, true);
    assert!(partials > 0, "9-config slices must interrupt the barbell");
    assert_eq!(
        resumed.to_bits(),
        exact.to_bits(),
        "serial bottleneck resume must be bit-identical ({resumed} vs {exact})"
    );
}

#[test]
fn bottleneck_parallel_resume_agrees_within_1e12() {
    let (net, d) = barbell();
    let exact = calc(Strategy::Auto, Budget::unlimited(), false)
        .run_complete(&net, d)
        .unwrap()
        .reliability;
    let budgeted = calc(Strategy::Auto, limit(50), true);
    let (resumed, _) = drive_to_completion(&budgeted, &net, d, exact, true);
    assert!(
        (resumed - exact).abs() < 1e-12,
        "parallel bottleneck resume {resumed} vs {exact}"
    );
}

#[test]
fn interval_width_shrinks_as_the_budget_grows() {
    let (net, d) = barbell();
    let mut last_width = f64::INFINITY;
    for cut in [2u64, 20, 200] {
        let (lo, hi) = calc(Strategy::Naive, limit(cut), false)
            .run(&net, d)
            .unwrap()
            .bounds();
        let width = hi - lo;
        assert!(
            width <= last_width + 1e-12,
            "more budget must not widen the interval ({width} after {last_width})"
        );
        last_width = width;
    }
    assert!(last_width < 1.0, "200 configs must pin down some mass");
}

#[test]
fn tripped_cancel_token_stops_both_paths_immediately() {
    let (net, d) = barbell();
    let exact = calc(Strategy::Naive, Budget::unlimited(), false)
        .run_complete(&net, d)
        .unwrap()
        .reliability;
    let cancel = CancelToken::new();
    cancel.trip();
    let budget = Budget {
        cancel: Some(cancel),
        ..Default::default()
    };
    for strategy in [Strategy::Naive, Strategy::Auto] {
        match calc(strategy.clone(), budget.clone(), false)
            .run(&net, d)
            .unwrap()
        {
            Outcome::Partial(p) => {
                // nothing explored, so the lower bound is vacuous; the
                // bottleneck path may still cap r_high below 1 via the cut
                // links' own failure probability
                assert_eq!(p.r_low, 0.0, "{strategy:?}");
                assert!(
                    exact <= p.r_high + 1e-12 && p.r_high <= 1.0,
                    "{strategy:?}: r_high {} must stay sound",
                    p.r_high
                );
                assert_eq!(p.explored, 0.0, "{strategy:?}");
            }
            Outcome::Complete(_) => panic!("{strategy:?}: tripped token must interrupt"),
        }
    }
}

#[test]
fn checkpoint_text_is_stable_across_round_trips() {
    let (net, d) = barbell();
    for strategy in [Strategy::Naive, Strategy::Auto] {
        let out = calc(strategy.clone(), limit(5), false)
            .run(&net, d)
            .unwrap();
        let Outcome::Partial(p) = out else {
            panic!("{strategy:?}: 5-config budget must interrupt");
        };
        let text = p.checkpoint.to_text();
        let reparsed = Checkpoint::from_text(&text).expect("parse back");
        assert_eq!(
            reparsed, p.checkpoint,
            "{strategy:?}: checkpoint must survive the text round trip exactly"
        );
        assert_eq!(
            reparsed.to_text(),
            text,
            "{strategy:?}: serialization must be canonical"
        );
    }
}
