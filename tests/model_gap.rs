//! The assignment-model gap (see `AssignmentModel` in `flowrel-core` and the
//! "Substitutions / extensions" section of DESIGN.md).
//!
//! The paper's assignments route every sub-stream across the bottleneck
//! exactly once, source-side → sink-side. Max-flow routings may instead
//! weave across the cut; on such instances the forward-only model
//! *undercounts* the (max-flow-defined) reliability. The net-crossing
//! extension closes the gap exactly.

use flowrel::core::{
    reliability_bottleneck, reliability_naive, AssignmentModel, CalcOptions, FlowDemand,
};
use flowrel::workloads::paper::weaving_counterexample;

#[test]
fn forward_only_undercounts_on_weaving_instance() {
    let (inst, cut) = weaving_counterexample();
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);

    // ground truth by naive max-flow enumeration: the demand flows iff all
    // three cut links are up: R = (7/8)^3
    let naive = reliability_naive(&inst.net, d, &CalcOptions::default()).unwrap();
    let expected = (7.0f64 / 8.0).powi(3);
    assert!(
        (naive - expected).abs() < 1e-12,
        "naive {naive} vs {expected}"
    );

    // the paper's forward-only model sees no realizable assignment at all
    let fwd_opts = CalcOptions {
        assignment_model: AssignmentModel::ForwardOnly,
        ..CalcOptions::default()
    };
    let forward = reliability_bottleneck(&inst.net, d, &cut, &fwd_opts).unwrap();
    assert_eq!(forward, 0.0, "forward-only misses the weaving routing");

    // the net-crossing extension (the default) recovers the exact value
    let net = reliability_bottleneck(&inst.net, d, &cut, &CalcOptions::default()).unwrap();
    assert!(
        (net - expected).abs() < 1e-12,
        "net model {net} vs {expected}"
    );
}

#[test]
fn forward_only_is_a_lower_bound() {
    // on the weaving instance (and in general) the forward-only value never
    // exceeds the max-flow reliability: it integrates over a subset of the
    // feasible routings
    let (inst, cut) = weaving_counterexample();
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let opts = CalcOptions {
        assignment_model: AssignmentModel::ForwardOnly,
        ..CalcOptions::default()
    };
    let naive = reliability_naive(&inst.net, d, &CalcOptions::default()).unwrap();
    let forward = reliability_bottleneck(&inst.net, d, &cut, &opts).unwrap();
    assert!(forward <= naive + 1e-12);
}
