//! Incremental-oracle equivalence: warm-start flow repair must be invisible
//! everywhere except the counters. A [`WarmState`] walked along random
//! Gray-code (and multi-flip) mask sequences returns exactly the verdicts of
//! from-scratch `apply_mask` solves for every solver kind; serial, parallel,
//! and incremental sweeps agree on the reliability; and checkpoint/resume
//! never leaks warm state across a slice boundary — the resumed serial run
//! stays bit-identical with incremental on or off.

use flowrel::core::{
    reliability_naive_with_stats, Budget, CalcOptions, Checkpoint, FlowDemand, Outcome,
    ReliabilityCalculator, Strategy,
};
use flowrel::maxflow::{build_flow, SolverKind, WarmState};
use flowrel::netgraph::{EdgeMask, GraphKind, Network, NetworkBuilder};
use rand::prelude::*;

fn random_network(rng: &mut SmallRng, kind: GraphKind) -> (Network, FlowDemand) {
    let n = rng.gen_range(3usize..6);
    let edges = rng.gen_range(5usize..11);
    let mut b = NetworkBuilder::new(kind);
    let nodes = b.add_nodes(n);
    // a spine guarantees s and t are connected in most draws
    for w in nodes.windows(2) {
        let p = rng.gen_range(1u32..16) as f64 / 32.0;
        b.add_edge(w[0], w[1], rng.gen_range(1u64..3), p).unwrap();
    }
    for _ in 0..edges {
        let u = rng.gen_range(0usize..n);
        let v = rng.gen_range(0usize..n);
        let p = rng.gen_range(0u32..24) as f64 / 32.0;
        b.add_edge(nodes[u], nodes[v], rng.gen_range(1u64..4), p)
            .unwrap();
    }
    let demand = rng.gen_range(1u64..3);
    (b.build(), FlowDemand::new(nodes[0], nodes[n - 1], demand))
}

/// Random mask walk mixing single-bit Gray steps with occasional wide jumps
/// (which exceed the warm-repair flip budget and force cold solves) and
/// explicit invalidations (as a resume or assignment switch would issue).
#[test]
fn warm_walks_match_cold_solves_for_every_solver() {
    let mut rng = SmallRng::seed_from_u64(0x1c0_0001);
    for case in 0..20 {
        let (net, d) = random_network(
            &mut rng,
            if case % 2 == 0 {
                GraphKind::Undirected
            } else {
                GraphKind::Directed
            },
        );
        let m = net.edge_count();
        assert!(m <= 64, "warm oracle needs <= 64 edges");
        let full = if m == 64 { u64::MAX } else { (1u64 << m) - 1 };
        // one pre-generated walk so every solver sees the same masks
        let mut walk = Vec::new();
        let mut bits = full;
        for _ in 0..120 {
            match rng.gen_range(0u32..10) {
                0 => bits = rng.gen::<u64>() & full,   // wide jump
                _ => bits ^= 1 << rng.gen_range(0..m), // Gray step
            }
            walk.push((bits, rng.gen_range(0u32..16) == 0)); // rare invalidate
        }
        for solver in SolverKind::ALL {
            let mut warm_nf = build_flow(&net, d.source, d.sink);
            let mut cold_nf = warm_nf.clone();
            let mut state = WarmState::new();
            for (step, &(bits, drop)) in walk.iter().enumerate() {
                if drop {
                    state.invalidate();
                }
                let exhaust = step % 3 == 0;
                let got = state.admits(&mut warm_nf, solver, d.demand, bits, exhaust);
                cold_nf.apply_mask(EdgeMask::from_bits(bits, m));
                let want = solver.solve(&mut cold_nf.graph, cold_nf.source, cold_nf.sink, d.demand)
                    >= d.demand;
                assert_eq!(
                    got, want,
                    "case {case} step {step} solver {solver:?} bits {bits:b}"
                );
                warm_nf
                    .graph
                    .check_conservation(warm_nf.source, warm_nf.sink)
                    .unwrap_or_else(|e| panic!("case {case} step {step} solver {solver:?}: {e:?}"));
            }
            let stats = state.take_stats();
            assert!(
                stats.flips > 0 && stats.full_resolves > 0,
                "case {case} solver {solver:?}: walk must exercise both paths ({stats:?})"
            );
        }
    }
}

fn opts(parallel: bool, incremental: bool, solver: SolverKind) -> CalcOptions {
    CalcOptions {
        parallel,
        incremental,
        solver,
        // exercise the fan-out even on tiny instances
        parallel_threshold: 0,
        ..Default::default()
    }
}

#[test]
fn serial_parallel_and_incremental_reliabilities_agree() {
    let mut rng = SmallRng::seed_from_u64(0x1c0_0002);
    let mut repairs = 0u64;
    for case in 0..15 {
        let (net, d) = random_network(&mut rng, GraphKind::Undirected);
        let solver = SolverKind::ALL[case % SolverKind::ALL.len()];
        let (base, _) = reliability_naive_with_stats(&net, d, &opts(false, false, solver))
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let (incr, s_incr) =
            reliability_naive_with_stats(&net, d, &opts(false, true, solver)).unwrap();
        let (par, _) = reliability_naive_with_stats(&net, d, &opts(true, false, solver)).unwrap();
        let (par_incr, _) =
            reliability_naive_with_stats(&net, d, &opts(true, true, solver)).unwrap();
        assert_eq!(
            base.to_bits(),
            incr.to_bits(),
            "case {case} {solver:?}: serial incremental must be bit-identical"
        );
        assert!(
            (base - par).abs() < 1e-15,
            "case {case} {solver:?}: serial {base} vs parallel {par}"
        );
        assert!(
            (base - par_incr).abs() < 1e-15,
            "case {case} {solver:?}: serial {base} vs parallel+incremental {par_incr}"
        );
        repairs += s_incr.flips;
    }
    assert!(repairs > 0, "the incremental path must actually engage");
}

fn calc(strategy: Strategy, incremental: bool, budget: Budget) -> ReliabilityCalculator {
    ReliabilityCalculator {
        strategy,
        options: CalcOptions {
            incremental,
            budget,
            parallel: false,
            ..Default::default()
        },
    }
}

/// Slices a run to completion through the checkpoint text round trip;
/// returns the final reliability and how many times the budget interrupted.
fn sliced(c: &ReliabilityCalculator, net: &Network, d: FlowDemand) -> (f64, usize) {
    let mut out = c.run(net, d).expect("budgeted run");
    let mut slices = 0usize;
    loop {
        match out {
            Outcome::Complete(rep) => return (rep.reliability, slices),
            Outcome::Partial(p) => {
                slices += 1;
                assert!(slices < 100_000, "budget loop must make progress");
                let ck = Checkpoint::from_text(&p.checkpoint.to_text()).expect("round trip");
                out = c.resume(net, d, &ck).expect("resume");
            }
        }
    }
}

/// Warm state must never leak across a resume: a serial run sliced into
/// 7-config budget chunks is bit-identical to the uninterrupted run, with
/// incremental on (warm flows invalidated at every resume boundary) and with
/// `--no-incremental` (PR 2's original guarantee).
#[test]
fn checkpoint_resume_is_bit_identical_with_and_without_incremental() {
    let mut rng = SmallRng::seed_from_u64(0x1c0_0003);
    let mut interrupted = 0usize;
    for case in 0..10 {
        let (net, d) = random_network(&mut rng, GraphKind::Undirected);
        let exact = calc(Strategy::Naive, false, Budget::unlimited())
            .run_complete(&net, d)
            .unwrap_or_else(|e| panic!("case {case}: {e}"))
            .reliability;
        let exact_incr = calc(Strategy::Naive, true, Budget::unlimited())
            .run_complete(&net, d)
            .unwrap()
            .reliability;
        assert_eq!(
            exact.to_bits(),
            exact_incr.to_bits(),
            "case {case}: incremental must not change the uninterrupted result"
        );
        let budget = Budget {
            max_configs: Some(7),
            ..Default::default()
        };
        for incremental in [false, true] {
            let (resumed, slices) =
                sliced(&calc(Strategy::Naive, incremental, budget.clone()), &net, d);
            assert_eq!(
                resumed.to_bits(),
                exact.to_bits(),
                "case {case} incremental={incremental}: sliced {resumed} vs {exact}"
            );
            // preprocessing can shrink tiny draws below the budget; count the
            // genuinely interrupted runs and demand enough of them overall
            interrupted += usize::from(slices > 0);
        }
    }
    assert!(
        interrupted >= 10,
        "too few interrupted runs ({interrupted})"
    );
}

/// Same no-leak guarantee on the bottleneck decomposition path, whose side
/// sweeps carry warm state through `SideOracle` and invalidate it at every
/// assignment switch and resume boundary.
#[test]
fn bottleneck_resume_is_bit_identical_with_and_without_incremental() {
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let n = b.add_nodes(8);
    for (i, j, p) in [(0, 1, 0.1), (1, 2, 0.15), (2, 0, 0.2), (0, 2, 0.12)] {
        b.add_edge(n[i], n[j], 2, p).unwrap();
    }
    b.add_edge(n[2], n[4], 1, 0.05).unwrap(); // cut link 1
    b.add_edge(n[3], n[5], 1, 0.08).unwrap(); // cut link 2
    b.add_edge(n[2], n[3], 1, 0.3).unwrap();
    for (i, j, p) in [(4, 5, 0.1), (5, 6, 0.25), (6, 7, 0.3), (7, 4, 0.18)] {
        b.add_edge(n[i], n[j], 2, p).unwrap();
    }
    let (net, d) = (b.build(), FlowDemand::new(n[0], n[6], 1));
    let exact = calc(Strategy::Auto, false, Budget::unlimited())
        .run_complete(&net, d)
        .unwrap();
    assert_eq!(
        exact.algorithm, "reduce+auto:bottleneck",
        "the barbell must engage the decomposition (after reduction)"
    );
    let exact = exact.reliability;
    let budget = Budget {
        max_configs: Some(9),
        ..Default::default()
    };
    for incremental in [false, true] {
        let (resumed, slices) = sliced(&calc(Strategy::Auto, incremental, budget.clone()), &net, d);
        assert!(slices > 0, "9-config slices must interrupt the barbell");
        assert_eq!(
            resumed.to_bits(),
            exact.to_bits(),
            "incremental={incremental}: sliced {resumed} vs {exact}"
        );
    }
}
