//! Integration properties for the analysis extensions: Esary–Proschan bounds
//! sandwich the exact reliability, and series-parallel reduction preserves it.

use flowrel::core::{
    esary_proschan_bounds, reduce_unit_demand, reliability_naive, reliability_sp_reduced,
    CalcOptions, FlowDemand,
};
use flowrel::netgraph::{GraphKind, Network, NetworkBuilder, NodeId};
use proptest::prelude::*;

fn build(n: usize, raw: &[(usize, usize, u32)], kind: GraphKind) -> Network {
    let mut b = NetworkBuilder::new(kind);
    let nodes = b.add_nodes(n);
    for &(u, v, p) in raw {
        b.add_edge(nodes[u % n], nodes[v % n], 1, p as f64 / 32.0)
            .unwrap();
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn ep_bounds_sandwich_exact(
        n in 2usize..6,
        raw in proptest::collection::vec((0usize..6, 0usize..6, 1u32..31), 1..9),
    ) {
        let net = build(n, &raw, GraphKind::Directed);
        let d = FlowDemand::new(NodeId(0), NodeId::from(n - 1), 1);
        let exact = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let (lo, hi) = esary_proschan_bounds(&net, d, 100_000).unwrap();
        prop_assert!(lo <= exact + 1e-9, "lower {} > exact {}", lo, exact);
        prop_assert!(exact <= hi + 1e-9, "exact {} > upper {}", exact, hi);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&lo));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&hi));
    }

    #[test]
    fn sp_reduction_preserves_reliability(
        n in 2usize..7,
        raw in proptest::collection::vec((0usize..7, 0usize..7, 1u32..31), 1..12),
    ) {
        let net = build(n, &raw, GraphKind::Undirected);
        let d = FlowDemand::new(NodeId(0), NodeId::from(n - 1), 1);
        let exact = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let sp = reliability_sp_reduced(&net, d, &CalcOptions::default()).unwrap();
        prop_assert!((exact - sp).abs() < 1e-10, "exact {} vs sp {}", exact, sp);
    }

    #[test]
    fn sp_reduction_never_grows_the_network(
        n in 2usize..7,
        raw in proptest::collection::vec((0usize..7, 0usize..7, 1u32..31), 1..12),
    ) {
        let net = build(n, &raw, GraphKind::Undirected);
        let red = reduce_unit_demand(&net, NodeId(0), NodeId::from(n - 1));
        prop_assert!(red.net.edge_count() <= net.edge_count());
        prop_assert!(red.net.node_count() <= net.node_count());
        // terminals survive the reduction
        prop_assert!(red.source.index() < red.net.node_count());
        prop_assert!(red.sink.index() < red.net.node_count());
    }
}

/// Stratified Monte Carlo on a planted-bottleneck instance: the estimator
/// covers the exact value and does not lose to plain sampling.
#[test]
fn stratified_mc_on_bottleneck_instance() {
    let (inst, cut) = flowrel::workloads::generators::barbell(Default::default());
    let d = FlowDemand::new(inst.source, inst.sink, inst.demand);
    let exact = reliability_naive(&inst.net, d, &CalcOptions::default()).unwrap();
    let strat = flowrel::montecarlo::estimate_stratified(
        &inst.net,
        inst.source,
        inst.sink,
        inst.demand,
        &cut,
        40_000,
        11,
    )
    .unwrap();
    assert!(
        strat.covers(exact) || (strat.mean - exact).abs() < 0.01,
        "stratified {:?} misses exact {exact}",
        strat
    );
    let plain =
        flowrel::montecarlo::estimate(&inst.net, inst.source, inst.sink, inst.demand, 40_000, 11)
            .unwrap();
    assert!(
        strat.std_error <= plain.std_error * 1.25,
        "stratification should not inflate variance: {} vs {}",
        strat.std_error,
        plain.std_error
    );
}
