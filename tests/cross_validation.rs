//! Property-based cross-validation: every exact algorithm must compute the
//! same reliability on random networks, and the float paths must agree with
//! the exact-rational path.

use flowrel::core::algorithm::reliability_bottleneck;
use flowrel::core::{
    find_bottleneck_set, reliability_bottleneck_exact, reliability_bridge, reliability_factoring,
    reliability_naive, reliability_naive_exact, AssignmentModel, CalcOptions, FlowDemand,
    ReliabilityError,
};
use flowrel::netgraph::{GraphKind, Network, NetworkBuilder};
use proptest::prelude::*;

fn random_network(kind: GraphKind) -> impl Strategy<Value = (Network, FlowDemand)> {
    (
        2usize..7,
        proptest::collection::vec((0usize..7, 0usize..7, 1u64..4, 0u32..30), 1..11),
        1u64..3,
    )
        .prop_map(move |(n, raw, demand)| {
            let mut b = NetworkBuilder::new(kind);
            let nodes = b.add_nodes(n);
            for (u, v, cap, p32) in raw {
                let (u, v) = (u % n, v % n);
                // probabilities on the /32 grid: exactly representable and
                // cheap for rational validation
                b.add_edge(nodes[u], nodes[v], cap, p32 as f64 / 32.0)
                    .unwrap();
            }
            (b.build(), FlowDemand::new(nodes[0], nodes[n - 1], demand))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn factoring_and_bridge_match_naive_undirected(
        (net, d) in random_network(GraphKind::Undirected)
    ) {
        let opts = CalcOptions::default();
        let naive = reliability_naive(&net, d, &opts).unwrap();
        let factoring = reliability_factoring(&net, d, &opts).unwrap();
        let bridge = reliability_bridge(&net, d, &opts).unwrap();
        prop_assert!((naive - factoring).abs() < 1e-10, "naive {} vs factoring {}", naive, factoring);
        prop_assert!((naive - bridge).abs() < 1e-10, "naive {} vs bridge {}", naive, bridge);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&naive));
    }

    #[test]
    fn factoring_matches_naive_directed((net, d) in random_network(GraphKind::Directed)) {
        let opts = CalcOptions::default();
        let naive = reliability_naive(&net, d, &opts).unwrap();
        let factoring = reliability_factoring(&net, d, &opts).unwrap();
        prop_assert!((naive - factoring).abs() < 1e-10);
    }

    #[test]
    fn float_matches_exact((net, d) in random_network(GraphKind::Undirected)) {
        let opts = CalcOptions::default();
        let naive = reliability_naive(&net, d, &opts).unwrap();
        let exact = reliability_naive_exact(&net, d, &opts).unwrap();
        prop_assert!((naive - exact.to_f64()).abs() < 1e-12);
        prop_assert!(!exact.is_negative());
    }

    /// When a bottleneck set exists, the net-crossing bottleneck algorithm is
    /// exactly the max-flow reliability; the paper's forward-only model never
    /// exceeds it.
    #[test]
    fn bottleneck_matches_naive_when_cut_exists(
        (net, d) in random_network(GraphKind::Undirected)
    ) {
        let Ok(set) = find_bottleneck_set(&net, d.source, d.sink, 3) else {
            return Ok(()); // no bottleneck in this draw
        };
        let naive = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
        let net_opts = CalcOptions {
            assignment_model: AssignmentModel::Net,
            max_assignments: 31,
            ..CalcOptions::default()
        };
        match reliability_bottleneck(&net, d, &set.edges, &net_opts) {
            Ok(r) => prop_assert!(
                (naive - r).abs() < 1e-10,
                "net-model bottleneck {} vs naive {}", r, naive
            ),
            Err(ReliabilityError::TooManyAssignments { .. }) => {} // capacity-heavy draw
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
        let fwd_opts = CalcOptions { max_assignments: 31, ..CalcOptions::default() };
        if let Ok(fwd) = reliability_bottleneck(&net, d, &set.edges, &fwd_opts) {
            prop_assert!(fwd <= naive + 1e-10, "forward-only {} must lower-bound {}", fwd, naive);
        }
    }

    /// Exact rational agreement between naive and bottleneck (bit-for-bit).
    #[test]
    fn exact_bottleneck_matches_exact_naive(
        (net, d) in random_network(GraphKind::Directed)
    ) {
        let Ok(set) = find_bottleneck_set(&net, d.source, d.sink, 2) else {
            return Ok(());
        };
        let opts = CalcOptions {
            assignment_model: AssignmentModel::Net,
            max_assignments: 31,
            ..CalcOptions::default()
        };
        let exact_naive = reliability_naive_exact(&net, d, &opts).unwrap();
        match reliability_bottleneck_exact(&net, d, &set.edges, &opts) {
            Ok(r) => prop_assert!(r == exact_naive, "{:?} vs {:?}", r, exact_naive),
            Err(ReliabilityError::TooManyAssignments { .. }) => {}
            Err(e) => return Err(TestCaseError::fail(format!("{e}"))),
        }
    }
}
