//! Recursive decomposition planner equivalence: the plan-tree execution
//! agrees with naive enumeration to 1e-12 on recursively-decomposable
//! instances (chained barbells, nested barbells, random graphs), depth caps
//! only change the plan — never the value — and a budgeted recursive run
//! resumed through text checkpoints reproduces the uninterrupted serial
//! result bit for bit.

use flowrel::core::{
    Budget, CalcOptions, Checkpoint, FlowDemand, Outcome, ReliabilityCalculator, Strategy,
};
use flowrel::workloads::generators;

fn demand_of(inst: &generators::Instance) -> FlowDemand {
    FlowDemand::new(inst.source, inst.sink, inst.demand)
}

fn exact_naive(inst: &generators::Instance) -> f64 {
    ReliabilityCalculator::new()
        .with_strategy(Strategy::Naive)
        .run_complete(&inst.net, demand_of(inst))
        .expect("naive reference")
        .reliability
}

#[test]
fn planner_matches_naive_across_generator_families_and_depths() {
    let instances = [
        generators::chained_barbell(2, 3, 1, 7),
        generators::chained_barbell(3, 3, 1, 8),
        generators::chained_barbell(2, 4, 2, 9),
        generators::nested_barbell(1, 3, 1, 10),
        generators::nested_barbell(2, 3, 1, 11),
    ];
    for inst in &instances {
        let exact = exact_naive(inst);
        for max_depth in [0usize, 1, 64] {
            let rep = ReliabilityCalculator::new()
                .with_strategy(Strategy::BottleneckAuto { max_k: 1 })
                .with_options(CalcOptions {
                    max_depth,
                    ..CalcOptions::default()
                })
                .run_complete(&inst.net, demand_of(inst))
                .expect("plannable instance");
            assert!(
                (rep.reliability - exact).abs() < 1e-12,
                "{} links, depth {max_depth}: plan {} vs naive {exact}",
                inst.net.edge_count(),
                rep.reliability
            );
            assert!(rep.bottleneck.is_some(), "plan runs report the root cut");
        }
    }
}

#[test]
fn auto_strategy_agrees_with_naive_on_decomposable_instances() {
    for seed in [3u64, 5, 21] {
        let inst = generators::chained_barbell(3, 3, 1, seed);
        let exact = exact_naive(&inst);
        let rep = ReliabilityCalculator::new()
            .run_complete(&inst.net, demand_of(&inst))
            .expect("auto");
        assert!(
            (rep.reliability - exact).abs() < 1e-12,
            "seed {seed}: auto {} ({}) vs naive {exact}",
            rep.reliability,
            rep.algorithm
        );
    }
}

/// A budgeted recursive run interrupted every few configurations, with every
/// checkpoint serialized to text and parsed back, finishes on the same bits
/// as the uninterrupted run.
#[test]
fn budgeted_plan_resumes_bit_identically_through_text_checkpoints() {
    let inst = generators::nested_barbell(2, 3, 1, 17);
    let demand = demand_of(&inst);
    let strategy = Strategy::BottleneckAuto { max_k: 1 };
    let exact = ReliabilityCalculator::new()
        .with_strategy(strategy.clone())
        .run_complete(&inst.net, demand)
        .expect("uninterrupted run")
        .reliability;
    let budgeted = ReliabilityCalculator::new()
        .with_strategy(strategy)
        .with_options(CalcOptions {
            budget: Budget {
                max_configs: Some(3),
                ..Budget::unlimited()
            },
            ..CalcOptions::default()
        });
    let mut out = budgeted.run(&inst.net, demand).expect("budgeted run");
    let mut partials = 0usize;
    let finished = loop {
        match out {
            Outcome::Complete(rep) => break rep.reliability,
            Outcome::Partial(p) => {
                assert!(
                    p.r_low <= exact + 1e-12 && exact <= p.r_high + 1e-12,
                    "[{}, {}] must bracket {exact}",
                    p.r_low,
                    p.r_high
                );
                let text = p.checkpoint.to_text();
                let parsed = Checkpoint::from_text(&text).expect("round trip");
                assert_eq!(parsed, p.checkpoint, "text round trip must be lossless");
                partials += 1;
                assert!(partials < 100_000, "resume loop must make progress");
                out = budgeted.resume(&inst.net, demand, &parsed).expect("resume");
            }
        }
    };
    assert!(
        partials > 0,
        "a 3-config budget must interrupt this instance"
    );
    assert_eq!(
        finished.to_bits(),
        exact.to_bits(),
        "serial resume must be bit-identical"
    );
}

/// The budgeted factoring engine brackets the exact value and its text
/// checkpoints resume to the uninterrupted anytime value bit for bit.
#[test]
fn budgeted_factoring_resumes_bit_identically_through_text_checkpoints() {
    let inst = generators::chained_barbell(2, 3, 1, 23);
    let demand = demand_of(&inst);
    let exact = exact_naive(&inst);
    let budgeted = ReliabilityCalculator::new()
        .with_strategy(Strategy::Factoring)
        .with_options(CalcOptions {
            budget: Budget {
                max_configs: Some(2),
                ..Budget::unlimited()
            },
            ..CalcOptions::default()
        });
    let mut out = budgeted.run(&inst.net, demand).expect("budgeted factoring");
    let mut partials = 0usize;
    let finished = loop {
        match out {
            Outcome::Complete(rep) => {
                // This instance reduces (slack clamps + a parallel merge),
                // so the calculator stamps the reduction prefix.
                assert_eq!(rep.algorithm, "reduce+factoring");
                break rep.reliability;
            }
            Outcome::Partial(p) => {
                assert_eq!(p.algorithm, "reduce+factoring");
                assert!(
                    p.r_low <= exact + 1e-12 && exact <= p.r_high + 1e-12,
                    "[{}, {}] must bracket {exact}",
                    p.r_low,
                    p.r_high
                );
                let parsed = Checkpoint::from_text(&p.checkpoint.to_text()).expect("round trip");
                assert_eq!(parsed, p.checkpoint);
                partials += 1;
                assert!(partials < 100_000, "factoring resume must make progress");
                out = budgeted.resume(&inst.net, demand, &parsed).expect("resume");
            }
        }
    };
    assert!(partials > 0, "a 2-config budget must interrupt factoring");
    assert!(
        (finished - exact).abs() < 1e-12,
        "resumed factoring {finished} vs naive {exact}"
    );
    // Bit-identity is against the flat anytime engine's own uninterrupted
    // run (the unbudgeted strategy takes the recursive path, whose summation
    // order differs in the last bits).
    let one_shot = ReliabilityCalculator::new()
        .with_strategy(Strategy::Factoring)
        .with_options(CalcOptions {
            budget: Budget {
                max_configs: Some(u64::MAX),
                ..Budget::unlimited()
            },
            ..CalcOptions::default()
        })
        .run(&inst.net, demand)
        .expect("near-unlimited budgeted factoring");
    let Outcome::Complete(rep) = one_shot else {
        panic!("a u64::MAX allowance cannot interrupt this instance");
    };
    assert_eq!(finished.to_bits(), rep.reliability.to_bits());
}

/// Recursive-Cut plans agree with naive enumeration to 1e-12 across all
/// four generator families, with recursion both on (deep planner) and off
/// (the flat PR 5 planner) — a proptest-style seed loop standing in for
/// property testing without the crate.
#[test]
fn deep_planner_matches_naive_across_all_generator_families() {
    for seed in [1u64, 7, 19] {
        let cases = [
            (generators::chained_barbell(3, 3, 1, seed), 1usize),
            (generators::nested_barbell(2, 3, 1, seed), 1),
            (generators::kary_nested_cut(1, 2, seed), 2),
            (generators::kary_nested_cut(2, 2, seed), 2),
            (generators::barbell_mesh(2, seed), 2),
        ];
        for (inst, max_k) in cases {
            let exact = exact_naive(&inst);
            for recursive_cut_sides in [true, false] {
                let rep = ReliabilityCalculator::new()
                    .with_strategy(Strategy::BottleneckAuto { max_k })
                    .with_options(CalcOptions {
                        recursive_cut_sides,
                        ..CalcOptions::default()
                    })
                    .run_complete(&inst.net, demand_of(&inst))
                    .expect("plannable instance");
                assert!(
                    (rep.reliability - exact).abs() < 1e-12,
                    "seed {seed}, {} links, deep={recursive_cut_sides}: plan {} vs naive {exact}",
                    inst.net.edge_count(),
                    rep.reliability
                );
            }
        }
    }
}

/// Budget-apportioned partial runs of deep plans return certified
/// `[r_low, r_high]` intervals enclosing the exact value at every stop.
#[test]
fn deep_partial_runs_bracket_the_exact_value() {
    let inst = generators::kary_nested_cut(2, 2, 31);
    let demand = demand_of(&inst);
    let exact = exact_naive(&inst);
    for budget in [1u64, 5, 17, 64] {
        let calc = ReliabilityCalculator::new()
            .with_strategy(Strategy::BottleneckAuto { max_k: 2 })
            .with_options(CalcOptions {
                budget: Budget {
                    max_configs: Some(budget),
                    ..Budget::unlimited()
                },
                ..CalcOptions::default()
            });
        match calc.run(&inst.net, demand).expect("budgeted deep run") {
            Outcome::Partial(p) => {
                assert!(
                    p.r_low <= exact + 1e-12 && exact <= p.r_high + 1e-12,
                    "budget {budget}: [{}, {}] must bracket {exact}",
                    p.r_low,
                    p.r_high
                );
                assert!(p.r_low <= p.r_high);
                let rep = p.bottleneck.as_ref().expect("plan runs report the cut");
                assert!(
                    !rep.plan_slots.is_empty(),
                    "partial deep runs report per-slot budget shares"
                );
                let share_sum: f64 = rep.plan_slots.iter().map(|s| s.share).sum();
                assert!(
                    (share_sum - 1.0).abs() < 1e-9,
                    "fresh-run shares partition the budget, got {share_sum}"
                );
            }
            Outcome::Complete(rep) => {
                assert!(
                    (rep.reliability - exact).abs() < 1e-12,
                    "budget {budget} completed: {} vs {exact}",
                    rep.reliability
                );
            }
        }
    }
}

/// An interrupted deep-plan run resumed through v1 text checkpoints (every
/// checkpoint serialized and parsed back) finishes on the same bits as the
/// uninterrupted serial run.
#[test]
fn deep_plan_resumes_bit_identically_through_text_checkpoints() {
    let inst = generators::kary_nested_cut(2, 2, 17);
    let demand = demand_of(&inst);
    let strategy = Strategy::BottleneckAuto { max_k: 2 };
    let exact = ReliabilityCalculator::new()
        .with_strategy(strategy.clone())
        .run_complete(&inst.net, demand)
        .expect("uninterrupted deep run")
        .reliability;
    let reference = exact_naive(&inst);
    assert!(
        (exact - reference).abs() < 1e-12,
        "deep plan {exact} vs naive {reference}"
    );
    let budgeted = ReliabilityCalculator::new()
        .with_strategy(strategy)
        .with_options(CalcOptions {
            budget: Budget {
                max_configs: Some(3),
                ..Budget::unlimited()
            },
            ..CalcOptions::default()
        });
    let mut out = budgeted.run(&inst.net, demand).expect("budgeted deep run");
    let mut partials = 0usize;
    let finished = loop {
        match out {
            Outcome::Complete(rep) => break rep.reliability,
            Outcome::Partial(p) => {
                assert!(
                    p.r_low <= exact + 1e-12 && exact <= p.r_high + 1e-12,
                    "[{}, {}] must bracket {exact}",
                    p.r_low,
                    p.r_high
                );
                let text = p.checkpoint.to_text();
                let parsed = Checkpoint::from_text(&text).expect("round trip");
                assert_eq!(parsed, p.checkpoint, "text round trip must be lossless");
                partials += 1;
                assert!(partials < 100_000, "deep resume loop must make progress");
                out = budgeted.resume(&inst.net, demand, &parsed).expect("resume");
            }
        }
    };
    assert!(
        partials > 0,
        "a 3-config budget must interrupt this instance"
    );
    assert_eq!(
        finished.to_bits(),
        exact.to_bits(),
        "serial deep resume must be bit-identical"
    );
}

/// `--max-depth 0` (flat) and deep recursion disagree on plan shape, so a
/// checkpoint from one refuses to resume under the other only when shapes
/// differ — the checkpoint carries its own planning depth and re-derives
/// the same tree regardless of the resuming calculator's options.
#[test]
fn plan_checkpoints_carry_their_own_depth() {
    let inst = generators::nested_barbell(2, 3, 1, 29);
    let demand = demand_of(&inst);
    let strategy = Strategy::BottleneckAuto { max_k: 1 };
    let exact = ReliabilityCalculator::new()
        .with_strategy(strategy.clone())
        .run_complete(&inst.net, demand)
        .expect("uninterrupted")
        .reliability;
    let budgeted = ReliabilityCalculator::new()
        .with_strategy(strategy.clone())
        .with_options(CalcOptions {
            budget: Budget {
                max_configs: Some(3),
                ..Budget::unlimited()
            },
            ..CalcOptions::default()
        });
    let Outcome::Partial(p) = budgeted.run(&inst.net, demand).expect("run") else {
        panic!("a 3-config budget must interrupt");
    };
    // resume under a calculator configured with a different max_depth: the
    // checkpoint's stored depth wins and the run still finishes correctly
    let other = ReliabilityCalculator::new()
        .with_strategy(strategy)
        .with_options(CalcOptions {
            max_depth: 0,
            ..CalcOptions::default()
        });
    let mut out = other
        .resume(&inst.net, demand, &p.checkpoint)
        .expect("depth-0 calculator must still honor the checkpoint's depth");
    let mut guard = 0usize;
    let finished = loop {
        match out {
            Outcome::Complete(rep) => break rep.reliability,
            Outcome::Partial(p) => {
                guard += 1;
                assert!(guard < 100_000);
                out = other
                    .resume(&inst.net, demand, &p.checkpoint)
                    .expect("resume");
            }
        }
    };
    assert_eq!(finished.to_bits(), exact.to_bits());
}
