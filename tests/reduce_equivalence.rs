//! Structural-reduction equivalence: the fixed-point reduction pipeline
//! ([`flowrel::core::reduce`]) is invisible everywhere except the counters.
//! Across every workload family and every strategy, the calculator returns
//! the same reliability to 1e-12 with reduction on and off; the Monte-Carlo
//! path is *seed-wise* invisible (reduce-on on the original instance is
//! bit-identical to reduce-off on the pre-reduced instance); and budgeted
//! runs with reduction on resume bit-identically through text checkpoints —
//! even when the resuming calculator has the flag flipped, because resume
//! pins `reduce` to what the checkpoint recorded.

use flowrel::core::{
    reduce, Budget, CalcOptions, Checkpoint, FlowDemand, Outcome, ReliabilityCalculator, Strategy,
};
use flowrel::montecarlo::{EstimatorKind, McSettings, StopTarget};
use flowrel::workloads::generators::{self, BarbellParams};

fn demand_of(inst: &generators::Instance) -> FlowDemand {
    FlowDemand::new(inst.source, inst.sink, inst.demand)
}

fn calc(strategy: Strategy, reduce: bool) -> ReliabilityCalculator {
    ReliabilityCalculator::new()
        .with_strategy(strategy)
        .with_options(CalcOptions {
            reduce,
            ..CalcOptions::default()
        })
}

/// Every generator family small enough for the unreduced-naive ground truth.
fn families(seed: u64) -> Vec<(&'static str, generators::Instance)> {
    vec![
        (
            "barbell",
            generators::barbell(BarbellParams {
                cluster_nodes: 4,
                cluster_extra_edges: 2,
                cut_links: 2,
                cut_capacity: 2,
                demand: 2,
                seed,
            })
            .0,
        ),
        ("bridge-chain", generators::bridge_chain(3, 1, seed)),
        ("grid", generators::grid(3, 3, seed)),
        (
            "chained-barbell",
            generators::chained_barbell(2, 3, 1, seed),
        ),
        ("nested-barbell", generators::nested_barbell(2, 3, 1, seed)),
        ("kary-nested-cut", generators::kary_nested_cut(2, 2, seed)),
        ("barbell-mesh", generators::barbell_mesh(2, seed)),
        ("slack-barbell", generators::slack_barbell(2, 1, seed)),
    ]
}

/// A proptest-style seed loop standing in for property testing without the
/// crate: for every family × exact strategy × reduction on/off, the
/// calculator agrees with unreduced naive enumeration to 1e-12.
#[test]
fn reduction_preserves_reliability_across_families_and_strategies() {
    for seed in [1u64, 7, 19] {
        for (family, inst) in families(seed) {
            let d = demand_of(&inst);
            let exact = calc(Strategy::Naive, false)
                .run_complete(&inst.net, d)
                .unwrap_or_else(|e| panic!("{family} seed {seed}: naive reference: {e}"))
                .reliability;
            let strategies = [
                Strategy::Naive,
                Strategy::Factoring,
                Strategy::BottleneckAuto { max_k: 2 },
                Strategy::Auto,
            ];
            for strategy in strategies {
                for reduce_on in [true, false] {
                    let rep = calc(strategy.clone(), reduce_on)
                        .run_complete(&inst.net, d)
                        .unwrap_or_else(|e| {
                            panic!("{family} seed {seed} {strategy:?} reduce={reduce_on}: {e}")
                        });
                    assert!(
                        (rep.reliability - exact).abs() < 1e-12,
                        "{family} seed {seed} {strategy:?} reduce={reduce_on}: \
                         {} ({}) vs naive {exact}",
                        rep.reliability,
                        rep.algorithm
                    );
                }
            }
        }
    }
}

/// An explicit bottleneck cut given in *original* link ids still works with
/// reduction on (the calculator translates the ids into the reduced space),
/// and agrees with the unreduced run.
#[test]
fn explicit_cuts_translate_into_the_reduced_id_space() {
    let inst = generators::slack_barbell(2, 2, 3);
    let d = demand_of(&inst);
    let set =
        flowrel::core::find_bottleneck_set(&inst.net, d.source, d.sink, 2).expect("a cut exists");
    let strategy = Strategy::Bottleneck(set.edges.clone());
    let off = calc(strategy.clone(), false)
        .run_complete(&inst.net, d)
        .expect("unreduced explicit-cut run");
    let on = calc(strategy, true)
        .run_complete(&inst.net, d)
        .expect("reduced explicit-cut run");
    assert!(
        (on.reliability - off.reliability).abs() < 1e-12,
        "explicit cut: reduced {} vs unreduced {}",
        on.reliability,
        off.reliability
    );
}

/// The Monte-Carlo path is seed-wise invisible to the reduction: running
/// reduce-on against the original instance is bit-identical — estimates,
/// intervals, sample counts — to running reduce-off against the pre-reduced
/// instance, because the engine sees the same network and the same seed.
#[test]
fn montecarlo_reduction_is_seedwise_invisible() {
    let inst = generators::slack_barbell(3, 2, 5);
    let d = demand_of(&inst);
    let red = reduce(&inst.net, d, true, CalcOptions::default().solver);
    assert!(red.stats.changed(), "the instance must actually reduce");
    let settings = McSettings {
        seed: 42,
        estimator: EstimatorKind::Crude,
        target: StopTarget {
            max_samples: 20_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let on = calc(Strategy::MonteCarlo(settings.clone()), true)
        .run_complete(&inst.net, d)
        .expect("reduce-on MC");
    let off = calc(Strategy::MonteCarlo(settings), false)
        .run_complete(&red.net, red.demand)
        .expect("reduce-off MC on the pre-reduced instance");
    assert_eq!(on.algorithm, "reduce+montecarlo:crude");
    assert_eq!(
        on.mc, off.mc,
        "same instance + same seed must match bitwise"
    );
    assert_eq!(on.reliability.to_bits(), off.reliability.to_bits());
}

/// Slices a run to completion through the checkpoint text round trip with
/// the given resuming calculator; asserts every checkpoint carries the
/// reduced shape stamp when `expect_shape` and returns the final bits.
fn sliced(
    start: &ReliabilityCalculator,
    resume_with: &ReliabilityCalculator,
    net: &netgraph::Network,
    d: FlowDemand,
    expect_shape: bool,
) -> (f64, usize) {
    let mut out = start.run(net, d).expect("budgeted run");
    let mut slices = 0usize;
    loop {
        match out {
            Outcome::Complete(rep) => return (rep.reliability, slices),
            Outcome::Partial(p) => {
                slices += 1;
                assert!(slices < 100_000, "budget loop must make progress");
                assert_eq!(
                    p.checkpoint.reduce_shape.is_some(),
                    expect_shape,
                    "checkpoint shape stamp must match the run's reduction state"
                );
                let ck = Checkpoint::from_text(&p.checkpoint.to_text()).expect("round trip");
                out = resume_with.resume(net, d, &ck).expect("resume");
            }
        }
    }
}

/// Budgeted runs with reduction on resume bit-identically to the
/// uninterrupted run — including when the resuming calculator was built
/// with `reduce: false` (a `--no-reduce` flip between write and resume),
/// which resume must override from the checkpoint's shape stamp.
#[test]
fn budgeted_runs_resume_bit_identically_with_reduction_on() {
    let inst = generators::slack_barbell(2, 2, 9);
    let d = demand_of(&inst);
    for strategy in [Strategy::Naive, Strategy::BottleneckAuto { max_k: 2 }] {
        let exact = calc(strategy.clone(), true)
            .run_complete(&inst.net, d)
            .expect("uninterrupted reduced run");
        assert!(
            exact.algorithm.starts_with("reduce+"),
            "the run must actually reduce, got {}",
            exact.algorithm
        );
        let budget = Budget {
            max_configs: Some(7),
            ..Budget::unlimited()
        };
        let budgeted = ReliabilityCalculator::new()
            .with_strategy(strategy.clone())
            .with_options(CalcOptions {
                reduce: true,
                budget,
                ..CalcOptions::default()
            });
        for resume_reduce in [true, false] {
            let (resumed, slices) = sliced(
                &budgeted,
                &calc(strategy.clone(), resume_reduce),
                &inst.net,
                d,
                true,
            );
            assert!(slices > 0, "{strategy:?}: 7-config slices must interrupt");
            assert_eq!(
                resumed.to_bits(),
                exact.reliability.to_bits(),
                "{strategy:?} resume_reduce={resume_reduce}: sliced {resumed} vs {}",
                exact.reliability
            );
        }
    }
}

/// Legacy checkpoints (no shape stamp, written with reduction off) resume on
/// the instance exactly as given even when the resuming calculator has
/// reduction on — resume pins `reduce` off for them.
#[test]
fn legacy_unreduced_checkpoints_resume_unreduced() {
    let inst = generators::slack_barbell(2, 2, 13);
    let d = demand_of(&inst);
    let exact = calc(Strategy::Naive, false)
        .run_complete(&inst.net, d)
        .expect("uninterrupted unreduced run");
    assert_eq!(exact.algorithm, "naive");
    let budgeted = ReliabilityCalculator::new()
        .with_strategy(Strategy::Naive)
        .with_options(CalcOptions {
            reduce: false,
            budget: Budget {
                max_configs: Some(7),
                ..Budget::unlimited()
            },
            ..CalcOptions::default()
        });
    let (resumed, slices) = sliced(&budgeted, &calc(Strategy::Naive, true), &inst.net, d, false);
    assert!(slices > 0, "7-config slices must interrupt");
    assert_eq!(
        resumed.to_bits(),
        exact.reliability.to_bits(),
        "legacy resume: sliced {resumed} vs {}",
        exact.reliability
    );
}
