//! Validation of the Monte-Carlo estimation engine against the exact
//! algorithms: rare-event honesty, estimator coverage on enumerable
//! instances, serial/parallel/resumed bit-identity, and the end-to-end
//! `Strategy::MonteCarlo` checkpoint round trip.

use flowrel::core::{
    reliability_naive, Budget, CalcOptions, Checkpoint, FlowDemand, Outcome, ReliabilityCalculator,
    Strategy,
};
use flowrel::montecarlo::{
    self, engine, EstimatorKind, McBudget, McOutcome, McSettings, StopTarget,
};
use flowrel::netgraph::{EdgeId, GraphKind, Network, NetworkBuilder};

/// Two parallel links with `p = 1e-4`: `R = 1 - 1e-8`, the rare-event
/// instance from the degenerate-interval regression.
fn rare_two_links() -> (Network, FlowDemand) {
    let mut b = NetworkBuilder::new(GraphKind::Directed);
    let s = b.add_node();
    let t = b.add_node();
    b.add_edge(s, t, 1, 1e-4).unwrap();
    b.add_edge(s, t, 1, 1e-4).unwrap();
    (b.build(), FlowDemand::new(s, t, 1))
}

/// A 10-link instance small enough for exact enumeration but non-trivial
/// for every estimator: two triangles joined by a 2-link bottleneck.
fn small_barbell() -> (Network, FlowDemand, Vec<EdgeId>) {
    let mut b = NetworkBuilder::new(GraphKind::Undirected);
    let n = b.add_nodes(6);
    b.add_edge(n[0], n[1], 1, 0.15).unwrap();
    b.add_edge(n[1], n[2], 1, 0.1).unwrap();
    b.add_edge(n[2], n[0], 1, 0.2).unwrap();
    let c0 = b.add_edge(n[2], n[3], 1, 0.1).unwrap();
    let c1 = b.add_edge(n[2], n[3], 1, 0.15).unwrap();
    b.add_edge(n[3], n[4], 1, 0.1).unwrap();
    b.add_edge(n[4], n[5], 1, 0.2).unwrap();
    b.add_edge(n[5], n[3], 1, 0.1).unwrap();
    (b.build(), FlowDemand::new(n[0], n[5], 1), vec![c0, c1])
}

/// Regression for the degenerate stopping bug: on a `R = 1 - 1e-8`
/// instance, `estimate_until` used to stop after its first batch with
/// `std_error == 0` and a zero-width interval excluding the true value.
#[test]
fn rare_event_interval_is_never_degenerate() {
    let (net, d) = rare_two_links();
    let exact = 1.0 - 1e-8;
    let est =
        montecarlo::estimate_until(&net, d.source, d.sink, d.demand, 1e-4, 200_000, 3).unwrap();
    assert!(
        est.samples > 4096,
        "an all-successes first batch must not satisfy the stopping rule \
         (stopped at {} samples)",
        est.samples
    );
    let (lo, hi) = est.ci95();
    assert!(hi > lo, "interval must have nonzero width: [{lo}, {hi}]");
    assert!(
        est.covers(exact),
        "[{lo}, {hi}] must cover {exact} even when every sample succeeded"
    );
}

/// Every estimator covers the exact (naively enumerated) reliability on a
/// <= 12-link instance, across several seeds.
#[test]
fn estimators_cover_naive_enumeration() {
    let (net, d, cut) = small_barbell();
    let exact = reliability_naive(&net, d, &CalcOptions::default()).unwrap();
    for seed in [1u64, 7, 42] {
        for (estimator, strata) in [
            (EstimatorKind::Crude, Vec::new()),
            (EstimatorKind::Dagger, cut.clone()),
            (EstimatorKind::Permutation, Vec::new()),
        ] {
            let settings = McSettings {
                seed,
                estimator,
                strata,
                target: StopTarget {
                    max_samples: 30_000,
                    ..Default::default()
                },
                ..Default::default()
            };
            let out = engine::run(
                &net,
                d.source,
                d.sink,
                d.demand,
                &settings,
                &McBudget::unlimited(),
                false,
            )
            .unwrap();
            let r = out.report();
            // 4-sigma band: deterministic per seed, and a 95% interval is
            // allowed to miss ~1 seed-estimator pair in 20.
            assert!(
                (r.mean - exact).abs() <= 4.0 * r.std_error.max(1e-9),
                "{estimator:?} seed {seed}: {} vs exact {exact} (se {})",
                r.mean,
                r.std_error
            );
        }
    }

    // The plain stratified helper covers too.
    let strat =
        montecarlo::estimate_stratified(&net, d.source, d.sink, d.demand, &cut, 30_000, 9).unwrap();
    assert!(
        strat.covers(exact) || (strat.mean - exact).abs() < 0.01,
        "stratified {} misses exact {exact}",
        strat.mean
    );
}

/// For a fixed seed, the serial run, the parallel run, and an
/// interrupt-then-resume run all produce the identical report.
#[test]
fn serial_parallel_and_resumed_runs_are_bit_identical() {
    let (net, d, cut) = small_barbell();
    for (estimator, strata) in [
        (EstimatorKind::Crude, Vec::new()),
        (EstimatorKind::Dagger, cut.clone()),
        (EstimatorKind::Permutation, Vec::new()),
    ] {
        let settings = McSettings {
            seed: 5,
            estimator,
            strata,
            target: StopTarget {
                max_samples: 20_000,
                ..Default::default()
            },
            batch: 1024,
            ..Default::default()
        };
        let run = |parallel: bool, budget: &McBudget| {
            engine::run(
                &net, d.source, d.sink, d.demand, &settings, budget, parallel,
            )
            .unwrap()
        };
        let McOutcome::Done(serial) = run(false, &McBudget::unlimited()) else {
            panic!("unlimited serial run must finish");
        };
        let McOutcome::Done(parallel) = run(true, &McBudget::unlimited()) else {
            panic!("unlimited parallel run must finish");
        };
        assert_eq!(
            serial, parallel,
            "{estimator:?}: parallel must match serial"
        );
        let interrupted = run(
            false,
            &McBudget {
                max_samples: Some(6_000),
                ..McBudget::unlimited()
            },
        );
        let McOutcome::Interrupted { checkpoint, .. } = interrupted else {
            panic!("a 6k-sample allowance must interrupt a 20k-sample run");
        };
        let resumed = engine::resume(
            &net,
            d.source,
            d.sink,
            d.demand,
            &checkpoint,
            &McBudget::unlimited(),
            true,
        )
        .unwrap();
        let McOutcome::Done(resumed) = resumed else {
            panic!("unlimited resume must finish");
        };
        assert_eq!(
            serial, resumed,
            "{estimator:?}: resume must reproduce the uninterrupted run"
        );
    }
}

/// End to end through the facade: a budgeted `Strategy::MonteCarlo` run
/// yields a Partial whose checkpoint survives the text round trip and
/// resumes to the bit-identical uninterrupted answer.
#[test]
fn strategy_montecarlo_checkpoint_text_round_trip() {
    let (net, d, _) = small_barbell();
    let settings = McSettings {
        seed: 13,
        estimator: EstimatorKind::Auto,
        target: StopTarget {
            max_samples: 25_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let full = ReliabilityCalculator::new()
        .with_strategy(Strategy::MonteCarlo(settings.clone()))
        .run_complete(&net, d)
        .unwrap();
    assert_eq!(
        full.algorithm, "reduce+montecarlo:dagger",
        "auto must condition on the barbell bottleneck (after reduction)"
    );
    let budgeted = ReliabilityCalculator::new()
        .with_strategy(Strategy::MonteCarlo(settings))
        .with_options(CalcOptions {
            budget: Budget {
                max_configs: Some(8_000),
                ..Default::default()
            },
            ..Default::default()
        });
    let Outcome::Partial(partial) = budgeted.run(&net, d).unwrap() else {
        panic!("an 8k-sample allowance must interrupt a 25k-sample run");
    };
    let mc = partial.mc.as_ref().expect("partial MC report");
    assert!(mc.ci_low < mc.ci_high, "partial interval must be honest");
    let text = partial.checkpoint.to_text();
    let parsed = Checkpoint::from_text(&text).unwrap();
    let resumed = ReliabilityCalculator::new()
        .with_strategy(Strategy::MonteCarlo(McSettings::default()))
        .resume(&net, d, &parsed)
        .unwrap();
    let Outcome::Complete(rep) = resumed else {
        panic!("unlimited resume must finish");
    };
    assert_eq!(rep.mc.unwrap(), full.mc.unwrap());
    assert_eq!(rep.reliability, full.reliability);
}

/// The MC path honors wall-clock deadlines: a zero deadline interrupts
/// before any sampling, with an honest vacuous interval.
#[test]
fn zero_deadline_interrupts_before_sampling() {
    let (net, d, _) = small_barbell();
    let calc = ReliabilityCalculator::new()
        .with_strategy(Strategy::MonteCarlo(McSettings {
            estimator: EstimatorKind::Crude,
            ..Default::default()
        }))
        .with_options(CalcOptions {
            budget: Budget {
                time_limit: Some(std::time::Duration::ZERO),
                ..Default::default()
            },
            ..Default::default()
        });
    let Outcome::Partial(p) = calc.run(&net, d).unwrap() else {
        panic!("a zero deadline must interrupt");
    };
    let mc = p.mc.expect("MC report");
    assert_eq!(mc.samples, 0);
    assert_eq!((mc.ci_low, mc.ci_high), (0.0, 1.0));
}
