//! Hybrid exact/statistical plan validation: when `CalcOptions::hybrid` is
//! on, leaves whose predicted exact cost exceeds their apportioned budget
//! share run the Monte-Carlo engine instead of sweeping, and the combined
//! answer is labelled `statistical` with an interval that covers the exact
//! reliability. Pure-exact runs under the same budget stay interrupted,
//! per-leaf RNG streams are distinct and reproducible, combined intervals
//! are clamped to `[0, 1]`, and interrupted hybrid runs resume
//! bit-identically through v1 text checkpoints.

use flowrel::core::{
    Budget, CalcOptions, Checkpoint, CheckpointKind, EstimatorKind, FlowDemand, McSettings,
    Outcome, PlanLeafState, ReliabilityCalculator, StopTarget, Strategy,
};
use flowrel::workloads::generators;

fn demand_of(inst: &generators::Instance) -> FlowDemand {
    FlowDemand::new(inst.source, inst.sink, inst.demand)
}

fn exact_naive(inst: &generators::Instance) -> f64 {
    ReliabilityCalculator::new()
        .with_strategy(Strategy::Naive)
        .run_complete(&inst.net, demand_of(inst))
        .expect("naive reference")
        .reliability
}

/// Small, deterministic sampling settings for tests. With `batch >= target`
/// a forced MC leaf finishes in one visit (its allowance is
/// `max(share, batch)`); with `batch < target` it parks as an interrupted
/// `MonteCarlo` leaf after each allowance.
fn mc_settings(seed: u64, target: u64, batch: u64) -> McSettings {
    McSettings {
        seed,
        estimator: EstimatorKind::Crude,
        target: StopTarget {
            max_samples: target,
            ..StopTarget::default()
        },
        batch,
        ..McSettings::default()
    }
}

fn hybrid_options(budget: u64, mc: McSettings) -> CalcOptions {
    CalcOptions {
        hybrid: true,
        hybrid_mc: mc,
        budget: Budget {
            max_configs: Some(budget),
            ..Budget::unlimited()
        },
        ..CalcOptions::default()
    }
}

/// Satellite 4 + acceptance: on three generator families, a config budget
/// below every leaf's predicted exact cost forces MC leaves; the hybrid
/// answer is a labelled statistical interval covering the exact
/// reliability, while the pure-exact run under the same budget cannot
/// complete. 7 seeds × 3 families = 21 labelled intervals checked.
#[test]
fn hybrid_interval_covers_exact_where_pure_exact_runs_starve() {
    let mut statistical_completes = 0usize;
    let mut cases = 0usize;
    for seed in 1u64..=7 {
        // (instance, max_k, budget): each budget apportions every MC-able
        // leaf a share strictly below its predicted sweep cost.
        let instances = [
            (generators::nested_barbell(2, 3, 1, seed), 1usize, 2u64),
            (generators::kary_nested_cut(2, 2, seed), 2, 2),
            (generators::slack_barbell(2, 1, seed), 1, 8),
        ];
        for (inst, max_k, budget) in instances {
            cases += 1;
            let exact = exact_naive(&inst);
            let demand = demand_of(&inst);
            let strategy = Strategy::BottleneckAuto { max_k };
            let opts = hybrid_options(budget, mc_settings(0xC0FFEE ^ seed, 4096, 4096));
            let calc = ReliabilityCalculator::new()
                .with_strategy(strategy.clone())
                .with_options(opts.clone());
            match calc.run(&inst.net, demand).expect("hybrid run") {
                Outcome::Complete(rep) => {
                    let (lo, hi) = rep.interval;
                    assert!(
                        (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi,
                        "seed {seed}: malformed interval [{lo}, {hi}]"
                    );
                    if !rep.certified {
                        statistical_completes += 1;
                        assert!(
                            lo <= exact && exact <= hi,
                            "seed {seed}, {} links: statistical [{lo}, {hi}] must cover {exact}",
                            inst.net.edge_count()
                        );
                        // The same budget without hybrid must NOT produce a
                        // complete answer — it is sized to starve exact
                        // enumeration on these leaves.
                        let pure = ReliabilityCalculator::new()
                            .with_strategy(strategy)
                            .with_options(CalcOptions {
                                hybrid: false,
                                ..opts
                            })
                            .run(&inst.net, demand)
                            .expect("pure-exact run");
                        match pure {
                            Outcome::Partial(p) => {
                                assert!(p.certified, "exact partials stay certified");
                                assert!(
                                    p.r_low <= exact + 1e-12 && exact <= p.r_high + 1e-12,
                                    "certified bounds must bracket the exact value"
                                );
                            }
                            Outcome::Complete(rep) => panic!(
                                "seed {seed}: a {budget}-config exact run must not complete \
                                 where hybrid had to sample (got {})",
                                rep.reliability
                            ),
                        }
                    } else {
                        assert!(
                            (rep.reliability - exact).abs() < 1e-12,
                            "certified hybrid answers stay exact"
                        );
                    }
                }
                Outcome::Partial(p) => {
                    // The run may interrupt before any leaf was reached;
                    // bounds still obey the clamp and cover the exact value.
                    assert!(0.0 <= p.r_low && p.r_low <= p.r_high && p.r_high <= 1.0);
                    assert!(p.r_low <= exact + 1e-12 && exact <= p.r_high + 1e-12);
                }
            }
        }
    }
    assert!(
        statistical_completes * 2 >= cases,
        "budget forcing failed: only {statistical_completes}/{cases} runs sampled"
    );
}

/// A barbell of two K4 clusters over a capacity-1 bridge, every link with a
/// tiny dyadic failure probability — reliability sits just under 1.
fn near_perfect_k4_barbell() -> flowrel::core::NetFile {
    let mut text = String::from("undirected\nnodes 8\n");
    for base in [0usize, 4] {
        for i in 0..4 {
            for j in (i + 1)..4 {
                text.push_str(&format!("edge {} {} 2 0.0009765625\n", base + i, base + j));
            }
        }
    }
    text.push_str("edge 3 4 1 0.0009765625\ndemand 0 7 1\n");
    flowrel::core::fnet::parse(&text).expect("well-formed instance")
}

/// Satellite 1: near-perfect links. Statistical leaves whose estimates sit
/// at the very top of `[0, 1]` must never push the combined interval
/// outside it — every plan-node combine clamps.
#[test]
fn near_perfect_links_never_report_bounds_outside_unit_interval() {
    let file = near_perfect_k4_barbell();
    let demand = file.demand.expect("demand line");
    let exact = ReliabilityCalculator::new()
        .with_strategy(Strategy::Naive)
        .run_complete(&file.net, demand)
        .expect("naive reference")
        .reliability;
    let mut sampled = 0usize;
    for seed in 0u64..20 {
        let calc = ReliabilityCalculator::new()
            .with_strategy(Strategy::BottleneckAuto { max_k: 1 })
            .with_options(hybrid_options(8, mc_settings(seed, 2048, 2048)));
        match calc.run(&file.net, demand).expect("hybrid run") {
            Outcome::Complete(rep) => {
                let (lo, hi) = rep.interval;
                assert!(
                    0.0 <= lo && lo <= hi && hi <= 1.0,
                    "seed {seed}: interval [{lo}, {hi}] escaped [0, 1]"
                );
                if !rep.certified {
                    sampled += 1;
                    assert!(
                        lo <= exact && exact <= hi,
                        "seed {seed}: [{lo}, {hi}] vs exact {exact}"
                    );
                }
            }
            Outcome::Partial(p) => {
                assert!(
                    0.0 <= p.r_low && p.r_low <= p.r_high && p.r_high <= 1.0,
                    "seed {seed}: partial [{}, {}] escaped [0, 1]",
                    p.r_low,
                    p.r_high
                );
            }
        }
    }
    assert!(
        sampled >= 15,
        "near-perfect leaves must sample, got {sampled}/20"
    );
}

/// Satellite 2: distinct per-leaf RNG streams. A plan with two interrupted
/// MC leaves must give each leaf its own stream seed (domain-tagged by DFS
/// slot), the two sample sequences must differ, and re-running with the
/// same seed must reproduce both leaf states bit for bit.
#[test]
fn mc_leaves_draw_distinct_reproducible_streams() {
    let inst = generators::slack_barbell(2, 1, 5);
    let demand = demand_of(&inst);
    // batch 64 « target 1 << 20: each forced leaf draws only its small
    // allowance per visit and parks as an interrupted MonteCarlo leaf.
    let run = || {
        let calc = ReliabilityCalculator::new()
            .with_strategy(Strategy::BottleneckAuto { max_k: 1 })
            .with_options(hybrid_options(8, mc_settings(99, 1 << 20, 64)));
        calc.run(&inst.net, demand).expect("hybrid run")
    };
    let extract = |out: Outcome| -> (Vec<montecarlo::McCheckpoint>, String) {
        let Outcome::Partial(p) = out else {
            panic!("a 1M-sample target under a 64-sample allowance must interrupt");
        };
        assert!(!p.certified, "sampled partials are labelled statistical");
        let text = p.checkpoint.to_text();
        let CheckpointKind::Plan(plan) = &p.checkpoint.kind else {
            panic!("expected a plan checkpoint");
        };
        let mcs: Vec<montecarlo::McCheckpoint> = plan
            .leaves
            .iter()
            .filter_map(|l| match l {
                PlanLeafState::MonteCarlo(ck) => Some((**ck).clone()),
                _ => None,
            })
            .collect();
        (mcs, text)
    };
    let (mcs_a, text_a) = extract(run());
    assert!(
        mcs_a.len() >= 2,
        "need at least two interrupted MC leaves, got {}",
        mcs_a.len()
    );
    let seeds: std::collections::HashSet<u64> = mcs_a.iter().map(|m| m.settings.seed).collect();
    assert_eq!(
        seeds.len(),
        mcs_a.len(),
        "every MC leaf gets its own stream seed, got {seeds:?}"
    );
    assert!(
        mcs_a.windows(2).any(|w| w[0].accum != w[1].accum),
        "distinct streams must produce different sample sequences"
    );
    let (mcs_b, text_b) = extract(run());
    assert_eq!(mcs_a, mcs_b, "same seed must reproduce every leaf state");
    assert_eq!(text_a, text_b, "checkpoint text is deterministic");
    // Round-trip fidelity: the text parses back to the identical checkpoint.
    let parsed = Checkpoint::from_text(&text_a).expect("round trip");
    assert_eq!(parsed.to_text(), text_a);
}

/// Tentpole acceptance: hybrid runs interrupted at different budgets and
/// resumed to completion through serialized v1 text checkpoints land on the
/// same bits — the engine draws by absolute batch index, so chunked draws
/// equal continuous draws, and the interrupt pattern cannot leak into the
/// answer.
#[test]
fn interrupted_hybrid_runs_resume_bit_identically() {
    let inst = generators::slack_barbell(2, 1, 11);
    let demand = demand_of(&inst);
    // Leaves predict 16 exact configs; any budget whose per-leaf share is
    // below 16 forces sampling, and target 256 at batch 64 completes after
    // a handful of resumes.
    let run_to_completion = |budget: u64| {
        let calc = ReliabilityCalculator::new()
            .with_strategy(Strategy::BottleneckAuto { max_k: 1 })
            .with_options(hybrid_options(budget, mc_settings(7, 256, 64)));
        let mut out = calc.run(&inst.net, demand).expect("hybrid run");
        let mut partials = 0usize;
        loop {
            match out {
                Outcome::Complete(rep) => break (rep, partials),
                Outcome::Partial(p) => {
                    assert!(
                        0.0 <= p.r_low && p.r_low <= p.r_high && p.r_high <= 1.0,
                        "[{}, {}] escaped [0, 1]",
                        p.r_low,
                        p.r_high
                    );
                    let parsed =
                        Checkpoint::from_text(&p.checkpoint.to_text()).expect("round trip");
                    assert_eq!(parsed, p.checkpoint, "text round trip must be lossless");
                    partials += 1;
                    assert!(partials < 100_000, "resume loop must make progress");
                    out = calc.resume(&inst.net, demand, &parsed).expect("resume");
                }
            }
        }
    };
    let (tight, tight_partials) = run_to_completion(8);
    let (loose, _) = run_to_completion(24);
    let (rerun, rerun_partials) = run_to_completion(8);
    assert!(
        tight_partials > 0,
        "an 8-config budget must interrupt this run"
    );
    assert!(!tight.certified && !loose.certified);
    assert_eq!(
        tight_partials, rerun_partials,
        "interrupt pattern is deterministic"
    );
    for (a, b, what) in [
        (&tight, &loose, "different interrupt patterns"),
        (&tight, &rerun, "identical rerun"),
    ] {
        assert_eq!(
            a.reliability.to_bits(),
            b.reliability.to_bits(),
            "{what}: {} vs {}",
            a.reliability,
            b.reliability
        );
        assert_eq!(a.interval.0.to_bits(), b.interval.0.to_bits(), "{what}");
        assert_eq!(a.interval.1.to_bits(), b.interval.1.to_bits(), "{what}");
    }
}

/// Satellite 4: serial and parallel hybrid executions of the same options
/// agree bit for bit — leaf shares are fixed at fork time and the engine's
/// batch merge order is deterministic.
#[test]
fn hybrid_serial_and_parallel_runs_agree_bitwise() {
    for seed in [3u64, 9, 27] {
        for (inst, max_k) in [
            (generators::slack_barbell(2, 1, seed), 1usize),
            (generators::barbell_mesh(2, seed), 2),
        ] {
            let demand = demand_of(&inst);
            let run = |parallel: bool| {
                let calc = ReliabilityCalculator::new()
                    .with_strategy(Strategy::BottleneckAuto { max_k })
                    .with_options(CalcOptions {
                        parallel,
                        ..hybrid_options(8, mc_settings(seed, 2048, 2048))
                    });
                match calc.run(&inst.net, demand).expect("hybrid run") {
                    Outcome::Complete(rep) => (rep.reliability, rep.interval, rep.certified),
                    Outcome::Partial(p) => (f64::NAN, (p.r_low, p.r_high), p.certified),
                }
            };
            let serial = run(false);
            let parallel = run(true);
            assert_eq!(
                serial.0.to_bits(),
                parallel.0.to_bits(),
                "seed {seed}: serial {serial:?} vs parallel {parallel:?}"
            );
            assert_eq!(serial.1 .0.to_bits(), parallel.1 .0.to_bits());
            assert_eq!(serial.1 .1.to_bits(), parallel.1 .1.to_bits());
            assert_eq!(serial.2, parallel.2);
        }
    }
}

/// Satellite 3: the hybrid knob stays out of the plan shape fingerprint — a
/// checkpoint taken by a hybrid run resumes under a calculator configured
/// without hybrid (the checkpoint pins the knob) and keeps sampling.
#[test]
fn hybrid_knob_is_pinned_from_the_checkpoint_not_the_resuming_options() {
    let inst = generators::slack_barbell(2, 1, 5);
    let demand = demand_of(&inst);
    let strategy = Strategy::BottleneckAuto { max_k: 1 };
    let hybrid_calc = ReliabilityCalculator::new()
        .with_strategy(strategy.clone())
        .with_options(hybrid_options(8, mc_settings(7, 512, 64)));
    let Outcome::Partial(p) = hybrid_calc.run(&inst.net, demand).expect("run") else {
        panic!("a 512-sample target under a 64-sample allowance must interrupt");
    };
    let CheckpointKind::Plan(plan) = &p.checkpoint.kind else {
        panic!("expected a plan checkpoint");
    };
    assert!(plan.hybrid, "hybrid runs stamp their checkpoints");
    // Resume under a default (non-hybrid, unbudgeted) calculator: the
    // checkpoint's knob wins, sampling continues to the target, and the
    // answer comes back complete and statistical.
    let plain = ReliabilityCalculator::new().with_strategy(strategy);
    let mut out = plain
        .resume(&inst.net, demand, &p.checkpoint)
        .expect("resume");
    let mut guard = 0usize;
    let finished = loop {
        match out {
            Outcome::Complete(rep) => break rep,
            Outcome::Partial(p) => {
                guard += 1;
                assert!(guard < 100_000);
                out = plain
                    .resume(&inst.net, demand, &p.checkpoint)
                    .expect("resume");
            }
        }
    };
    assert!(
        !finished.certified,
        "the resumed run must keep sampling (hybrid pinned from the checkpoint)"
    );
}
